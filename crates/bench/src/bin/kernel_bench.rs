//! `kernel-bench` — self-contained perf harness for the rex-tensor
//! compute kernels (std-only: no criterion, works fully offline).
//!
//! Measures six things and writes `BENCH_kernels.json` at the
//! repository root (schema `rex-kernel-bench/v4`):
//!
//! 1. **cases** — the active compute backend's kernel stack against the
//!    seed's naive reference implementations ([`rex_tensor::reference`]),
//!    at the pool's configured thread count.
//! 2. **backend_matrix** — the headline kernels re-timed for *every*
//!    backend × sweep-thread-count pair (scoped [`with_backend`] /
//!    pool overrides), each against a naive baseline re-timed adjacent
//!    to it (same-moment ratios survive host-speed drift over the run).
//!    Each cell records median and min timings: `speedup_vs_baseline`
//!    is the median-based typical ratio, `speedup_best` the min-based
//!    capability ratio (steal-immune — what `scripts/bench_guard.sh`
//!    regresses against). This is the record that the SIMD backend
//!    actually pays for itself on the host that produced the artifact.
//! 3. **thread_sweep** — the active backend's kernels re-timed at each
//!    sweep pool size, with per-case speedup-vs-1 and parallel
//!    efficiency (`speedup / threads`). The default sweep is clamped to
//!    `min(8, 2·host_cores)` — entries above that are recorded in
//!    `skipped_threads` rather than timed, so a small host doesn't
//!    publish meaningless oversubscribed numbers.
//! 4. **conversions** — f32↔f16 and f32↔bf16 conversion bandwidth
//!    (GB/s over bytes read + written) for both backends, sampled in
//!    [`time_pair`] alternation. The conversions are pure per-element
//!    bit functions, so the scalar/SIMD outputs are asserted bitwise
//!    equal before timing.
//! 5. **quant_matmul** — the Q8_0 quantized GEMM microkernel
//!    ([`kernels::qgemm_nt`], per-block scales consumed in place)
//!    against the materializing baseline (dequantize the whole weight
//!    matrix to f32, then dense [`kernels::gemm_nt`]) at the GEMV
//!    shapes quantized inference exists for: M = 1, K = 1024,
//!    N ∈ {1024, 4096} — the `speedup_best ≥ 1.5×` acceptance cases
//!    `scripts/bench_guard.sh --quant-only` regresses against. Each
//!    case records the weight-bytes ratio (f32 vs Q8_0 ≈ 3.76×) and
//!    the max |diff| between the two outputs. The regime boundary is
//!    real and worth stating: once M grows past a handful of rows the
//!    two sides do the same FLOPs and the baseline's one-off
//!    dequantization amortizes away, so dense GEMM wins — quantization
//!    pays for *memory* (3.76× fewer weight bytes) and for batch-1
//!    latency, not for throughput-shaped products.
//! 6. **grid** — wall-clock of one small real [`rex_bench::run_schedule_grid`]
//!    training grid at 1 pool thread vs 4, i.e. the harness-level
//!    speedup from running independent grid cells concurrently.
//!
//! Timing is wall-clock `std::time::Instant`, warmup runs followed by a
//! median over N reps.
//!
//! ```text
//! cargo run --release -p rex-bench --bin kernel-bench [-- --smoke] [--reps N]
//!     [--threads N] [--backend scalar|simd|auto] [--out PATH]
//! ```
//!
//! `--smoke` drops to 3 reps / 1 warmup for CI sanity. `--threads N`
//! sizes the worker pool (overriding `REX_NUM_THREADS`) for the `cases`
//! section; the sweep, matrix, and grid sections always pin their own
//! pool sizes. `--backend` pins the process default backend (overriding
//! `REX_BACKEND`) for the `cases`/`thread_sweep` sections; the matrix
//! always covers both backends. See DESIGN.md §"Compute kernels" and
//! §"Compute backends" for the JSON schema.

use std::time::Instant;

use rex_bench::{run_schedule_grid, Cell};
use rex_core::ScheduleSpec;
use rex_data::images::synth_cifar10;
use rex_tensor::backend::{self, with_backend, BackendKind};
use rex_tensor::conv::{conv2d_backward, conv2d_forward, Window};
use rex_tensor::ops::{batch_slice, matmul3};
use rex_tensor::reference;
use rex_tensor::{kernels, Prng};
use rex_train::tasks::{run_image_cell, ImageModel};
use rex_train::{Budget, OptimizerKind};

/// Pool sizes the scaling sweep would like to measure; entries above
/// `min(8, 2·host_cores)` are skipped (and recorded as skipped).
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Pool size for the parallel leg of the grid measurement.
const GRID_THREADS: usize = 4;

/// Splits [`SWEEP_THREADS`] into (measured, skipped) under the
/// oversubscription clamp `min(8, 2·host_cores)`.
fn sweep_split(host_cores: usize) -> (Vec<usize>, Vec<usize>) {
    let cap = 8.min(2 * host_cores.max(1));
    SWEEP_THREADS.iter().partition(|&&t| t <= cap)
}

struct Config {
    reps: usize,
    warmup: usize,
    smoke: bool,
    out: Option<String>,
}

struct Case {
    name: &'static str,
    baseline: &'static str,
    baseline_ms: f64,
    optimized_ms: f64,
    max_abs_diff: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        if self.optimized_ms > 0.0 {
            self.baseline_ms / self.optimized_ms
        } else {
            f64::INFINITY
        }
    }
}

/// One thread count's optimized-kernel timings (sweep section).
struct SweepEntry {
    threads: usize,
    case_ms: Vec<(&'static str, f64)>,
}

/// One case of a backend-matrix cell. The naive baseline is re-timed
/// adjacent to the optimized kernel so the ratio is immune to
/// host-speed drift over the run (shared hosts routinely halve their
/// effective clock mid-benchmark). Median timings give the typical-cost
/// speedup; min timings give `speedup_best`, the steal-immune
/// capability ratio the bench-guard keys on.
struct MatrixCase {
    name: &'static str,
    optimized_ms: f64,
    optimized_min_ms: f64,
    baseline_ms: f64,
    baseline_min_ms: f64,
}

impl MatrixCase {
    fn speedup(&self) -> f64 {
        if self.optimized_ms > 0.0 {
            self.baseline_ms / self.optimized_ms
        } else {
            f64::INFINITY
        }
    }

    fn speedup_best(&self) -> f64 {
        if self.optimized_min_ms > 0.0 {
            self.baseline_min_ms / self.optimized_min_ms
        } else {
            f64::INFINITY
        }
    }
}

/// One backend × thread-count cell of the backend matrix.
struct MatrixEntry {
    backend: &'static str,
    simd_level: &'static str,
    threads: usize,
    cases: Vec<MatrixCase>,
}

/// The grid-harness measurement: same cells, 1 pool thread vs
/// [`GRID_THREADS`].
struct GridBench {
    cells: usize,
    serial_ms: f64,
    parallel_ms: f64,
}

impl GridBench {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            f64::INFINITY
        }
    }
}

fn parse_args() -> Config {
    let mut cfg = Config {
        reps: 15,
        warmup: 3,
        smoke: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                cfg.smoke = true;
                cfg.reps = 3;
                cfg.warmup = 1;
            }
            "--reps" => {
                cfg.reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a positive integer"));
            }
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
                if let Err(e) = rex_pool::set_num_threads(n) {
                    die(&format!("--threads {n}: {e}"));
                }
            }
            "--backend" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--backend needs scalar|simd|auto"));
                let kind =
                    BackendKind::parse(&v).unwrap_or_else(|e| die(&format!("--backend: {e}")));
                if let Err(e) = backend::set_backend(kind) {
                    die(&format!("--backend: {e}"));
                }
            }
            "--out" => {
                cfg.out = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("kernel-bench: {msg}");
    eprintln!(
        "usage: kernel-bench [--smoke] [--reps N] [--threads N] [--backend scalar|simd|auto] [--out PATH]"
    );
    std::process::exit(2);
}

/// Median wall-clock milliseconds of `f` over `reps` runs after `warmup`
/// discarded runs.
fn time_median<T>(cfg: &Config, f: impl FnMut() -> T) -> f64 {
    time_stats(cfg, f).0
}

/// `(median, min)` wall-clock milliseconds of `f` over `reps` runs after
/// `warmup` discarded runs. The median is the honest typical cost; the
/// min is the noise-robust capability estimate — external interference
/// (CPU steal on a shared host) can only inflate a sample, never deflate
/// it, so the min converges on the kernel's true cost while the median
/// wanders with the host's load.
fn time_stats<T>(cfg: &Config, mut f: impl FnMut() -> T) -> (f64, f64) {
    for _ in 0..cfg.warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = (0..cfg.reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], samples[0])
}

/// [`time_stats`] for an optimized/baseline pair, with the two sampled
/// in strict alternation (opt, base, opt, base, …). On a shared host
/// whose effective clock drifts over seconds, alternation keeps each
/// pair of samples inside the same weather window, so the
/// min-over-reps ratio cancels the drift instead of comparing a fast
/// window of one kernel against a slow window of the other.
fn time_pair<T, U>(
    cfg: &Config,
    mut opt: impl FnMut() -> T,
    mut base: impl FnMut() -> U,
) -> ((f64, f64), (f64, f64)) {
    for _ in 0..cfg.warmup {
        std::hint::black_box(opt());
        std::hint::black_box(base());
    }
    let mut opt_samples = Vec::with_capacity(cfg.reps.max(1));
    let mut base_samples = Vec::with_capacity(cfg.reps.max(1));
    for _ in 0..cfg.reps.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(opt());
        opt_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        std::hint::black_box(base());
        base_samples.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let stats = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        (v[v.len() / 2], v[0])
    };
    (stats(opt_samples), stats(base_samples))
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

/// 256×256×256 matmul: blocked GEMM vs the seed's branchy i-k-j loop.
fn bench_matmul(cfg: &Config) -> Case {
    let (m, k, n) = (256, 256, 256);
    let mut rng = Prng::new(7);
    let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
    let expect = reference::matmul_naive(m, k, n, a.data(), b.data());
    let got = a.matmul(&b).unwrap();
    Case {
        name: "matmul_256x256x256",
        baseline: "seed i-k-j loop with zero-skip branch",
        baseline_ms: time_median(cfg, || reference::matmul_naive(m, k, n, a.data(), b.data())),
        optimized_ms: time_median(cfg, || a.matmul(&b).unwrap()),
        max_abs_diff: max_abs_diff(got.data(), &expect),
    }
}

/// Conv2d forward at the acceptance shape 32×3×32×32, k=3 (O=16, s=1,
/// p=1): im2col + blocked GEMM vs the direct six-loop nest.
fn bench_conv_forward(cfg: &Config) -> Case {
    let mut rng = Prng::new(11);
    let input = rng.normal_tensor(&[32, 3, 32, 32], 0.0, 1.0);
    let weight = rng.normal_tensor(&[16, 3, 3, 3], 0.0, 0.3);
    let bias = rng.normal_tensor(&[16], 0.0, 0.1);
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let expect = reference::conv2d_direct(&input, &weight, Some(&bias), win).unwrap();
    let (got, _) = conv2d_forward(&input, &weight, Some(&bias), win).unwrap();
    Case {
        name: "conv2d_fwd_32x3x32x32_k3",
        baseline: "direct six-loop convolution",
        baseline_ms: time_median(cfg, || {
            reference::conv2d_direct(&input, &weight, Some(&bias), win).unwrap()
        }),
        optimized_ms: time_median(cfg, || {
            conv2d_forward(&input, &weight, Some(&bias), win).unwrap()
        }),
        max_abs_diff: max_abs_diff(got.data(), expect.data()),
    }
}

/// Conv2d backward at the same shape: im2col-GEMM gradients vs the
/// direct scatter nest.
fn bench_conv_backward(cfg: &Config) -> Case {
    let mut rng = Prng::new(13);
    let input = rng.normal_tensor(&[32, 3, 32, 32], 0.0, 1.0);
    let weight = rng.normal_tensor(&[16, 3, 3, 3], 0.0, 0.3);
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let (out, saved) = conv2d_forward(&input, &weight, None, win).unwrap();
    let d_out = rng.normal_tensor(out.shape(), 0.0, 1.0);
    let (di, dw, _) = conv2d_backward(&d_out, &weight, &saved).unwrap();
    let (rdi, rdw, _) = reference::conv2d_direct_backward(&d_out, &input, &weight, win).unwrap();
    Case {
        name: "conv2d_bwd_32x3x32x32_k3",
        baseline: "direct six-loop gradient scatter",
        baseline_ms: time_median(cfg, || {
            reference::conv2d_direct_backward(&d_out, &input, &weight, win).unwrap()
        }),
        optimized_ms: time_median(cfg, || conv2d_backward(&d_out, &weight, &saved).unwrap()),
        max_abs_diff: max_abs_diff(di.data(), rdi.data()).max(max_abs_diff(dw.data(), rdw.data())),
    }
}

/// Batched attention-shaped product `[16,64,64]×[16,64,64]`: matmul3 on
/// batch slices vs the seed path (batch_slice copies + branchy matmul).
fn bench_matmul3(cfg: &Config) -> Case {
    let (bs, m, k, n) = (16, 64, 64, 64);
    let mut rng = Prng::new(17);
    let a = rng.normal_tensor(&[bs, m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[bs, k, n], 0.0, 1.0);
    let seed_path = || {
        let mut out = Vec::with_capacity(bs * m * n);
        for s in 0..bs {
            let am = batch_slice(&a, s, m, k);
            let bm = batch_slice(&b, s, k, n);
            out.extend_from_slice(&reference::matmul_naive(m, k, n, am.data(), bm.data()));
        }
        out
    };
    let expect = seed_path();
    let got = matmul3(&a, &b).unwrap();
    Case {
        name: "matmul3_16x64x64x64",
        baseline: "batch_slice copies + seed matmul",
        baseline_ms: time_median(cfg, seed_path),
        optimized_ms: time_median(cfg, || matmul3(&a, &b).unwrap()),
        max_abs_diff: max_abs_diff(got.data(), &expect),
    }
}

/// One conversion-bandwidth case: a narrowing or widening pass over
/// [`CONV_ELEMS`] elements, timed per backend with the naive scalar
/// loop sampled adjacent to the SIMD kernel.
struct ConversionCase {
    name: &'static str,
    /// Bytes read + written per element (f32 word + half word = 6).
    bytes_per_elem: usize,
    scalar_ms: f64,
    scalar_min_ms: f64,
    simd_ms: f64,
    simd_min_ms: f64,
}

/// Element count for the conversion-bandwidth cases (24 MB of f32 —
/// well past L2, so the numbers are stream bandwidth, not cache echo).
const CONV_ELEMS: usize = 6 * 1024 * 1024;

impl ConversionCase {
    fn gbps(ms: f64, bytes: usize) -> f64 {
        if ms > 0.0 {
            bytes as f64 / (ms * 1e-3) / 1e9
        } else {
            f64::INFINITY
        }
    }

    fn simd_gbps(&self) -> f64 {
        Self::gbps(self.simd_min_ms, self.bytes_per_elem * CONV_ELEMS)
    }

    fn scalar_gbps(&self) -> f64 {
        Self::gbps(self.scalar_min_ms, self.bytes_per_elem * CONV_ELEMS)
    }

    fn speedup(&self) -> f64 {
        if self.simd_ms > 0.0 {
            self.scalar_ms / self.simd_ms
        } else {
            f64::INFINITY
        }
    }

    fn speedup_best(&self) -> f64 {
        if self.simd_min_ms > 0.0 {
            self.scalar_min_ms / self.simd_min_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Times the four conversion kernels under both backends. The outputs
/// are asserted bitwise equal first — the conversions are pure bit
/// functions, so any backend divergence is a bug, not rounding.
fn bench_conversions(cfg: &Config) -> Vec<ConversionCase> {
    let mut rng = Prng::new(0xC0DEC);
    let src: Vec<f32> = (0..CONV_ELEMS).map(|_| rng.uniform_in(-8.0, 8.0)).collect();
    let scalar = backend::for_kind(BackendKind::Scalar);
    let simd = backend::for_kind(BackendKind::Simd);

    let mut half_a = vec![0u16; CONV_ELEMS];
    let mut half_b = vec![0u16; CONV_ELEMS];
    let mut wide_a = vec![0f32; CONV_ELEMS];
    let mut wide_b = vec![0f32; CONV_ELEMS];
    scalar.f32_to_f16_slice(&src, &mut half_a);
    simd.f32_to_f16_slice(&src, &mut half_b);
    assert_eq!(half_a, half_b, "f32->f16 backends disagree bitwise");
    scalar.f16_to_f32_slice(&half_a, &mut wide_a);
    simd.f16_to_f32_slice(&half_a, &mut wide_b);
    assert_eq!(
        wide_a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        wide_b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "f16->f32 backends disagree bitwise"
    );
    scalar.f32_to_bf16_slice(&src, &mut half_a);
    simd.f32_to_bf16_slice(&src, &mut half_b);
    assert_eq!(half_a, half_b, "f32->bf16 backends disagree bitwise");
    let halves = half_a.clone();

    let case = |name, (simd_t, scalar_t): ((f64, f64), (f64, f64))| ConversionCase {
        name,
        bytes_per_elem: 6,
        scalar_ms: scalar_t.0,
        scalar_min_ms: scalar_t.1,
        simd_ms: simd_t.0,
        simd_min_ms: simd_t.1,
    };
    vec![
        case(
            "f32_to_f16",
            time_pair(
                cfg,
                || simd.f32_to_f16_slice(&src, &mut half_a),
                || scalar.f32_to_f16_slice(&src, &mut half_b),
            ),
        ),
        case(
            "f16_to_f32",
            time_pair(
                cfg,
                || simd.f16_to_f32_slice(&halves, &mut wide_a),
                || scalar.f16_to_f32_slice(&halves, &mut wide_b),
            ),
        ),
        case(
            "f32_to_bf16",
            time_pair(
                cfg,
                || simd.f32_to_bf16_slice(&src, &mut half_a),
                || scalar.f32_to_bf16_slice(&src, &mut half_b),
            ),
        ),
        case(
            "bf16_to_f32",
            time_pair(
                cfg,
                || simd.bf16_to_f32_slice(&halves, &mut wide_a),
                || scalar.bf16_to_f32_slice(&halves, &mut wide_b),
            ),
        ),
    ]
}

/// One quantized-matmul case: `C[m,n] = A[m,k]·Bq[n,k]ᵀ` with the Q8_0
/// weight consumed in place vs dequantize-everything-then-dense-GEMM.
struct QuantCase {
    m: usize,
    k: usize,
    n: usize,
    qgemm_ms: f64,
    qgemm_min_ms: f64,
    dequant_gemm_ms: f64,
    dequant_gemm_min_ms: f64,
    /// f32 weight bytes / Q8_0 weight bytes (≈ 3.76 for k % 32 == 0).
    weight_bytes_ratio: f64,
    max_abs_diff: f64,
}

impl QuantCase {
    fn speedup(&self) -> f64 {
        if self.qgemm_ms > 0.0 {
            self.dequant_gemm_ms / self.qgemm_ms
        } else {
            f64::INFINITY
        }
    }

    fn speedup_best(&self) -> f64 {
        if self.qgemm_min_ms > 0.0 {
            self.dequant_gemm_min_ms / self.qgemm_min_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Benchmarks [`kernels::qgemm_nt`] against its materializing baseline
/// at the GEMV shapes quantized inference exists for: M = 1,
/// K = 1024, N ∈ {1024, 4096}.
fn bench_quant_matmul(cfg: &Config) -> Vec<QuantCase> {
    use rex_tensor::dtype::{dequantize_q8_0, quantize_q8_0, QK};
    let mut rng = Prng::new(0x5108);

    [(1usize, 1024usize, 1024usize), (1, 1024, 4096)]
        .iter()
        .map(|&(m, k, n)| {
            let b: Vec<f32> = (0..n * k).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
            let mut b_scales = vec![0u16; (n * k) / QK];
            let mut b_quants = vec![0i8; n * k];
            quantize_q8_0(&b, &mut b_scales, &mut b_quants);
            let q_bytes = 2 * b_scales.len() + b_quants.len();
            let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
            let mut c_q = vec![0f32; m * n];
            let mut c_d = vec![0f32; m * n];
            let dequant_then_gemm = |c: &mut [f32]| {
                let mut dense = vec![0f32; n * k];
                dequantize_q8_0(&b_scales, &b_quants, &mut dense);
                c.fill(0.0);
                kernels::gemm_nt(m, k, n, &a, &dense, c);
            };
            kernels::qgemm_nt(m, k, n, &a, &b_scales, &b_quants, &mut c_q);
            dequant_then_gemm(&mut c_d);
            let diff = max_abs_diff(&c_q, &c_d);
            let ((q_med, q_min), (d_med, d_min)) = time_pair(
                cfg,
                || kernels::qgemm_nt(m, k, n, &a, &b_scales, &b_quants, &mut c_q),
                || dequant_then_gemm(&mut c_d),
            );
            QuantCase {
                m,
                k,
                n,
                qgemm_ms: q_med,
                qgemm_min_ms: q_min,
                dequant_gemm_ms: d_med,
                dequant_gemm_min_ms: d_min,
                weight_bytes_ratio: (4 * n * k) as f64 / q_bytes as f64,
                max_abs_diff: diff,
            }
        })
        .collect()
}

/// The shared fixture for the sweep and matrix sections: the three
/// headline kernels with their inputs pre-built.
struct SweepFixture {
    a: rex_tensor::Tensor,
    b: rex_tensor::Tensor,
    input: rex_tensor::Tensor,
    weight: rex_tensor::Tensor,
    bias: rex_tensor::Tensor,
    win: Window,
    saved: rex_tensor::conv::Conv2dSaved,
    d_out: rex_tensor::Tensor,
}

impl SweepFixture {
    fn build() -> SweepFixture {
        let (m, k, n) = (256, 256, 256);
        let mut rng = Prng::new(7);
        let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
        let mut rng = Prng::new(11);
        let input = rng.normal_tensor(&[32, 3, 32, 32], 0.0, 1.0);
        let weight = rng.normal_tensor(&[16, 3, 3, 3], 0.0, 0.3);
        let bias = rng.normal_tensor(&[16], 0.0, 0.1);
        let win = Window {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let (_, saved) = conv2d_forward(&input, &weight, None, win).unwrap();
        let mut rng = Prng::new(13);
        let d_out = rng.normal_tensor(&[32, 16, 32, 32], 0.0, 1.0);
        SweepFixture {
            a,
            b,
            input,
            weight,
            bias,
            win,
            saved,
            d_out,
        }
    }

    /// Times the three headline kernels (`(name, median_ms, min_ms)`)
    /// under whatever backend/pool scope the caller has installed.
    fn time_cases(&self, cfg: &Config) -> Vec<(&'static str, f64, f64)> {
        let mm = time_stats(cfg, || self.a.matmul(&self.b).unwrap());
        let fwd = time_stats(cfg, || {
            conv2d_forward(&self.input, &self.weight, Some(&self.bias), self.win).unwrap()
        });
        let bwd = time_stats(cfg, || {
            conv2d_backward(&self.d_out, &self.weight, &self.saved).unwrap()
        });
        vec![
            ("matmul_256x256x256", mm.0, mm.1),
            ("conv2d_fwd_32x3x32x32_k3", fwd.0, fwd.1),
            ("conv2d_bwd_32x3x32x32_k3", bwd.0, bwd.1),
        ]
    }

    /// Times the three headline kernels against their naive references
    /// for one matrix cell, each pair sampled in [`time_pair`]
    /// alternation so the speedup ratios survive host-speed drift.
    fn matrix_cases(&self, cfg: &Config) -> Vec<MatrixCase> {
        let case = |name, (opt, base): ((f64, f64), (f64, f64))| MatrixCase {
            name,
            optimized_ms: opt.0,
            optimized_min_ms: opt.1,
            baseline_ms: base.0,
            baseline_min_ms: base.1,
        };
        vec![
            case(
                "matmul_256x256x256",
                time_pair(
                    cfg,
                    || self.a.matmul(&self.b).unwrap(),
                    || reference::matmul_naive(256, 256, 256, self.a.data(), self.b.data()),
                ),
            ),
            case(
                "conv2d_fwd_32x3x32x32_k3",
                time_pair(
                    cfg,
                    || {
                        conv2d_forward(&self.input, &self.weight, Some(&self.bias), self.win)
                            .unwrap()
                    },
                    || {
                        reference::conv2d_direct(
                            &self.input,
                            &self.weight,
                            Some(&self.bias),
                            self.win,
                        )
                        .unwrap()
                    },
                ),
            ),
            case(
                "conv2d_bwd_32x3x32x32_k3",
                time_pair(
                    cfg,
                    || conv2d_backward(&self.d_out, &self.weight, &self.saved).unwrap(),
                    || {
                        reference::conv2d_direct_backward(
                            &self.d_out,
                            &self.input,
                            &self.weight,
                            self.win,
                        )
                        .unwrap()
                    },
                ),
            ),
        ]
    }
}

/// Re-times the optimized kernels (active backend) at each measured
/// sweep thread count. Scoped pool overrides keep the process-wide
/// default untouched.
fn bench_thread_sweep(cfg: &Config, fixture: &SweepFixture, threads: &[usize]) -> Vec<SweepEntry> {
    threads
        .iter()
        .map(|&t| {
            rex_pool::with_pool_size(t, || SweepEntry {
                threads: t,
                case_ms: fixture
                    .time_cases(cfg)
                    .into_iter()
                    .map(|(name, med, _min)| (name, med))
                    .collect(),
            })
        })
        .collect()
}

/// The backend × thread matrix: every backend at every measured sweep
/// size, timed on the same fixture. The naive baselines are re-timed
/// inside each cell (adjacent to the optimized kernels) so
/// `speedup_vs_baseline` is a same-moment ratio rather than a
/// comparison against timings taken minutes earlier.
fn bench_backend_matrix(
    cfg: &Config,
    fixture: &SweepFixture,
    threads: &[usize],
) -> Vec<MatrixEntry> {
    let mut entries = Vec::new();
    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        let be = backend::for_kind(kind);
        for &t in threads {
            entries.push(with_backend(kind, || {
                rex_pool::with_pool_size(t, || MatrixEntry {
                    backend: be.name(),
                    simd_level: be.simd_level(),
                    threads: t,
                    cases: fixture.matrix_cases(cfg),
                })
            }));
        }
    }
    entries
}

/// Times one small real training grid (2 schedules × 2 trials of a
/// micro-ResNet cell) end to end at 1 pool thread, then at
/// [`GRID_THREADS`]. Both legs run the identical cell list; the
/// determinism contract makes their records equal, so the only variable
/// is how many cells run at once.
fn bench_grid(cfg: &Config) -> GridBench {
    let data = synth_cifar10(16, 8, 0xBE7C);
    let schedules = [ScheduleSpec::Rex, ScheduleSpec::Linear];
    let epochs = if cfg.smoke { 1 } else { 2 };
    let budgets = [Budget::new(epochs, 100)];
    let trials = 2;
    let cells = schedules.len() * budgets.len() * trials;
    let run = || {
        run_schedule_grid(
            "GRID-BENCH",
            OptimizerKind::sgdm(),
            &schedules,
            &budgets,
            trials,
            0xBE7C,
            true,
            None,
            None,
            |cell: &Cell, _rec| {
                run_image_cell(
                    ImageModel::MicroResNet20,
                    &data,
                    cell.budget.epochs(),
                    8,
                    cell.optimizer,
                    cell.schedule.clone(),
                    0.05,
                    cell.seed,
                )
                .unwrap()
            },
        )
    };
    let time_once = || {
        let t0 = Instant::now();
        std::hint::black_box(run());
        t0.elapsed().as_secs_f64() * 1e3
    };
    GridBench {
        cells,
        serial_ms: rex_pool::with_pool_size(1, time_once),
        parallel_ms: rex_pool::with_pool_size(GRID_THREADS, time_once),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    cfg: &Config,
    cases: &[Case],
    matrix: &[MatrixEntry],
    sweep: &[SweepEntry],
    skipped_threads: &[usize],
    conversions: &[ConversionCase],
    quant: &[QuantCase],
    grid: &GridBench,
) -> std::io::Result<()> {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let be = backend::active();
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"schema\": \"rex-kernel-bench/v4\",\n");
    body.push_str(&format!("  \"backend\": \"{}\",\n", be.name()));
    body.push_str(&format!("  \"simd_level\": \"{}\",\n", be.simd_level()));
    body.push_str(&format!("  \"threads\": {},\n", kernels::num_threads()));
    body.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    body.push_str(&format!("  \"reps\": {},\n", cfg.reps));
    body.push_str(&format!("  \"warmup\": {},\n", cfg.warmup));
    body.push_str(&format!("  \"smoke\": {},\n", cfg.smoke));
    body.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline\": \"{}\", \"baseline_ms\": {:.4}, \
             \"optimized_ms\": {:.4}, \"speedup\": {:.3}, \"max_abs_diff\": {:.3e}}}{}\n",
            json_escape(c.name),
            json_escape(c.baseline),
            c.baseline_ms,
            c.optimized_ms,
            c.speedup(),
            c.max_abs_diff,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    // backend × thread matrix: each cell's naive baseline is re-timed
    // adjacent to its optimized kernels, so the speedup is a same-moment
    // ratio (robust to host-speed drift over the run)
    body.push_str("  \"backend_matrix\": [\n");
    for (i, entry) in matrix.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"backend\": \"{}\", \"simd_level\": \"{}\", \"threads\": {}, \"cases\": [\n",
            json_escape(entry.backend),
            json_escape(entry.simd_level),
            entry.threads
        ));
        for (j, c) in entry.cases.iter().enumerate() {
            body.push_str(&format!(
                "      {{\"name\": \"{}\", \"optimized_ms\": {:.4}, \"baseline_ms\": {:.4}, \
                 \"speedup_vs_baseline\": {:.3}, \"optimized_min_ms\": {:.4}, \
                 \"baseline_min_ms\": {:.4}, \"speedup_best\": {:.3}}}{}\n",
                json_escape(c.name),
                c.optimized_ms,
                c.baseline_ms,
                c.speedup(),
                c.optimized_min_ms,
                c.baseline_min_ms,
                c.speedup_best(),
                if j + 1 < entry.cases.len() { "," } else { "" }
            ));
        }
        body.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < matrix.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!(
        "  \"skipped_threads\": [{}],\n",
        skipped_threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    body.push_str("  \"thread_sweep\": [\n");
    let base = &sweep[0];
    for (i, entry) in sweep.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"threads\": {}, \"cases\": [\n",
            entry.threads
        ));
        for (j, (name, ms)) in entry.case_ms.iter().enumerate() {
            let base_ms = base.case_ms[j].1;
            let speedup = if *ms > 0.0 {
                base_ms / ms
            } else {
                f64::INFINITY
            };
            body.push_str(&format!(
                "      {{\"name\": \"{}\", \"optimized_ms\": {:.4}, \"speedup_vs_1\": {:.3}, \
                 \"efficiency\": {:.3}}}{}\n",
                json_escape(name),
                ms,
                speedup,
                speedup / entry.threads as f64,
                if j + 1 < entry.case_ms.len() { "," } else { "" }
            ));
        }
        body.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    // conversion bandwidth: f32<->f16/bf16 narrowing and widening, both
    // backends, GB/s over bytes read + written (min-based: steal-immune)
    body.push_str("  \"conversions\": [\n");
    for (i, c) in conversions.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"elems\": {}, \"scalar_ms\": {:.4}, \"simd_ms\": {:.4}, \
             \"speedup\": {:.3}, \"scalar_min_ms\": {:.4}, \"simd_min_ms\": {:.4}, \
             \"speedup_best\": {:.3}, \"scalar_gbps\": {:.2}, \"simd_gbps\": {:.2}}}{}\n",
            json_escape(c.name),
            CONV_ELEMS,
            c.scalar_ms,
            c.simd_ms,
            c.speedup(),
            c.scalar_min_ms,
            c.simd_min_ms,
            c.speedup_best(),
            c.scalar_gbps(),
            c.simd_gbps(),
            if i + 1 < conversions.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    // quantized matmul: Q8_0 GEMM in place vs dequantize-then-dense-GEMM
    // (bench_guard --quant-only regresses speedup_best of these cases)
    body.push_str("  \"quant_matmul\": [\n");
    for (i, q) in quant.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"qgemm_nt_{}x{}x{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"qgemm_ms\": {:.4}, \"dequant_gemm_ms\": {:.4}, \"speedup\": {:.3}, \
             \"qgemm_min_ms\": {:.4}, \"dequant_gemm_min_ms\": {:.4}, \"speedup_best\": {:.3}, \
             \"weight_bytes_ratio\": {:.3}, \"max_abs_diff\": {:.3e}}}{}\n",
            q.m,
            q.k,
            q.n,
            q.m,
            q.k,
            q.n,
            q.qgemm_ms,
            q.dequant_gemm_ms,
            q.speedup(),
            q.qgemm_min_ms,
            q.dequant_gemm_min_ms,
            q.speedup_best(),
            q.weight_bytes_ratio,
            q.max_abs_diff,
            if i + 1 < quant.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!(
        "  \"grid\": {{\"cells\": {}, \"serial_ms\": {:.4}, \"parallel_threads\": {}, \
         \"parallel_ms\": {:.4}, \"speedup\": {:.3}}}\n",
        grid.cells,
        grid.serial_ms,
        GRID_THREADS,
        grid.parallel_ms,
        grid.speedup()
    ));
    body.push_str("}\n");
    std::fs::write(path, body)
}

fn main() {
    let cfg = parse_args();
    // force the thread-count read (and honour --threads) before timing
    let threads = kernels::num_threads();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let be = backend::active();
    let (sweep_threads, skipped_threads) = sweep_split(host_cores);
    println!(
        "kernel-bench: reps={} warmup={} threads={} host_cores={} backend={} ({}){}",
        cfg.reps,
        cfg.warmup,
        threads,
        host_cores,
        be.name(),
        be.simd_level(),
        if cfg.smoke { " (smoke)" } else { "" }
    );
    if !skipped_threads.is_empty() {
        println!(
            "sweep clamped to min(8, 2*host_cores): skipping {skipped_threads:?} pool threads"
        );
    }

    let cases = [
        bench_matmul(&cfg),
        bench_conv_forward(&cfg),
        bench_conv_backward(&cfg),
        bench_matmul3(&cfg),
    ];

    println!(
        "{:<26} {:>12} {:>12} {:>8} {:>12}",
        "case", "baseline ms", "optimized ms", "speedup", "max|diff|"
    );
    for c in &cases {
        println!(
            "{:<26} {:>12.3} {:>12.3} {:>7.2}x {:>12.3e}",
            c.name,
            c.baseline_ms,
            c.optimized_ms,
            c.speedup(),
            c.max_abs_diff
        );
    }

    let fixture = SweepFixture::build();
    let matrix = bench_backend_matrix(&cfg, &fixture, &sweep_threads);
    println!("\nbackend x thread matrix (speedup vs adjacent naive baseline):");
    println!(
        "{:<10} {:<10} {:>8} {:>14} {:>12} {:>12}",
        "backend", "level", "threads", "matmul ms", "speedup", "best"
    );
    for entry in &matrix {
        let c = &entry.cases[0];
        debug_assert_eq!(c.name, "matmul_256x256x256");
        println!(
            "{:<10} {:<10} {:>8} {:>14.3} {:>11.2}x {:>11.2}x",
            entry.backend,
            entry.simd_level,
            entry.threads,
            c.optimized_ms,
            c.speedup(),
            c.speedup_best()
        );
    }

    let sweep = bench_thread_sweep(&cfg, &fixture, &sweep_threads);
    println!("\nthread scaling (optimized kernels, scoped pool sizes):");
    println!(
        "{:<26} {:>9} {:>12} {:>11} {:>10}",
        "case", "threads", "optimized ms", "speedup/1t", "efficiency"
    );
    for entry in &sweep {
        for (j, (name, ms)) in entry.case_ms.iter().enumerate() {
            let base_ms = sweep[0].case_ms[j].1;
            let speedup = if *ms > 0.0 {
                base_ms / ms
            } else {
                f64::INFINITY
            };
            println!(
                "{:<26} {:>9} {:>12.3} {:>10.2}x {:>10.2}",
                name,
                entry.threads,
                ms,
                speedup,
                speedup / entry.threads as f64
            );
        }
    }

    let conversions = bench_conversions(&cfg);
    println!("\nhalf-precision conversion bandwidth ({CONV_ELEMS} elems):");
    println!(
        "{:<13} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "case", "scalar ms", "simd ms", "best", "scalar GB/s", "simd GB/s"
    );
    for c in &conversions {
        println!(
            "{:<13} {:>12.3} {:>12.3} {:>7.2}x {:>12.2} {:>12.2}",
            c.name,
            c.scalar_ms,
            c.simd_ms,
            c.speedup_best(),
            c.scalar_gbps(),
            c.simd_gbps()
        );
    }

    let quant = bench_quant_matmul(&cfg);
    println!("\nquantized matmul (Q8_0 in place vs dequantize + dense GEMM):");
    println!(
        "{:<20} {:>10} {:>16} {:>8} {:>8} {:>12}",
        "case", "qgemm ms", "dequant+gemm ms", "speedup", "best", "max|diff|"
    );
    for q in &quant {
        println!(
            "{:<20} {:>10.3} {:>16.3} {:>7.2}x {:>7.2}x {:>12.3e}",
            format!("qgemm_nt_{}x{}x{}", q.m, q.k, q.n),
            q.qgemm_ms,
            q.dequant_gemm_ms,
            q.speedup(),
            q.speedup_best(),
            q.max_abs_diff
        );
    }

    let grid = bench_grid(&cfg);
    println!(
        "\nschedule-grid harness ({} cells): 1 thread {:.1} ms, {} threads {:.1} ms -> {:.2}x",
        grid.cells,
        grid.serial_ms,
        GRID_THREADS,
        grid.parallel_ms,
        grid.speedup()
    );

    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let path = cfg.out.as_deref().unwrap_or(default_path);
    match write_json(
        path,
        &cfg,
        &cases,
        &matrix,
        &sweep,
        &skipped_threads,
        &conversions,
        &quant,
        &grid,
    ) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("kernel-bench: failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
