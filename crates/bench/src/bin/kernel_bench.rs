//! `kernel-bench` — self-contained perf harness for the rex-tensor
//! compute kernels (std-only: no criterion, works fully offline).
//!
//! Measures the blocked-GEMM / im2col kernel stack against the seed's
//! naive reference implementations ([`rex_tensor::reference`]) and writes
//! `BENCH_kernels.json` at the repository root. Timing is wall-clock
//! `std::time::Instant`, warmup runs followed by a median over N reps.
//!
//! ```text
//! cargo run --release -p rex-bench --bin kernel-bench [-- --smoke] [--reps N]
//!     [--threads N] [--out PATH]
//! ```
//!
//! `--smoke` drops to 3 reps / 1 warmup for CI sanity. `--threads N`
//! sets `REX_NUM_THREADS` before the first kernel dispatch. See
//! DESIGN.md §"Compute kernels" for the JSON schema.

use std::time::Instant;

use rex_tensor::conv::{conv2d_backward, conv2d_forward, Window};
use rex_tensor::ops::{batch_slice, matmul3};
use rex_tensor::reference;
use rex_tensor::{kernels, Prng};

struct Config {
    reps: usize,
    warmup: usize,
    smoke: bool,
    out: Option<String>,
}

struct Case {
    name: &'static str,
    baseline: &'static str,
    baseline_ms: f64,
    optimized_ms: f64,
    max_abs_diff: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        if self.optimized_ms > 0.0 {
            self.baseline_ms / self.optimized_ms
        } else {
            f64::INFINITY
        }
    }
}

fn parse_args() -> Config {
    let mut cfg = Config {
        reps: 15,
        warmup: 3,
        smoke: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                cfg.smoke = true;
                cfg.reps = 3;
                cfg.warmup = 1;
            }
            "--reps" => {
                cfg.reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a positive integer"));
            }
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
                // must happen before the first kernel dispatch caches it
                std::env::set_var("REX_NUM_THREADS", n.to_string());
            }
            "--out" => {
                cfg.out = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("kernel-bench: {msg}");
    eprintln!("usage: kernel-bench [--smoke] [--reps N] [--threads N] [--out PATH]");
    std::process::exit(2);
}

/// Median wall-clock milliseconds of `f` over `reps` runs after `warmup`
/// discarded runs.
fn time_median<T>(cfg: &Config, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..cfg.warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = (0..cfg.reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

/// 256×256×256 matmul: blocked GEMM vs the seed's branchy i-k-j loop.
fn bench_matmul(cfg: &Config) -> Case {
    let (m, k, n) = (256, 256, 256);
    let mut rng = Prng::new(7);
    let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
    let expect = reference::matmul_naive(m, k, n, a.data(), b.data());
    let got = a.matmul(&b).unwrap();
    Case {
        name: "matmul_256x256x256",
        baseline: "seed i-k-j loop with zero-skip branch",
        baseline_ms: time_median(cfg, || reference::matmul_naive(m, k, n, a.data(), b.data())),
        optimized_ms: time_median(cfg, || a.matmul(&b).unwrap()),
        max_abs_diff: max_abs_diff(got.data(), &expect),
    }
}

/// Conv2d forward at the acceptance shape 32×3×32×32, k=3 (O=16, s=1,
/// p=1): im2col + blocked GEMM vs the direct six-loop nest.
fn bench_conv_forward(cfg: &Config) -> Case {
    let mut rng = Prng::new(11);
    let input = rng.normal_tensor(&[32, 3, 32, 32], 0.0, 1.0);
    let weight = rng.normal_tensor(&[16, 3, 3, 3], 0.0, 0.3);
    let bias = rng.normal_tensor(&[16], 0.0, 0.1);
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let expect = reference::conv2d_direct(&input, &weight, Some(&bias), win).unwrap();
    let (got, _) = conv2d_forward(&input, &weight, Some(&bias), win).unwrap();
    Case {
        name: "conv2d_fwd_32x3x32x32_k3",
        baseline: "direct six-loop convolution",
        baseline_ms: time_median(cfg, || {
            reference::conv2d_direct(&input, &weight, Some(&bias), win).unwrap()
        }),
        optimized_ms: time_median(cfg, || {
            conv2d_forward(&input, &weight, Some(&bias), win).unwrap()
        }),
        max_abs_diff: max_abs_diff(got.data(), expect.data()),
    }
}

/// Conv2d backward at the same shape: im2col-GEMM gradients vs the
/// direct scatter nest.
fn bench_conv_backward(cfg: &Config) -> Case {
    let mut rng = Prng::new(13);
    let input = rng.normal_tensor(&[32, 3, 32, 32], 0.0, 1.0);
    let weight = rng.normal_tensor(&[16, 3, 3, 3], 0.0, 0.3);
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let (out, saved) = conv2d_forward(&input, &weight, None, win).unwrap();
    let d_out = rng.normal_tensor(out.shape(), 0.0, 1.0);
    let (di, dw, _) = conv2d_backward(&d_out, &weight, &saved).unwrap();
    let (rdi, rdw, _) = reference::conv2d_direct_backward(&d_out, &input, &weight, win).unwrap();
    Case {
        name: "conv2d_bwd_32x3x32x32_k3",
        baseline: "direct six-loop gradient scatter",
        baseline_ms: time_median(cfg, || {
            reference::conv2d_direct_backward(&d_out, &input, &weight, win).unwrap()
        }),
        optimized_ms: time_median(cfg, || conv2d_backward(&d_out, &weight, &saved).unwrap()),
        max_abs_diff: max_abs_diff(di.data(), rdi.data()).max(max_abs_diff(dw.data(), rdw.data())),
    }
}

/// Batched attention-shaped product `[16,64,64]×[16,64,64]`: matmul3 on
/// batch slices vs the seed path (batch_slice copies + branchy matmul).
fn bench_matmul3(cfg: &Config) -> Case {
    let (bs, m, k, n) = (16, 64, 64, 64);
    let mut rng = Prng::new(17);
    let a = rng.normal_tensor(&[bs, m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[bs, k, n], 0.0, 1.0);
    let seed_path = || {
        let mut out = Vec::with_capacity(bs * m * n);
        for s in 0..bs {
            let am = batch_slice(&a, s, m, k);
            let bm = batch_slice(&b, s, k, n);
            out.extend_from_slice(&reference::matmul_naive(m, k, n, am.data(), bm.data()));
        }
        out
    };
    let expect = seed_path();
    let got = matmul3(&a, &b).unwrap();
    Case {
        name: "matmul3_16x64x64x64",
        baseline: "batch_slice copies + seed matmul",
        baseline_ms: time_median(cfg, seed_path),
        optimized_ms: time_median(cfg, || matmul3(&a, &b).unwrap()),
        max_abs_diff: max_abs_diff(got.data(), &expect),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(path: &str, cfg: &Config, cases: &[Case]) -> std::io::Result<()> {
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"schema\": \"rex-kernel-bench/v1\",\n");
    body.push_str(&format!("  \"threads\": {},\n", kernels::num_threads()));
    body.push_str(&format!("  \"reps\": {},\n", cfg.reps));
    body.push_str(&format!("  \"warmup\": {},\n", cfg.warmup));
    body.push_str(&format!("  \"smoke\": {},\n", cfg.smoke));
    body.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline\": \"{}\", \"baseline_ms\": {:.4}, \
             \"optimized_ms\": {:.4}, \"speedup\": {:.3}, \"max_abs_diff\": {:.3e}}}{}\n",
            json_escape(c.name),
            json_escape(c.baseline),
            c.baseline_ms,
            c.optimized_ms,
            c.speedup(),
            c.max_abs_diff,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body)
}

fn main() {
    let cfg = parse_args();
    // force the thread-count read (and honour --threads) before timing
    let threads = kernels::num_threads();
    println!(
        "kernel-bench: reps={} warmup={} threads={}{}",
        cfg.reps,
        cfg.warmup,
        threads,
        if cfg.smoke { " (smoke)" } else { "" }
    );

    let cases = [
        bench_matmul(&cfg),
        bench_conv_forward(&cfg),
        bench_conv_backward(&cfg),
        bench_matmul3(&cfg),
    ];

    println!(
        "{:<26} {:>12} {:>12} {:>8} {:>12}",
        "case", "baseline ms", "optimized ms", "speedup", "max|diff|"
    );
    for c in &cases {
        println!(
            "{:<26} {:>12.3} {:>12.3} {:>7.2}x {:>12.3e}",
            c.name,
            c.baseline_ms,
            c.optimized_ms,
            c.speedup(),
            c.max_abs_diff
        );
    }

    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let path = cfg.out.as_deref().unwrap_or(default_path);
    match write_json(path, &cfg, &cases) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("kernel-bench: failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
