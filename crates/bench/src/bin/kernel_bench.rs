//! `kernel-bench` — self-contained perf harness for the rex-tensor
//! compute kernels (std-only: no criterion, works fully offline).
//!
//! Measures three things and writes `BENCH_kernels.json` at the
//! repository root:
//!
//! 1. **cases** — the blocked-GEMM / im2col kernel stack against the
//!    seed's naive reference implementations ([`rex_tensor::reference`]),
//!    at the pool's configured thread count.
//! 2. **thread_sweep** — the optimized kernels re-timed at 1/2/4/8 pool
//!    threads (via scoped pool overrides), with per-case speedup-vs-1
//!    and parallel efficiency (`speedup / threads`). `host_cores`
//!    records how many cores the host actually has, so sweep numbers
//!    from an oversubscribed host (threads > cores) read honestly:
//!    there, efficiency is bounded by `host_cores / threads`.
//! 3. **grid** — wall-clock of one small real [`rex_bench::run_schedule_grid`]
//!    training grid at 1 pool thread vs 4, i.e. the harness-level
//!    speedup from running independent grid cells concurrently.
//!
//! Timing is wall-clock `std::time::Instant`, warmup runs followed by a
//! median over N reps.
//!
//! ```text
//! cargo run --release -p rex-bench --bin kernel-bench [-- --smoke] [--reps N]
//!     [--threads N] [--out PATH]
//! ```
//!
//! `--smoke` drops to 3 reps / 1 warmup for CI sanity. `--threads N`
//! sizes the worker pool (overriding `REX_NUM_THREADS`) for the `cases`
//! section; the sweep and grid sections always pin their own pool sizes.
//! See DESIGN.md §"Compute kernels" for the JSON schema.

use std::time::Instant;

use rex_bench::{run_schedule_grid, Cell};
use rex_core::ScheduleSpec;
use rex_data::images::synth_cifar10;
use rex_tensor::conv::{conv2d_backward, conv2d_forward, Window};
use rex_tensor::ops::{batch_slice, matmul3};
use rex_tensor::reference;
use rex_tensor::{kernels, Prng};
use rex_train::tasks::{run_image_cell, ImageModel};
use rex_train::{Budget, OptimizerKind};

/// Pool sizes the scaling sweep measures.
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Pool size for the parallel leg of the grid measurement.
const GRID_THREADS: usize = 4;

struct Config {
    reps: usize,
    warmup: usize,
    smoke: bool,
    out: Option<String>,
}

struct Case {
    name: &'static str,
    baseline: &'static str,
    baseline_ms: f64,
    optimized_ms: f64,
    max_abs_diff: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        if self.optimized_ms > 0.0 {
            self.baseline_ms / self.optimized_ms
        } else {
            f64::INFINITY
        }
    }
}

/// One thread count's optimized-kernel timings (sweep section).
struct SweepEntry {
    threads: usize,
    case_ms: Vec<(&'static str, f64)>,
}

/// The grid-harness measurement: same cells, 1 pool thread vs
/// [`GRID_THREADS`].
struct GridBench {
    cells: usize,
    serial_ms: f64,
    parallel_ms: f64,
}

impl GridBench {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            f64::INFINITY
        }
    }
}

fn parse_args() -> Config {
    let mut cfg = Config {
        reps: 15,
        warmup: 3,
        smoke: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                cfg.smoke = true;
                cfg.reps = 3;
                cfg.warmup = 1;
            }
            "--reps" => {
                cfg.reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a positive integer"));
            }
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
                if let Err(e) = rex_pool::set_num_threads(n) {
                    die(&format!("--threads {n}: {e}"));
                }
            }
            "--out" => {
                cfg.out = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("kernel-bench: {msg}");
    eprintln!("usage: kernel-bench [--smoke] [--reps N] [--threads N] [--out PATH]");
    std::process::exit(2);
}

/// Median wall-clock milliseconds of `f` over `reps` runs after `warmup`
/// discarded runs.
fn time_median<T>(cfg: &Config, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..cfg.warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = (0..cfg.reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

/// 256×256×256 matmul: blocked GEMM vs the seed's branchy i-k-j loop.
fn bench_matmul(cfg: &Config) -> Case {
    let (m, k, n) = (256, 256, 256);
    let mut rng = Prng::new(7);
    let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
    let expect = reference::matmul_naive(m, k, n, a.data(), b.data());
    let got = a.matmul(&b).unwrap();
    Case {
        name: "matmul_256x256x256",
        baseline: "seed i-k-j loop with zero-skip branch",
        baseline_ms: time_median(cfg, || reference::matmul_naive(m, k, n, a.data(), b.data())),
        optimized_ms: time_median(cfg, || a.matmul(&b).unwrap()),
        max_abs_diff: max_abs_diff(got.data(), &expect),
    }
}

/// Conv2d forward at the acceptance shape 32×3×32×32, k=3 (O=16, s=1,
/// p=1): im2col + blocked GEMM vs the direct six-loop nest.
fn bench_conv_forward(cfg: &Config) -> Case {
    let mut rng = Prng::new(11);
    let input = rng.normal_tensor(&[32, 3, 32, 32], 0.0, 1.0);
    let weight = rng.normal_tensor(&[16, 3, 3, 3], 0.0, 0.3);
    let bias = rng.normal_tensor(&[16], 0.0, 0.1);
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let expect = reference::conv2d_direct(&input, &weight, Some(&bias), win).unwrap();
    let (got, _) = conv2d_forward(&input, &weight, Some(&bias), win).unwrap();
    Case {
        name: "conv2d_fwd_32x3x32x32_k3",
        baseline: "direct six-loop convolution",
        baseline_ms: time_median(cfg, || {
            reference::conv2d_direct(&input, &weight, Some(&bias), win).unwrap()
        }),
        optimized_ms: time_median(cfg, || {
            conv2d_forward(&input, &weight, Some(&bias), win).unwrap()
        }),
        max_abs_diff: max_abs_diff(got.data(), expect.data()),
    }
}

/// Conv2d backward at the same shape: im2col-GEMM gradients vs the
/// direct scatter nest.
fn bench_conv_backward(cfg: &Config) -> Case {
    let mut rng = Prng::new(13);
    let input = rng.normal_tensor(&[32, 3, 32, 32], 0.0, 1.0);
    let weight = rng.normal_tensor(&[16, 3, 3, 3], 0.0, 0.3);
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let (out, saved) = conv2d_forward(&input, &weight, None, win).unwrap();
    let d_out = rng.normal_tensor(out.shape(), 0.0, 1.0);
    let (di, dw, _) = conv2d_backward(&d_out, &weight, &saved).unwrap();
    let (rdi, rdw, _) = reference::conv2d_direct_backward(&d_out, &input, &weight, win).unwrap();
    Case {
        name: "conv2d_bwd_32x3x32x32_k3",
        baseline: "direct six-loop gradient scatter",
        baseline_ms: time_median(cfg, || {
            reference::conv2d_direct_backward(&d_out, &input, &weight, win).unwrap()
        }),
        optimized_ms: time_median(cfg, || conv2d_backward(&d_out, &weight, &saved).unwrap()),
        max_abs_diff: max_abs_diff(di.data(), rdi.data()).max(max_abs_diff(dw.data(), rdw.data())),
    }
}

/// Batched attention-shaped product `[16,64,64]×[16,64,64]`: matmul3 on
/// batch slices vs the seed path (batch_slice copies + branchy matmul).
fn bench_matmul3(cfg: &Config) -> Case {
    let (bs, m, k, n) = (16, 64, 64, 64);
    let mut rng = Prng::new(17);
    let a = rng.normal_tensor(&[bs, m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[bs, k, n], 0.0, 1.0);
    let seed_path = || {
        let mut out = Vec::with_capacity(bs * m * n);
        for s in 0..bs {
            let am = batch_slice(&a, s, m, k);
            let bm = batch_slice(&b, s, k, n);
            out.extend_from_slice(&reference::matmul_naive(m, k, n, am.data(), bm.data()));
        }
        out
    };
    let expect = seed_path();
    let got = matmul3(&a, &b).unwrap();
    Case {
        name: "matmul3_16x64x64x64",
        baseline: "batch_slice copies + seed matmul",
        baseline_ms: time_median(cfg, seed_path),
        optimized_ms: time_median(cfg, || matmul3(&a, &b).unwrap()),
        max_abs_diff: max_abs_diff(got.data(), &expect),
    }
}

/// Re-times the optimized kernels at each sweep thread count. Scoped
/// pool overrides keep the process-wide default untouched.
fn bench_thread_sweep(cfg: &Config) -> Vec<SweepEntry> {
    let (m, k, n) = (256, 256, 256);
    let mut rng = Prng::new(7);
    let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
    let mut rng = Prng::new(11);
    let input = rng.normal_tensor(&[32, 3, 32, 32], 0.0, 1.0);
    let weight = rng.normal_tensor(&[16, 3, 3, 3], 0.0, 0.3);
    let bias = rng.normal_tensor(&[16], 0.0, 0.1);
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let (_, saved) = conv2d_forward(&input, &weight, None, win).unwrap();
    let mut rng = Prng::new(13);
    let d_out = rng.normal_tensor(&[32, 16, 32, 32], 0.0, 1.0);

    SWEEP_THREADS
        .iter()
        .map(|&t| {
            rex_pool::with_pool_size(t, || SweepEntry {
                threads: t,
                case_ms: vec![
                    (
                        "matmul_256x256x256",
                        time_median(cfg, || a.matmul(&b).unwrap()),
                    ),
                    (
                        "conv2d_fwd_32x3x32x32_k3",
                        time_median(cfg, || {
                            conv2d_forward(&input, &weight, Some(&bias), win).unwrap()
                        }),
                    ),
                    (
                        "conv2d_bwd_32x3x32x32_k3",
                        time_median(cfg, || conv2d_backward(&d_out, &weight, &saved).unwrap()),
                    ),
                ],
            })
        })
        .collect()
}

/// Times one small real training grid (2 schedules × 2 trials of a
/// micro-ResNet cell) end to end at 1 pool thread, then at
/// [`GRID_THREADS`]. Both legs run the identical cell list; the
/// determinism contract makes their records equal, so the only variable
/// is how many cells run at once.
fn bench_grid(cfg: &Config) -> GridBench {
    let data = synth_cifar10(16, 8, 0xBE7C);
    let schedules = [ScheduleSpec::Rex, ScheduleSpec::Linear];
    let epochs = if cfg.smoke { 1 } else { 2 };
    let budgets = [Budget::new(epochs, 100)];
    let trials = 2;
    let cells = schedules.len() * budgets.len() * trials;
    let run = || {
        run_schedule_grid(
            "GRID-BENCH",
            OptimizerKind::sgdm(),
            &schedules,
            &budgets,
            trials,
            0xBE7C,
            true,
            None,
            None,
            |cell: &Cell, _rec| {
                run_image_cell(
                    ImageModel::MicroResNet20,
                    &data,
                    cell.budget.epochs(),
                    8,
                    cell.optimizer,
                    cell.schedule.clone(),
                    0.05,
                    cell.seed,
                )
                .unwrap()
            },
        )
    };
    let time_once = || {
        let t0 = Instant::now();
        std::hint::black_box(run());
        t0.elapsed().as_secs_f64() * 1e3
    };
    GridBench {
        cells,
        serial_ms: rex_pool::with_pool_size(1, time_once),
        parallel_ms: rex_pool::with_pool_size(GRID_THREADS, time_once),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(
    path: &str,
    cfg: &Config,
    cases: &[Case],
    sweep: &[SweepEntry],
    grid: &GridBench,
) -> std::io::Result<()> {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"schema\": \"rex-kernel-bench/v2\",\n");
    body.push_str(&format!("  \"threads\": {},\n", kernels::num_threads()));
    body.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    body.push_str(&format!("  \"reps\": {},\n", cfg.reps));
    body.push_str(&format!("  \"warmup\": {},\n", cfg.warmup));
    body.push_str(&format!("  \"smoke\": {},\n", cfg.smoke));
    body.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline\": \"{}\", \"baseline_ms\": {:.4}, \
             \"optimized_ms\": {:.4}, \"speedup\": {:.3}, \"max_abs_diff\": {:.3e}}}{}\n",
            json_escape(c.name),
            json_escape(c.baseline),
            c.baseline_ms,
            c.optimized_ms,
            c.speedup(),
            c.max_abs_diff,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    body.push_str("  \"thread_sweep\": [\n");
    let base = &sweep[0];
    for (i, entry) in sweep.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"threads\": {}, \"cases\": [\n",
            entry.threads
        ));
        for (j, (name, ms)) in entry.case_ms.iter().enumerate() {
            let base_ms = base.case_ms[j].1;
            let speedup = if *ms > 0.0 {
                base_ms / ms
            } else {
                f64::INFINITY
            };
            body.push_str(&format!(
                "      {{\"name\": \"{}\", \"optimized_ms\": {:.4}, \"speedup_vs_1\": {:.3}, \
                 \"efficiency\": {:.3}}}{}\n",
                json_escape(name),
                ms,
                speedup,
                speedup / entry.threads as f64,
                if j + 1 < entry.case_ms.len() { "," } else { "" }
            ));
        }
        body.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!(
        "  \"grid\": {{\"cells\": {}, \"serial_ms\": {:.4}, \"parallel_threads\": {}, \
         \"parallel_ms\": {:.4}, \"speedup\": {:.3}}}\n",
        grid.cells,
        grid.serial_ms,
        GRID_THREADS,
        grid.parallel_ms,
        grid.speedup()
    ));
    body.push_str("}\n");
    std::fs::write(path, body)
}

fn main() {
    let cfg = parse_args();
    // force the thread-count read (and honour --threads) before timing
    let threads = kernels::num_threads();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "kernel-bench: reps={} warmup={} threads={} host_cores={}{}",
        cfg.reps,
        cfg.warmup,
        threads,
        host_cores,
        if cfg.smoke { " (smoke)" } else { "" }
    );

    let cases = [
        bench_matmul(&cfg),
        bench_conv_forward(&cfg),
        bench_conv_backward(&cfg),
        bench_matmul3(&cfg),
    ];

    println!(
        "{:<26} {:>12} {:>12} {:>8} {:>12}",
        "case", "baseline ms", "optimized ms", "speedup", "max|diff|"
    );
    for c in &cases {
        println!(
            "{:<26} {:>12.3} {:>12.3} {:>7.2}x {:>12.3e}",
            c.name,
            c.baseline_ms,
            c.optimized_ms,
            c.speedup(),
            c.max_abs_diff
        );
    }

    let sweep = bench_thread_sweep(&cfg);
    println!("\nthread scaling (optimized kernels, scoped pool sizes):");
    println!(
        "{:<26} {:>9} {:>12} {:>11} {:>10}",
        "case", "threads", "optimized ms", "speedup/1t", "efficiency"
    );
    for entry in &sweep {
        for (j, (name, ms)) in entry.case_ms.iter().enumerate() {
            let base_ms = sweep[0].case_ms[j].1;
            let speedup = if *ms > 0.0 {
                base_ms / ms
            } else {
                f64::INFINITY
            };
            println!(
                "{:<26} {:>9} {:>12.3} {:>10.2}x {:>10.2}",
                name,
                entry.threads,
                ms,
                speedup,
                speedup / entry.threads as f64
            );
        }
    }

    let grid = bench_grid(&cfg);
    println!(
        "\nschedule-grid harness ({} cells): 1 thread {:.1} ms, {} threads {:.1} ms -> {:.2}x",
        grid.cells,
        grid.serial_ms,
        GRID_THREADS,
        grid.parallel_ms,
        grid.speedup()
    );

    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let path = cfg.out.as_deref().unwrap_or(default_path);
    match write_json(path, &cfg, &cases, &sweep, &grid) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("kernel-bench: failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
