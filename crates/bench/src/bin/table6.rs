//! **Table 6 — VGG16-CIFAR100**: schedule × budget grid for the plain-CNN
//! / many-class analogue, under SGDM and Adam.
//!
//! The class count is reduced from 100 (20 in fast mode) to keep the
//! single-core runtime tractable; DESIGN.md documents the substitution.

use rex_bench::{print_budget_table, run_schedule_grid, table_schedules, Args};
use rex_data::images::synth_cifar100;
use rex_eval::store::write_csv;
use rex_train::tasks::{run_image_cell_traced, ImageModel};
use rex_train::{Budget, OptimizerKind};

fn main() {
    let args = Args::parse();
    let (max_epochs, classes, per_class, test_per_class, trials) = args.scale.pick(
        (3usize, 5usize, 8usize, 4usize, 1usize),
        (40, 20, 30, 10, 2),
        (48, 100, 50, 10, 3),
    );
    let trials = args.trials.unwrap_or(trials);
    let budgets = match args.scale {
        rex_bench::ScaleKind::Smoke => vec![Budget::new(max_epochs, 100)],
        _ => Budget::paper_levels(max_epochs),
    };
    let data = synth_cifar100(classes, per_class, test_per_class, args.seed ^ 0xC1F100);
    let schedules = table_schedules(2);

    let mut records = Vec::new();
    for optimizer in [OptimizerKind::sgdm(), OptimizerKind::adam()] {
        records.extend(run_schedule_grid(
            "VGG16-CIFAR100",
            optimizer,
            &schedules,
            &budgets,
            trials,
            args.seed,
            true,
            args.trace.as_deref(),
            args.resume.as_deref(),
            |cell, rec| {
                run_image_cell_traced(
                    ImageModel::MicroVgg(12),
                    &data,
                    cell.budget.epochs(),
                    32,
                    cell.optimizer,
                    cell.schedule.clone(),
                    // VGG (no batch norm) needs to sit below the plateau-
                    // locking LR; see DESIGN.md on per-setting LR choices
                    match cell.optimizer {
                        OptimizerKind::Sgdm { .. } => 0.01,
                        _ => 3e-3,
                    },
                    cell.seed,
                    args.dtype,
                    rec,
                )
                .expect("training cell failed")
            },
        ));
    }

    print_budget_table("Table 6: VGG16-CIFAR100 (test error %)", &records, &budgets);
    let path = args.out.join("table6_vgg16_cifar100.csv");
    write_csv(&path, &records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}
