//! **Table 9 — YOLO-VOC**: detection grid on synthetic scenes, Adam only
//! (as in the paper), metric = test mAP@0.5 (%), higher is better. A
//! 2-epoch linear warmup is applied and excluded from the budget; epochs
//! round up — both per the paper's protocol.

use rex_bench::{print_budget_table, run_schedule_grid, Args};
use rex_core::ScheduleSpec;
use rex_data::scenes::synth_scenes;
use rex_eval::store::write_csv;
use rex_train::tasks::run_detection_cell_traced;
use rex_train::{Budget, OptimizerKind};

fn main() {
    let args = Args::parse();
    let (max_epochs, n_train, n_test, trials) = args.scale.pick(
        (4usize, 32usize, 16usize, 1usize),
        (60, 240, 100, 2),
        (50, 800, 300, 3),
    );
    let trials = args.trials.unwrap_or(trials);
    let budgets = match args.scale {
        rex_bench::ScaleKind::Smoke => vec![Budget::new(max_epochs, 100)],
        _ => Budget::paper_levels(max_epochs),
    };
    let train = synth_scenes(n_train, 24, args.seed ^ 0x70C0);
    let test = synth_scenes(n_test, 24, args.seed ^ 0x70C1);
    // Table 9 rows: bare Adam + six schedules (no Decay-on-Plateau).
    let schedules = vec![
        ScheduleSpec::None,
        ScheduleSpec::Step,
        ScheduleSpec::OneCycle,
        ScheduleSpec::Cosine,
        ScheduleSpec::Linear,
        ScheduleSpec::ExpDecay,
        ScheduleSpec::Rex,
    ];

    let records = run_schedule_grid(
        "YOLO-VOC",
        OptimizerKind::adam(),
        &schedules,
        &budgets,
        trials,
        args.seed,
        false, // mAP: higher is better
        args.trace.as_deref(),
        args.resume.as_deref(),
        |cell, rec| {
            run_detection_cell_traced(
                &train,
                &test,
                cell.budget.epochs(),
                2, // warmup epochs, excluded from the budget
                8,
                cell.optimizer,
                cell.schedule.clone(),
                1e-2,
                cell.seed,
                rec,
            )
            .expect("training cell failed")
        },
    );

    print_budget_table(
        "Table 9: YOLO-VOC (mAP %, higher is better)",
        &records,
        &budgets,
    );
    let path = args.out.join("table9_yolo_voc.csv");
    write_csv(&path, &records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}
