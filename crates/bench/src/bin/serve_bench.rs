//! `serve-bench` — load benchmark for the `rex-serve` job server
//! (std-only: no criterion, works fully offline).
//!
//! Starts an in-process [`rex_serve::Server`] on an ephemeral port, fires
//! hundreds of short-budget `digits-mlp` jobs at it from concurrent client
//! threads (each request a fresh `Connection: close` socket, exactly how
//! an external client would arrive), and polls every job to a terminal
//! state. It then writes `BENCH_serve.json` at the repository root
//! (schema `rex-serve-bench/v2`) recording:
//!
//! * **accept latency** — first submit attempt to the `202 Accepted`
//!   response, p50/p99/max. Includes any 429-backpressure retries, so
//!   the number reflects what a client actually waits at the door.
//! * **complete latency** — first submit attempt to the job first being
//!   observed terminal, p50/p99/max.
//! * **retry behaviour** — total 429 rejections absorbed plus a
//!   `retries_histogram` bucketing jobs by how many rejections each one
//!   ate before admission. Rejected submits back off exponentially with
//!   full jitter (deterministic [`Prng`] per job), ceilinged by the
//!   server's advertised `Retry-After` — clients respect the server's
//!   own pacing hint instead of re-stampeding on a fixed timer.
//! * **provenance** — the active compute `backend` and `simd_level`, so
//!   a committed artifact records which numerics produced it.
//! * **integrity** — `dropped` (submitted ids the ledger never finished)
//!   and `duplicated` (ids handed out twice) must both be 0; the process
//!   exits non-zero otherwise. `scripts/bench_guard.sh` re-checks the
//!   committed artifact.
//!
//! ```text
//! cargo run --release -p rex-bench --bin serve-bench [-- --smoke]
//!     [--jobs N] [--clients N] [--workers N] [--queue-depth N] [--out PATH]
//! ```
//!
//! `--smoke` drops to 24 jobs / 4 clients for CI sanity. Every job is
//! `digits-mlp` at `budget: 1` (one epoch, 8 steps) with checkpointing
//! off, so the bench measures the serving layer — admission, queueing,
//! dispatch, status plumbing — not the training kernels.

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rex_serve::client::request;
use rex_serve::{ServeConfig, Server};
use rex_telemetry::json::{fmt_f64, parse_object, Value};
use rex_tensor::{backend, Prng};

/// Per-request client timeout; generous because a saturated queue can
/// stall accepts behind running jobs.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

/// Floor of the first backoff pause after a 429 rejection, milliseconds.
const RETRY_BASE_MS: u64 = 5;

/// Hard ceiling on any single backoff pause, milliseconds — guards
/// against a nonsensical `Retry-After` keeping the bench asleep.
const RETRY_CAP_MS: u64 = 2_000;

/// Pause between status-poll sweeps.
const POLL_PAUSE: Duration = Duration::from_millis(5);

struct Config {
    jobs: usize,
    clients: usize,
    workers: usize,
    queue_depth: usize,
    smoke: bool,
    out: Option<String>,
}

fn die(msg: &str) -> ! {
    eprintln!("serve-bench: {msg}");
    eprintln!(
        "usage: serve-bench [--smoke] [--jobs N] [--clients N] [--workers N] \
         [--queue-depth N] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut cfg = Config {
        jobs: 200,
        clients: 12,
        workers: host_cores.clamp(1, 4),
        queue_depth: 32,
        smoke: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    let mut jobs_set = false;
    let mut clients_set = false;
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| die(&format!("{name} needs a positive integer")))
        };
        match arg.as_str() {
            "--smoke" => cfg.smoke = true,
            "--jobs" => {
                cfg.jobs = num("--jobs");
                jobs_set = true;
            }
            "--clients" => {
                cfg.clients = num("--clients");
                clients_set = true;
            }
            "--workers" => cfg.workers = num("--workers"),
            "--queue-depth" => cfg.queue_depth = num("--queue-depth"),
            "--out" => {
                cfg.out = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    if cfg.smoke {
        if !jobs_set {
            cfg.jobs = 24;
        }
        if !clients_set {
            cfg.clients = 4;
        }
    }
    cfg
}

/// Inclusive nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[f64], p: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p * (sorted.len() - 1) + 50) / 100;
    sorted[idx.min(sorted.len() - 1)]
}

struct Submitted {
    id: String,
    started: Instant,
    accept_ms: f64,
    retries: u64,
}

/// Submits one job, retrying on 429 until accepted. Returns the job id,
/// the accept latency, and how many rejections were absorbed.
///
/// Rejected submits honor the server's `Retry-After` header: the pause
/// grows exponentially from [`RETRY_BASE_MS`] up to the advertised value
/// (seconds, converted to ms, capped at [`RETRY_CAP_MS`]), and the actual
/// sleep is drawn uniformly from `[1, ceiling]` ("full jitter") off a
/// [`Prng`] seeded from the job index — deterministic, and decorrelated
/// across clients so they do not re-stampede the door in lockstep.
fn submit_one(addr: SocketAddr, seed: u64) -> Submitted {
    let body = format!(
        "{{\"setting\":\"digits-mlp\",\"budget\":1,\"seed\":{seed},\"checkpoint_every\":0}}"
    );
    let started = Instant::now();
    let mut retries = 0u64;
    let mut jitter = Prng::new(0x0B0F_F5E5 ^ seed);
    loop {
        let resp = request(addr, "POST", "/v1/jobs", Some(&body), REQUEST_TIMEOUT)
            .unwrap_or_else(|e| die(&format!("submit failed: {e}")));
        match resp.status {
            202 => {
                let fields = parse_object(resp.text().trim())
                    .unwrap_or_else(|e| die(&format!("bad 202 body: {e}")));
                let Some(Value::Str(id)) = fields.get("id") else {
                    die("202 body lacks an id");
                };
                return Submitted {
                    id: id.clone(),
                    started,
                    accept_ms: started.elapsed().as_secs_f64() * 1e3,
                    retries,
                };
            }
            429 => {
                retries += 1;
                let advertised_ms = resp
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map_or(1_000, |s| s.saturating_mul(1_000))
                    .clamp(RETRY_BASE_MS, RETRY_CAP_MS);
                let ceiling = (RETRY_BASE_MS << (retries - 1).min(8)).min(advertised_ms);
                let pause_ms = 1 + jitter.below(ceiling as usize) as u64;
                std::thread::sleep(Duration::from_millis(pause_ms));
            }
            other => die(&format!("submit got unexpected status {other}")),
        }
    }
}

/// Polls `id` until its state is terminal; returns (state, complete_ms).
fn await_terminal(addr: SocketAddr, sub: &Submitted) -> (String, f64) {
    loop {
        let resp = request(
            addr,
            "GET",
            &format!("/v1/jobs/{}", sub.id),
            None,
            REQUEST_TIMEOUT,
        )
        .unwrap_or_else(|e| die(&format!("poll failed: {e}")));
        if resp.status != 200 {
            die(&format!("poll of {} got status {}", sub.id, resp.status));
        }
        let fields =
            parse_object(resp.text().trim()).unwrap_or_else(|e| die(&format!("bad job body: {e}")));
        let Some(Value::Str(state)) = fields.get("state") else {
            die("job body lacks a state");
        };
        if matches!(state.as_str(), "done" | "failed" | "canceled") {
            return (state.clone(), sub.started.elapsed().as_secs_f64() * 1e3);
        }
        std::thread::sleep(POLL_PAUSE);
    }
}

fn quantiles(mut samples: Vec<f64>) -> (f64, f64, f64) {
    samples.sort_by(f64::total_cmp);
    let max = samples.last().copied().unwrap_or(0.0);
    (percentile(&samples, 50), percentile(&samples, 99), max)
}

/// Rounds to 3 decimal places for the committed artifact.
fn r3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// Histogram bucket labels: jobs grouped by how many 429 rejections each
/// absorbed before its submit was accepted.
const HIST_BUCKETS: [&str; 6] = ["0", "1", "2", "3", "4-7", "8+"];

/// Buckets one job's retry count into [`HIST_BUCKETS`].
fn hist_bucket(retries: u64) -> usize {
    match retries {
        0..=3 => retries as usize,
        4..=7 => 4,
        _ => 5,
    }
}

fn write_json(path: &str, cfg: &Config, report: &Report) -> std::io::Result<()> {
    let be = backend::active();
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"schema\": \"rex-serve-bench/v2\",\n");
    body.push_str(&format!("  \"backend\": \"{}\",\n", be.name()));
    body.push_str(&format!("  \"simd_level\": \"{}\",\n", be.simd_level()));
    body.push_str(&format!("  \"jobs\": {},\n", cfg.jobs));
    body.push_str(&format!("  \"clients\": {},\n", cfg.clients));
    body.push_str(&format!("  \"workers\": {},\n", cfg.workers));
    body.push_str(&format!("  \"queue_depth\": {},\n", cfg.queue_depth));
    body.push_str(&format!("  \"smoke\": {},\n", cfg.smoke));
    body.push_str(&format!("  \"done\": {},\n", report.done));
    body.push_str(&format!("  \"failed\": {},\n", report.failed));
    body.push_str(&format!("  \"dropped\": {},\n", report.dropped));
    body.push_str(&format!("  \"duplicated\": {},\n", report.duplicated));
    body.push_str(&format!("  \"retries_429\": {},\n", report.retries));
    let hist = HIST_BUCKETS
        .iter()
        .zip(report.retries_hist)
        .map(|(label, count)| format!("\"{label}\": {count}"))
        .collect::<Vec<_>>()
        .join(", ");
    body.push_str(&format!("  \"retries_histogram\": {{{hist}}},\n"));
    body.push_str(&format!(
        "  \"accept_ms\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}},\n",
        fmt_f64(r3(report.accept.0)),
        fmt_f64(r3(report.accept.1)),
        fmt_f64(r3(report.accept.2))
    ));
    body.push_str(&format!(
        "  \"complete_ms\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}},\n",
        fmt_f64(r3(report.complete.0)),
        fmt_f64(r3(report.complete.1)),
        fmt_f64(r3(report.complete.2))
    ));
    body.push_str(&format!("  \"wall_s\": {},\n", fmt_f64(r3(report.wall_s))));
    body.push_str(&format!(
        "  \"throughput_jobs_per_s\": {}\n",
        fmt_f64(r3(report.throughput))
    ));
    body.push_str("}\n");
    std::fs::write(path, body)
}

struct Report {
    done: usize,
    failed: usize,
    dropped: usize,
    duplicated: usize,
    retries: u64,
    retries_hist: [usize; 6],
    accept: (f64, f64, f64),
    complete: (f64, f64, f64),
    wall_s: f64,
    throughput: f64,
}

fn main() {
    let cfg = parse_args();
    let data_dir = std::env::temp_dir().join(format!("rex-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: data_dir.clone(),
        queue_depth: cfg.queue_depth,
        workers: cfg.workers,
        default_checkpoint_every: 0,
        ..ServeConfig::default()
    })
    .unwrap_or_else(|e| die(&format!("server failed to start: {e}")));
    let addr = server.addr();
    println!(
        "serve-bench: jobs={} clients={} workers={} queue_depth={} addr={addr}{}",
        cfg.jobs,
        cfg.clients,
        cfg.workers,
        cfg.queue_depth,
        if cfg.smoke { " (smoke)" } else { "" }
    );

    let wall_start = Instant::now();

    // phase 1 — every client fires submits as fast as the door admits
    // them (no polling in between), so the offered load outruns the
    // workers and genuinely saturates the queue: the recorded 429
    // retries and accept latencies are the backpressure behaviour under
    // load, not a drip-feed. Each job's seed is its global index, so the
    // workload is deterministic regardless of submission interleaving.
    let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let total = cfg.jobs;
    let handles: Vec<_> = (0..cfg.clients)
        .map(|_| {
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= total {
                        return mine;
                    }
                    mine.push(submit_one(addr, i as u64));
                }
            })
        })
        .collect();

    let mut accepted = Vec::with_capacity(total);
    for handle in handles {
        accepted.extend(handle.join().expect("client thread panicked"));
    }

    // phase 2 — poll every accepted job to a terminal state; complete
    // latency is measured from each job's first submit attempt, so it
    // includes the queue wait the saturation built up
    let submitted: Vec<_> = accepted
        .into_iter()
        .map(|sub| {
            let (state, complete_ms) = await_terminal(addr, &sub);
            (sub, state, complete_ms)
        })
        .collect();
    let wall_s = wall_start.elapsed().as_secs_f64();

    // integrity: every submitted id unique, every id terminal in the ledger
    let mut ids = BTreeSet::new();
    let duplicated = submitted
        .iter()
        .filter(|(sub, _, _)| !ids.insert(sub.id.clone()))
        .count();
    let listing = request(addr, "GET", "/v1/jobs", None, REQUEST_TIMEOUT)
        .unwrap_or_else(|e| die(&format!("listing failed: {e}")));
    let mut ledger_done = BTreeSet::new();
    for line in listing.text().lines().filter(|l| !l.trim().is_empty()) {
        let fields = parse_object(line).unwrap_or_else(|e| die(&format!("bad listing line: {e}")));
        if let (Some(Value::Str(id)), Some(Value::Str(state))) =
            (fields.get("id"), fields.get("state"))
        {
            if state == "done" {
                ledger_done.insert(id.clone());
            }
        }
    }
    let dropped = ids.iter().filter(|id| !ledger_done.contains(*id)).count();
    let done = submitted.iter().filter(|(_, s, _)| s == "done").count();
    let failed = submitted.iter().filter(|(_, s, _)| s == "failed").count();
    let retries: u64 = submitted.iter().map(|(sub, _, _)| sub.retries).sum();
    let mut retries_hist = [0usize; 6];
    for (sub, _, _) in &submitted {
        retries_hist[hist_bucket(sub.retries)] += 1;
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);

    let accept = quantiles(submitted.iter().map(|(s, _, _)| s.accept_ms).collect());
    let complete = quantiles(submitted.iter().map(|(_, _, ms)| *ms).collect());
    let report = Report {
        done,
        failed,
        dropped,
        duplicated,
        retries,
        retries_hist,
        accept,
        complete,
        wall_s,
        throughput: total as f64 / wall_s.max(1e-9),
    };

    println!(
        "accept   p50 {:>8.2} ms   p99 {:>8.2} ms   max {:>8.2} ms   (429 retries: {retries})",
        accept.0, accept.1, accept.2
    );
    let hist_line = HIST_BUCKETS
        .iter()
        .zip(retries_hist)
        .map(|(label, count)| format!("{label}:{count}"))
        .collect::<Vec<_>>()
        .join("  ");
    println!("retries histogram (jobs by 429s absorbed)   {hist_line}");
    println!(
        "complete p50 {:>8.2} ms   p99 {:>8.2} ms   max {:>8.2} ms",
        complete.0, complete.1, complete.2
    );
    println!(
        "{done}/{total} done, {failed} failed, {dropped} dropped, {duplicated} duplicated, \
         {:.1} jobs/s over {wall_s:.1} s",
        report.throughput
    );

    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let path = cfg.out.as_deref().unwrap_or(default_path);
    match write_json(path, &cfg, &report) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("serve-bench: failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if done != total || dropped != 0 || duplicated != 0 {
        eprintln!("serve-bench: INTEGRITY FAILURE (see counts above)");
        std::process::exit(1);
    }
}
