//! **Figure 2 — schedule shapes**: emits the learning-rate curves of the
//! paper's Figure 2 as CSV series (progress vs LR multiplier): the step,
//! linear, and REX profiles under each sampling rate, plus every schedule
//! at its usual sampling rate. Pure schedule evaluation — no training.

use std::fs;

use rex_bench::Args;
use rex_core::{SamplingRate, ScheduleSpec, Table2Profile};

const POINTS: u64 = 200;

fn curve(spec: &ScheduleSpec) -> Vec<f64> {
    let mut sched = spec.build();
    (0..=POINTS).map(|t| sched.factor(t, POINTS)).collect()
}

fn main() {
    let args = Args::parse();
    fs::create_dir_all(&args.out).expect("create out dir");

    let mut csv = String::from("series,progress,factor\n");
    // Panels 1-3: the three profiles under each sampling rate.
    for profile in Table2Profile::all() {
        for rate in SamplingRate::table2_rates() {
            let spec = ScheduleSpec::Sampled(profile, rate.clone());
            for (i, f) in curve(&spec).iter().enumerate() {
                csv.push_str(&format!(
                    "{} @ {},{:.4},{:.6}\n",
                    profile.label(),
                    rate.label(),
                    i as f64 / POINTS as f64,
                    f
                ));
            }
        }
    }
    // Panel 4: each schedule at its usual sampling rate.
    for spec in [
        ScheduleSpec::Step,
        ScheduleSpec::Linear,
        ScheduleSpec::Cosine,
        ScheduleSpec::ExpDecay,
        ScheduleSpec::OneCycle,
        ScheduleSpec::Rex,
    ] {
        for (i, f) in curve(&spec).iter().enumerate() {
            csv.push_str(&format!(
                "{},{:.4},{:.6}\n",
                spec.name(),
                i as f64 / POINTS as f64,
                f
            ));
        }
    }
    let path = args.out.join("fig2_schedule_shapes.csv");
    fs::write(&path, csv).expect("write CSV");

    // A small ASCII rendering of the usual-rate panel for the terminal.
    println!("## Figure 2 (right panel): schedules at their usual sampling rate\n");
    let specs = [
        ScheduleSpec::Step,
        ScheduleSpec::Linear,
        ScheduleSpec::Cosine,
        ScheduleSpec::Rex,
    ];
    for spec in &specs {
        let c = curve(spec);
        let bars: String = (0..50)
            .map(|col| {
                let f = c[(col * POINTS as usize / 50).min(c.len() - 1)];
                match (f * 4.0).round() as i32 {
                    4 => '█',
                    3 => '▓',
                    2 => '▒',
                    1 => '░',
                    _ => ' ',
                }
            })
            .collect();
        println!("{:>16} |{bars}|", spec.name());
    }
    println!("\ncurves written to {}", path.display());
}
