//! **Table 4 — RN20-CIFAR10**: schedule × budget grid for the ResNet-20 /
//! CIFAR-10 analogue, under SGDM and Adam.
//!
//! Reproduces the shape of the paper's Table 4: every schedule trained at
//! 1/5/10/25/50/100 % of the maximum epochs, metric = test error (%),
//! averaged over trials.

use rex_bench::{print_budget_table, run_schedule_grid, table_schedules, Args};
use rex_data::images::synth_cifar10;
use rex_eval::store::write_csv;
use rex_train::tasks::{run_image_cell_traced, ImageModel};
use rex_train::{Budget, OptimizerKind};

fn main() {
    let args = Args::parse();
    let (max_epochs, per_class, test_per_class, trials) = args.scale.pick(
        (4usize, 8usize, 4usize, 1usize),
        (24, 40, 15, 2),
        (60, 100, 30, 3),
    );
    let trials = args.trials.unwrap_or(trials);
    let budgets = match args.scale {
        rex_bench::ScaleKind::Smoke => {
            vec![Budget::new(max_epochs, 25), Budget::new(max_epochs, 100)]
        }
        _ => Budget::paper_levels(max_epochs),
    };
    let data = synth_cifar10(per_class, test_per_class, args.seed ^ 0x7AB4);
    // plateau patience scaled to the budget's epoch scale (paper tunes in
    // multiples of 5 on hundreds of epochs; 2 suits tens of epochs)
    let schedules = table_schedules(2);

    let mut records = Vec::new();
    for optimizer in [OptimizerKind::sgdm(), OptimizerKind::adam()] {
        records.extend(run_schedule_grid(
            "RN20-CIFAR10",
            optimizer,
            &schedules,
            &budgets,
            trials,
            args.seed,
            true,
            args.trace.as_deref(),
            args.resume.as_deref(),
            |cell, rec| {
                run_image_cell_traced(
                    ImageModel::MicroResNet20,
                    &data,
                    cell.budget.epochs(),
                    32,
                    cell.optimizer,
                    cell.schedule.clone(),
                    cell.optimizer.default_lr(),
                    cell.seed,
                    args.dtype,
                    rec,
                )
                .expect("training cell failed")
            },
        ));
    }

    print_budget_table("Table 4: RN20-CIFAR10 (test error %)", &records, &budgets);
    let path = args.out.join("table4_rn20_cifar10.csv");
    write_csv(&path, &records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}
