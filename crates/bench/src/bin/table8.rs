//! **Table 8 — RN50-ImageNet**: the low-budget-only grid (1 % and 5 %, as
//! in the paper, which limited this setting for computational reasons);
//! single run per cell (the paper reports single values here too).

use rex_bench::{print_budget_table, run_schedule_grid, Args};
use rex_core::ScheduleSpec;
use rex_data::images::synth_imagenet;
use rex_eval::store::write_csv;
use rex_train::tasks::{run_image_cell_traced, ImageModel};
use rex_train::{Budget, OptimizerKind};

fn main() {
    let args = Args::parse();
    let (max_epochs, classes, per_class, test_per_class) = args.scale.pick(
        (10usize, 4usize, 8usize, 4usize),
        (60, 20, 40, 10),
        (90, 50, 100, 20),
    );
    let trials = args.trials.unwrap_or(1);
    let budgets = vec![Budget::new(max_epochs, 1), Budget::new(max_epochs, 5)];
    let data = synth_imagenet(classes, per_class, test_per_class, args.seed ^ 0x13A6E);
    // Table 8 has no Decay-on-Plateau row (too few epochs to tune patience).
    let schedules = vec![
        ScheduleSpec::None,
        ScheduleSpec::Step,
        ScheduleSpec::Cosine,
        ScheduleSpec::OneCycle,
        ScheduleSpec::Linear,
        ScheduleSpec::ExpDecay,
        ScheduleSpec::Rex,
    ];

    let mut records = Vec::new();
    for optimizer in [OptimizerKind::sgdm(), OptimizerKind::adam()] {
        records.extend(run_schedule_grid(
            "RN50-IMAGENET",
            optimizer,
            &schedules,
            &budgets,
            trials,
            args.seed,
            true,
            args.trace.as_deref(),
            args.resume.as_deref(),
            |cell, rec| {
                run_image_cell_traced(
                    ImageModel::MicroResNet50,
                    &data,
                    cell.budget.epochs(),
                    32,
                    cell.optimizer,
                    cell.schedule.clone(),
                    cell.optimizer.default_lr(),
                    cell.seed,
                    args.dtype,
                    rec,
                )
                .expect("training cell failed")
            },
        ));
    }

    print_budget_table("Table 8: RN50-ImageNet (test error %)", &records, &budgets);
    let path = args.out.join("table8_rn50_imagenet.csv");
    write_csv(&path, &records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}
