//! **Tables 10 & 11 — BERT-GLUE**: fine-tune one pre-trained transformer
//! checkpoint on eight synthetic GLUE tasks at budgets of 1, 2, and 3
//! epochs under AdamW, exactly one run per cell (as in the paper). Prints
//! the per-task grid (Table 11) and the task-averaged scores (Table 10).

use std::collections::BTreeMap;

use rex_bench::Args;
use rex_core::ScheduleSpec;
use rex_data::text::{glue_tasks, lm_corpus};
use rex_eval::store::{write_csv, Record};
use rex_eval::table;
use rex_nn::TransformerConfig;
use rex_train::tasks::{pretrain_transformer, run_glue_cell};

fn main() {
    let args = Args::parse();
    let (pretrain_epochs, corpus_size, train_per_task, test_per_task) = args.scale.pick(
        (1usize, 64usize, 32usize, 16usize),
        (6, 512, 768, 128),
        (20, 4096, 2048, 512),
    );
    let budget_epochs: Vec<usize> = match args.scale {
        rex_bench::ScaleKind::Smoke => vec![1],
        _ => vec![1, 2, 3],
    };
    let cfg = TransformerConfig::default();
    let lr = 3e-3;

    eprintln!("pre-training checkpoint ({pretrain_epochs} epochs over {corpus_size} sequences)...");
    let corpus = lm_corpus(corpus_size, cfg.seq_len, cfg.vocab, args.seed ^ 0xBE27);
    let checkpoint =
        pretrain_transformer(&corpus, cfg, pretrain_epochs, 16, 1e-3, args.seed ^ 0xBE28)
            .expect("pre-training failed");

    let tasks = glue_tasks(
        train_per_task,
        test_per_task,
        cfg.seq_len,
        cfg.vocab,
        args.seed ^ 0x61E5,
    );
    let schedules = vec![
        ScheduleSpec::None, // bare AdamW row
        ScheduleSpec::Step,
        ScheduleSpec::Cosine,
        ScheduleSpec::OneCycle,
        ScheduleSpec::Linear,
        ScheduleSpec::ExpDecay,
        ScheduleSpec::Rex,
    ];

    let mut records: Vec<Record> = Vec::new();
    for sched in &schedules {
        for task in &tasks {
            for &epochs in &budget_epochs {
                let t0 = std::time::Instant::now();
                let acc = run_glue_cell(
                    &checkpoint,
                    task,
                    epochs,
                    8,
                    sched.clone(),
                    lr,
                    args.seed ^ (epochs as u64) << 8,
                )
                .expect("fine-tuning cell failed");
                eprintln!(
                    "[GLUE/{}] {} {} ep -> {:.1} ({:.1?})",
                    task.name,
                    sched.name(),
                    epochs,
                    acc,
                    t0.elapsed()
                );
                records.push(Record {
                    setting: format!("GLUE-{}", task.name),
                    optimizer: "AdamW".into(),
                    schedule: sched.name(),
                    budget_pct: (epochs * 100 / budget_epochs.len().max(1)) as u32,
                    trial: 0,
                    score: acc,
                    lower_is_better: false,
                });
            }
        }
    }

    // Table 11: per-task, cells are "e1/e2/e3" scores.
    println!("\n## Table 11: BERT-GLUE per-task accuracy (1 ep / 2 ep / 3 ep)\n");
    let mut headers = vec!["Method".to_string()];
    headers.extend(tasks.iter().map(|t| t.name.to_string()));
    let mut rows = Vec::new();
    for sched in &schedules {
        let name = display_name(&sched.name());
        let mut row = vec![name];
        for task in &tasks {
            let scores: Vec<String> = budget_epochs
                .iter()
                .map(|&e| {
                    let pct = (e * 100 / budget_epochs.len().max(1)) as u32;
                    records
                        .iter()
                        .find(|r| {
                            r.setting == format!("GLUE-{}", task.name)
                                && r.schedule == sched.name()
                                && r.budget_pct == pct
                        })
                        .map(|r| format!("{:.1}", r.score))
                        .unwrap_or_default()
                })
                .collect();
            row.push(scores.join("/"));
        }
        rows.push(row);
    }
    println!("{}", table::markdown(&headers, &rows));

    // Table 10: average over tasks per budget.
    println!("\n## Table 10: BERT-GLUE average score (1 ep / 2 ep / 3 ep)\n");
    let mut rows10 = Vec::new();
    let mut means_per_budget: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for sched in &schedules {
        let mut cells = Vec::new();
        for (bi, &e) in budget_epochs.iter().enumerate() {
            let pct = (e * 100 / budget_epochs.len().max(1)) as u32;
            let scores: Vec<f64> = records
                .iter()
                .filter(|r| r.schedule == sched.name() && r.budget_pct == pct)
                .map(|r| r.score)
                .collect();
            let mean = rex_eval::stats::mean(&scores);
            means_per_budget.entry(bi).or_default().push(mean);
            cells.push(format!("{mean:.1}"));
        }
        rows10.push(vec![display_name(&sched.name()), cells.join("/")]);
    }
    println!(
        "{}",
        table::markdown(&["Method".to_string(), "Score".to_string()], &rows10)
    );

    let path = args.out.join("table10_11_bert_glue.csv");
    write_csv(&path, &records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}

/// The paper labels the bare-optimizer row "AdamW".
fn display_name(schedule: &str) -> String {
    if schedule == "None" {
        "AdamW".to_string()
    } else {
        format!("+ {schedule}")
    }
}
