//! **Table 7 — VAE-MNIST**: schedule × budget grid for the VAE on
//! synthetic digits; metric = generalization loss (negative ELBO on the
//! test set), under SGDM and Adam.

use rex_bench::{print_budget_table, run_schedule_grid, table_schedules, Args};
use rex_data::digits::synth_digits;
use rex_eval::store::write_csv;
use rex_train::tasks::run_vae_cell_traced;
use rex_train::{Budget, OptimizerKind};

fn main() {
    let args = Args::parse();
    let (max_epochs, n_train, n_test, trials) = args.scale.pick(
        (4usize, 64usize, 32usize, 1usize),
        (200, 400, 150, 2),
        (200, 1500, 400, 3),
    );
    let trials = args.trials.unwrap_or(trials);
    let budgets = match args.scale {
        rex_bench::ScaleKind::Smoke => vec![Budget::new(max_epochs, 100)],
        _ => Budget::paper_levels(max_epochs),
    };
    let train = synth_digits(n_train, 12, args.seed ^ 0xD161);
    let test = synth_digits(n_test, 12, args.seed ^ 0xD162);
    let schedules = table_schedules(3);

    let mut records = Vec::new();
    for optimizer in [OptimizerKind::sgdm(), OptimizerKind::adam()] {
        // LRs at the top of the stable range, as the paper's per-schedule
        // tuning would select (decay schedules tolerate and exploit them)
        let lr = match optimizer {
            OptimizerKind::Sgdm { .. } => 3e-3,
            _ => 1e-2,
        };
        records.extend(run_schedule_grid(
            "VAE-MNIST",
            optimizer,
            &schedules,
            &budgets,
            trials,
            args.seed,
            true,
            args.trace.as_deref(),
            args.resume.as_deref(),
            |cell, rec| {
                run_vae_cell_traced(
                    &train,
                    &test,
                    cell.budget.epochs(),
                    8,
                    cell.optimizer,
                    cell.schedule.clone(),
                    lr,
                    cell.seed,
                    rec,
                )
                .expect("training cell failed")
            },
        ));
    }

    print_budget_table(
        "Table 7: VAE-MNIST (generalization loss)",
        &records,
        &budgets,
    );
    let path = args.out.join("table7_vae_mnist.csv");
    write_csv(&path, &records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}
