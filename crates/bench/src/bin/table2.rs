//! **Table 2 — profiles × sampling rates**: the paper's central framework
//! experiment. Three profiles (the step-approximating exponential, linear,
//! and REX) are each trained under seven sampling rates (50-75, 33-66,
//! 25-50-75, 10-10, 5-25, 1-100, every iteration) at three epoch scales,
//! on the RN20-CIFAR10 and RN38-CIFAR10 analogues with SGDM.
//!
//! The shape to reproduce: no profile wins at every sampling rate — the
//! step-approximation profile is best at coarse rates, linear/REX at fine
//! rates, and REX wins at the per-iteration rate.

use rex_bench::Args;
use rex_core::{SamplingRate, ScheduleSpec, Table2Profile};
use rex_data::images::synth_cifar10;
use rex_eval::store::{write_csv, Record};
use rex_eval::table;
use rex_train::tasks::{run_image_cell, ImageModel};
use rex_train::OptimizerKind;

fn main() {
    let args = Args::parse();
    let (epoch_scales, per_class, test_per_class, trials): (Vec<usize>, usize, usize, usize) =
        match args.scale {
            rex_bench::ScaleKind::Smoke => (vec![2], 6, 3, 1),
            rex_bench::ScaleKind::Fast => (vec![4, 10, 24], 30, 10, 1),
            rex_bench::ScaleKind::Full => (vec![15, 75, 300], 100, 30, 3),
        };
    let trials = args.trials.unwrap_or(trials);
    let data = synth_cifar10(per_class, test_per_class, args.seed ^ 0x7AB2);
    let models = [
        ("RN20-CIFAR10-SGDM", ImageModel::MicroResNet20),
        ("RN38-CIFAR10-SGDM", ImageModel::MicroResNet38),
    ];
    let rates = SamplingRate::table2_rates();
    let optimizer = OptimizerKind::sgdm();

    let mut records: Vec<Record> = Vec::new();
    for (setting, model) in models {
        for &epochs in &epoch_scales {
            for rate in &rates {
                for profile in Table2Profile::all() {
                    let mut scores = Vec::new();
                    for trial in 0..trials {
                        let seed = args.seed ^ (trial as u64 + 1) << 20 ^ (epochs as u64) << 8;
                        let t0 = std::time::Instant::now();
                        let err = run_image_cell(
                            model,
                            &data,
                            epochs,
                            32,
                            optimizer,
                            ScheduleSpec::Sampled(profile, rate.clone()),
                            optimizer.default_lr(),
                            seed,
                        )
                        .expect("training cell failed");
                        eprintln!(
                            "[{setting} {epochs}ep] {} @ {}: {:.2} ({:.1?})",
                            profile.label(),
                            rate.label(),
                            err,
                            t0.elapsed()
                        );
                        scores.push(err);
                        records.push(Record {
                            setting: setting.to_string(),
                            optimizer: "SGDM".into(),
                            schedule: format!("{} @ {}", profile.label(), rate.label()),
                            budget_pct: epochs as u32, // column key: epoch scale
                            trial: trial as u32,
                            score: err,
                            lower_is_better: true,
                        });
                    }
                }
            }
        }
    }

    // print one block per model: rows = sampling rates, columns = epoch
    // scales x 3 profiles (matching the paper's layout)
    for (setting, _) in models {
        println!("\n## Table 2: {setting} (test error %)\n");
        let mut headers = vec!["Sampling Rate".to_string()];
        for &epochs in &epoch_scales {
            for profile in Table2Profile::all() {
                headers.push(format!("{}ep {}", epochs, profile.label()));
            }
        }
        let mut rows = Vec::new();
        for rate in &rates {
            let mut row = vec![rate.label()];
            for &epochs in &epoch_scales {
                for profile in Table2Profile::all() {
                    let scores: Vec<f64> = records
                        .iter()
                        .filter(|r| {
                            r.setting == setting
                                && r.budget_pct == epochs as u32
                                && r.schedule == format!("{} @ {}", profile.label(), rate.label())
                        })
                        .map(|r| r.score)
                        .collect();
                    row.push(format!("{:.2}", rex_eval::stats::mean(&scores)));
                }
            }
            rows.push(row);
        }
        println!("{}", table::markdown(&headers, &rows));
    }

    let path = args.out.join("table2_profiles_sampling.csv");
    write_csv(&path, &records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}
