//! **Table 5 — WRN-STL10**: schedule × budget grid for the Wide-ResNet /
//! STL-10 analogue (few samples, higher resolution), under SGDM and Adam.

use rex_bench::{print_budget_table, run_schedule_grid, table_schedules, Args};
use rex_data::images::synth_stl10;
use rex_eval::store::write_csv;
use rex_train::tasks::{run_image_cell_traced, ImageModel};
use rex_train::{Budget, OptimizerKind};

fn main() {
    let args = Args::parse();
    let (max_epochs, per_class, test_per_class, trials, widen) = args.scale.pick(
        (3usize, 6usize, 3usize, 1usize, 2usize),
        (20, 25, 10, 2, 2),
        (40, 50, 20, 3, 4),
    );
    let trials = args.trials.unwrap_or(trials);
    let budgets = match args.scale {
        rex_bench::ScaleKind::Smoke => vec![Budget::new(max_epochs, 100)],
        _ => Budget::paper_levels(max_epochs),
    };
    let data = synth_stl10(per_class, test_per_class, args.seed ^ 0x57110);
    let schedules = table_schedules(2);

    let mut records = Vec::new();
    for optimizer in [OptimizerKind::sgdm(), OptimizerKind::adam()] {
        records.extend(run_schedule_grid(
            "WRN-STL10",
            optimizer,
            &schedules,
            &budgets,
            trials,
            args.seed,
            true,
            args.trace.as_deref(),
            args.resume.as_deref(),
            |cell, rec| {
                run_image_cell_traced(
                    ImageModel::MicroWide(widen),
                    &data,
                    cell.budget.epochs(),
                    32,
                    cell.optimizer,
                    cell.schedule.clone(),
                    cell.optimizer.default_lr(),
                    cell.seed,
                    args.dtype,
                    rec,
                )
                .expect("training cell failed")
            },
        ));
    }

    print_budget_table("Table 5: WRN-STL10 (test error %)", &records, &budgets);
    let path = args.out.join("table5_wrn_stl10.csv");
    write_csv(&path, &records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}
