//! `profile-bench` — measures what the hierarchical span profiler costs
//! on a real training cell and writes `BENCH_profile.json` at the
//! repository root (schema `rex-profile-bench/v1`).
//!
//! The workload is the digits-mlp classifier cell at 100% budget (the
//! same cell `rexctl train --setting digits-mlp` runs), repeated with
//! the thread-local profiler off, at `Detail::Phase` (the `--profile`
//! default: job/epoch/step/phase spans), and at `Detail::Kernel`
//! (per-op compute spans added). The three arms are interleaved within
//! every rep, and overheads are ratios of *minimum* timings — external
//! interference can only inflate a sample, so min-of-reps tracks the
//! instrumentation cost rather than host weather.
//!
//! `scripts/bench_guard.sh --profile-only` enforces the acceptance
//! floor: phase-detail overhead must stay at or below 3% of step time,
//! in both the committed artifact and a fresh run.
//!
//! ```text
//! cargo run --release -p rex-bench --bin profile-bench [-- --smoke]
//!     [--reps N] [--out PATH]
//! ```

use std::time::Instant;

use rex_core::ScheduleSpec;
use rex_telemetry::span::{self, Detail};
use rex_telemetry::Recorder;
use rex_train::settings::load_setting;
use rex_train::{FtConfig, GuardPolicy, OptimizerKind};

const SETTING: &str = "digits-mlp";
const BUDGET_PCT: u32 = 100;
const SEED: u64 = 7;

struct Config {
    reps: usize,
    warmup: usize,
    smoke: bool,
    out: String,
}

fn die(msg: &str) -> ! {
    eprintln!("profile-bench: {msg}");
    eprintln!("usage: profile-bench [--smoke] [--reps N] [--out PATH]");
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        reps: 30,
        warmup: 3,
        smoke: false,
        out: "BENCH_profile.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                cfg.smoke = true;
                cfg.reps = 3;
                cfg.warmup = 1;
            }
            "--reps" => {
                cfg.reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs an integer"));
            }
            "--out" => {
                cfg.out = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    cfg
}

/// Runs the workload cell once and returns its wall time in nanoseconds.
fn run_cell() -> u64 {
    let setting = load_setting(SETTING, SEED).expect("load digits-mlp");
    let optimizer = OptimizerKind::sgdm();
    let lr = setting.default_lr(&optimizer);
    let ft = FtConfig {
        checkpoint_every: None,
        checkpoint_path: None,
        resume_from: None,
        guard: GuardPolicy::Off,
        halt_after_step: None,
        stop_flag: None,
        keep_checkpoints: None,
        checkpoint_on_halt: false,
        heartbeat: None,
    };
    let t0 = Instant::now();
    setting
        .run_ft(
            BUDGET_PCT,
            optimizer,
            ScheduleSpec::Rex,
            lr,
            SEED,
            rex_tensor::DType::F32,
            ft,
            &mut Recorder::disabled(),
        )
        .expect("train digits-mlp");
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.4}", ns as f64 * 1e-6)
}

fn main() {
    let cfg = parse_args();
    let threads = rex_pool::num_threads();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let be = rex_tensor::backend::active();
    println!(
        "profile-bench: reps={} warmup={} threads={} host_cores={} backend={} ({}){}",
        cfg.reps,
        cfg.warmup,
        threads,
        host_cores,
        be.name(),
        be.simd_level(),
        if cfg.smoke { " (smoke)" } else { "" }
    );

    for _ in 0..cfg.warmup {
        run_cell();
    }

    // Interleave the three arms inside each rep so host-speed drift over
    // the run cancels out of the min-of-reps ratios.
    let (mut off_ns, mut phase_ns, mut kernel_ns) = (u64::MAX, u64::MAX, u64::MAX);
    for _ in 0..cfg.reps.max(1) {
        span::enable(Detail::Off);
        off_ns = off_ns.min(run_cell());
        span::enable(Detail::Phase);
        phase_ns = phase_ns.min(run_cell());
        let _ = span::take();
        span::enable(Detail::Kernel);
        kernel_ns = kernel_ns.min(run_cell());
        let _ = span::take();
    }

    // One more phase-detail run to publish the self-profile itself.
    span::enable(Detail::Phase);
    run_cell();
    let profile = span::take();
    let rows = profile.phase_table();
    let steps = rows
        .iter()
        .find(|r| r.name == "step")
        .map_or(0, |r| r.calls);

    let overhead_pct = |on: u64, off: u64| (on as f64 - off as f64) * 100.0 / (off.max(1) as f64);
    let phase_pct = overhead_pct(phase_ns, off_ns);
    let kernel_pct = overhead_pct(kernel_ns, off_ns);
    let per_step_us = |on: u64, off: u64| (on as f64 - off as f64) * 1e-3 / (steps.max(1) as f64);

    println!("{:<14} {:>12} {:>10}", "profiler", "cell ms", "overhead");
    println!("{:<14} {:>12} {:>9}%", "off", fmt_ms(off_ns), "-");
    println!(
        "{:<14} {:>12} {:>9.2}%",
        "phase",
        fmt_ms(phase_ns),
        phase_pct
    );
    println!(
        "{:<14} {:>12} {:>9.2}%",
        "kernel",
        fmt_ms(kernel_ns),
        kernel_pct
    );
    print!("{}", profile.render_phase_table());

    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"schema\": \"rex-profile-bench/v1\",\n");
    body.push_str(&format!("  \"backend\": \"{}\",\n", be.name()));
    body.push_str(&format!("  \"simd_level\": \"{}\",\n", be.simd_level()));
    body.push_str(&format!("  \"threads\": {threads},\n"));
    body.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    body.push_str(&format!("  \"reps\": {},\n", cfg.reps));
    body.push_str(&format!("  \"warmup\": {},\n", cfg.warmup));
    body.push_str(&format!("  \"smoke\": {},\n", cfg.smoke));
    body.push_str("  \"workload\": {\n");
    body.push_str(&format!("    \"setting\": \"{}\",\n", json_escape(SETTING)));
    body.push_str(&format!("    \"budget_pct\": {BUDGET_PCT},\n"));
    body.push_str(&format!("    \"seed\": {SEED},\n"));
    body.push_str(&format!("    \"steps\": {steps}\n"));
    body.push_str("  },\n");
    body.push_str(&format!("  \"off_ms_min\": {},\n", fmt_ms(off_ns)));
    body.push_str(&format!("  \"phase_ms_min\": {},\n", fmt_ms(phase_ns)));
    body.push_str(&format!("  \"kernel_ms_min\": {},\n", fmt_ms(kernel_ns)));
    body.push_str(&format!("  \"overhead_phase_pct\": {phase_pct:.3},\n"));
    body.push_str(&format!("  \"overhead_kernel_pct\": {kernel_pct:.3},\n"));
    body.push_str(&format!(
        "  \"per_step_overhead_phase_us\": {:.3},\n",
        per_step_us(phase_ns, off_ns)
    ));
    body.push_str(&format!(
        "  \"per_step_overhead_kernel_us\": {:.3},\n",
        per_step_us(kernel_ns, off_ns)
    ));
    body.push_str("  \"phases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"path\": \"{}\", \"calls\": {}, \"inclusive_ms\": {}, \
             \"exclusive_ms\": {}, \"pct_of_root\": {:.2}}}{}\n",
            json_escape(&r.path),
            r.calls,
            fmt_ms(r.inclusive_ns),
            fmt_ms(r.exclusive_ns),
            r.pct_of_root,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n");
    body.push_str("}\n");
    std::fs::write(&cfg.out, body).unwrap_or_else(|e| {
        eprintln!("profile-bench: cannot write {}: {e}", cfg.out);
        std::process::exit(1);
    });
    println!("wrote {}", cfg.out);
}
