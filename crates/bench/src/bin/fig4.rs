//! **Figure 4 — sensitivity to the initial learning rate**: error vs
//! initial LR (multiples of 3 around the default) for every schedule, on
//! RN20-CIFAR10-SGDM and RN38-CIFAR100-SGDM at 5 % and 25 % budgets.
//!
//! The shape to reproduce: no schedule recovers from a bad LR, but the
//! schedules keep their relative ordering across LRs, with REX at or below
//! the other curves for most of the range.

use rex_bench::{table_schedules, Args};
use rex_data::images::{synth_cifar10, synth_cifar100};
use rex_eval::store::{write_csv, Record};
use rex_eval::table;
use rex_train::tasks::{run_image_cell, ImageModel};
use rex_train::trial::lr_grid;
use rex_train::{Budget, OptimizerKind};

fn main() {
    let args = Args::parse();
    let (max_epochs, per_class, test_per_class) =
        args.scale
            .pick((4usize, 8usize, 4usize), (24, 30, 10), (60, 100, 30));
    let budget_pcts: Vec<u32> = match args.scale {
        rex_bench::ScaleKind::Smoke => vec![25],
        _ => vec![5, 25],
    };
    let optimizer = OptimizerKind::sgdm();
    let grid = lr_grid(optimizer.default_lr());
    let schedules = table_schedules(2);

    let cifar10 = synth_cifar10(per_class, test_per_class, args.seed ^ 0xF400);
    let cifar100 = synth_cifar100(10, per_class, test_per_class, args.seed ^ 0xF401);

    let mut records: Vec<Record> = Vec::new();
    for (setting, model, data) in [
        ("RN20-CIFAR10-SGD", ImageModel::MicroResNet20, &cifar10),
        ("RN38-CIFAR100-SGD", ImageModel::MicroResNet38, &cifar100),
    ] {
        for &pct in &budget_pcts {
            let budget = Budget::new(max_epochs, pct);
            for sched in &schedules {
                for (li, &lr) in grid.iter().enumerate() {
                    let t0 = std::time::Instant::now();
                    let err = run_image_cell(
                        model,
                        data,
                        budget.epochs(),
                        32,
                        optimizer,
                        sched.clone(),
                        lr,
                        args.seed ^ (li as u64) << 16 ^ (pct as u64) << 24,
                    )
                    .expect("training cell failed");
                    eprintln!(
                        "[{setting} {pct}%] {} lr={lr:.4}: {err:.2} ({:.1?})",
                        sched.name(),
                        t0.elapsed()
                    );
                    records.push(Record {
                        setting: format!("{setting}-{pct}%"),
                        optimizer: "SGDM".into(),
                        schedule: sched.name(),
                        budget_pct: pct,
                        trial: li as u32, // trial column reused as LR index
                        score: err,
                        lower_is_better: true,
                    });
                }
            }
        }
    }

    // one table per (setting, budget): rows = schedules, cols = LRs
    for (setting, _, _) in [
        ("RN20-CIFAR10-SGD", ImageModel::MicroResNet20, &cifar10),
        ("RN38-CIFAR100-SGD", ImageModel::MicroResNet38, &cifar100),
    ] {
        for &pct in &budget_pcts {
            let key = format!("{setting}-{pct}%");
            println!("\n## Figure 4: {setting} at {pct}% budget (error % vs initial LR)\n");
            let mut headers = vec!["Method".to_string()];
            headers.extend(grid.iter().map(|lr| format!("lr={lr:.4}")));
            let mut rows = Vec::new();
            for sched in &schedules {
                let mut row = vec![sched.name()];
                for li in 0..grid.len() {
                    let v = records
                        .iter()
                        .find(|r| {
                            r.setting == key && r.schedule == sched.name() && r.trial == li as u32
                        })
                        .map(|r| format!("{:.2}", r.score))
                        .unwrap_or_default();
                    row.push(v);
                }
                rows.push(row);
            }
            println!("{}", table::markdown(&headers, &rows));
        }
    }

    let path = args.out.join("fig4_lr_sensitivity.csv");
    write_csv(&path, &records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}
