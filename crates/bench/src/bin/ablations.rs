//! **Ablations** (reproduction extensions, not paper artifacts):
//!
//! 1. the generalised REX family `p(x) = (1−x)/(β + (1−β)(1−x))` swept over
//!    β — β = ½ is the paper's REX, β = 1 recovers linear; validates that
//!    the paper's fixed β is a reasonable point in the family;
//! 2. polynomial profiles `(1−x)^p` — the natural alternative family
//!    between linear and aggressive decay;
//! 3. delayed variants of the *cosine* schedule — checking the paper's
//!    delayed-decay observation (Figure 3) is not specific to linear.

use rex_bench::{print_budget_table, run_schedule_grid, Args};
use rex_core::ScheduleSpec;
use rex_data::images::synth_cifar10;
use rex_eval::store::write_csv;
use rex_train::tasks::{run_image_cell_traced, ImageModel};
use rex_train::{Budget, OptimizerKind};

fn main() {
    let args = Args::parse();
    let (max_epochs, per_class, test_per_class, trials) = args.scale.pick(
        (3usize, 6usize, 3usize, 1usize),
        (24, 40, 15, 1),
        (60, 100, 30, 3),
    );
    let trials = args.trials.unwrap_or(trials);
    let budgets = match args.scale {
        rex_bench::ScaleKind::Smoke => vec![Budget::new(max_epochs, 100)],
        _ => vec![
            Budget::new(max_epochs, 5),
            Budget::new(max_epochs, 25),
            Budget::new(max_epochs, 100),
        ],
    };
    let data = synth_cifar10(per_class, test_per_class, args.seed ^ 0xAB1A);

    let groups: Vec<(&str, Vec<ScheduleSpec>)> = vec![
        (
            "REX beta sweep",
            vec![
                ScheduleSpec::RexBeta(0.1),
                ScheduleSpec::RexBeta(0.3),
                ScheduleSpec::Rex, // beta = 0.5
                ScheduleSpec::RexBeta(0.7),
                ScheduleSpec::RexBeta(0.9),
                ScheduleSpec::RexBeta(1.0), // = linear
            ],
        ),
        (
            "Polynomial profiles",
            vec![
                ScheduleSpec::Polynomial(0.5),
                ScheduleSpec::Linear, // power 1
                ScheduleSpec::Polynomial(2.0),
                ScheduleSpec::Polynomial(4.0),
                ScheduleSpec::Rex,
            ],
        ),
        (
            "Delayed cosine",
            vec![
                ScheduleSpec::Cosine,
                ScheduleSpec::Delayed(Box::new(ScheduleSpec::Cosine), 0.25),
                ScheduleSpec::Delayed(Box::new(ScheduleSpec::Cosine), 0.50),
                ScheduleSpec::Rex,
            ],
        ),
    ];

    let mut all_records = Vec::new();
    for (title, schedules) in groups {
        let records = run_schedule_grid(
            "RN20-CIFAR10-ABLATION",
            OptimizerKind::sgdm(),
            &schedules,
            &budgets,
            trials,
            args.seed,
            true,
            args.trace.as_deref(),
            args.resume.as_deref(),
            |cell, rec| {
                run_image_cell_traced(
                    ImageModel::MicroResNet20,
                    &data,
                    cell.budget.epochs(),
                    32,
                    cell.optimizer,
                    cell.schedule.clone(),
                    cell.optimizer.default_lr(),
                    cell.seed,
                    args.dtype,
                    rec,
                )
                .expect("training cell failed")
            },
        );
        print_budget_table(
            &format!("Ablation: {title} (test error %)"),
            &records,
            &budgets,
        );
        all_records.extend(records);
    }

    let path = args.out.join("ablations.csv");
    write_csv(&path, &all_records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}
