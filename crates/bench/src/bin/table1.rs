//! **Table 1 — Top-1/Top-3 summary**: aggregates every per-setting CSV in
//! the results directory into the paper's headline table — the percentage
//! of experiments where each schedule finished first (Top-1) or in the top
//! three (Top-3), split into low (< 25 %) and high (≥ 25 %) budgets.
//!
//! Run the per-setting binaries first (`table4` … `table10_11`); this
//! binary only reads their CSVs. As in the paper, Decay-on-Plateau results
//! are folded into the Step Schedule row (best of the two per cell).

use rex_bench::Args;
use rex_eval::ranking::{is_low_budget, top_shares, SettingResult};
use rex_eval::store::{read_csv, to_setting_results, Record};
use rex_eval::table;

/// CSV files consumed, when present.
const INPUTS: &[&str] = &[
    "table4_rn20_cifar10.csv",
    "table5_wrn_stl10.csv",
    "table6_vgg16_cifar100.csv",
    "table7_vae_mnist.csv",
    "table8_rn50_imagenet.csv",
    "table9_yolo_voc.csv",
    "table10_11_bert_glue.csv",
];

fn main() {
    let args = Args::parse();
    let mut records: Vec<Record> = Vec::new();
    for name in INPUTS {
        let path = args.out.join(name);
        match read_csv(&path) {
            Ok(mut r) => {
                eprintln!("loaded {} records from {}", r.len(), path.display());
                records.append(&mut r);
            }
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
    if records.is_empty() {
        eprintln!(
            "no results found in {} — run the per-table binaries first",
            args.out.display()
        );
        std::process::exit(1);
    }

    let mut cells = to_setting_results(&records);
    fold_plateau_into_step(&mut cells);

    let total_cells = cells.len();
    println!("\n## Table 1: % of Top-1 / Top-3 finishes over {total_cells} experiment cells\n");
    type BudgetFilter = Box<dyn Fn(u32) -> bool>;
    let splits: [(&str, BudgetFilter); 3] = [
        ("Low budget (<25%)", Box::new(is_low_budget)),
        ("High budget (>=25%)", Box::new(|b| !is_low_budget(b))),
        ("Overall", Box::new(|_| true)),
    ];
    // column layout: Method | low T1 | low T3 | high T1 | high T3 | all T1 | all T3
    let headers: Vec<String> = [
        "Method",
        "Low Top-1",
        "Low Top-3",
        "High Top-1",
        "High Top-3",
        "Overall Top-1",
        "Overall Top-3",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // preserve the paper's row order
    let row_order = [
        "None",
        "Exp decay",
        "OneCycle",
        "Linear Schedule",
        "Step Schedule",
        "Cosine Schedule",
        "REX",
    ];
    let mut rows = Vec::new();
    for method in row_order {
        let mut row = vec![method.to_string()];
        for (_, filter) in &splits {
            let shares = top_shares(&cells, filter);
            let s = shares.get(method).copied().unwrap_or_default();
            row.push(format!("{:.0}%", s.top1_pct));
            row.push(format!("{:.0}%", s.top3_pct));
        }
        rows.push(row);
    }
    println!("{}", table::markdown(&headers, &rows));
}

/// The paper aggregates Decay-on-Plateau into the Step Schedule row,
/// taking the better of the two per cell.
fn fold_plateau_into_step(cells: &mut [SettingResult]) {
    for cell in cells {
        let plateau = cell
            .scores
            .iter()
            .find(|(n, _)| n == "Decay on Plateau")
            .map(|(_, s)| *s);
        if let Some(p) = plateau {
            if let Some(step) = cell.scores.iter_mut().find(|(n, _)| n == "Step Schedule") {
                step.1 = if cell.lower_is_better {
                    step.1.min(p)
                } else {
                    step.1.max(p)
                };
            }
            cell.scores.retain(|(n, _)| n != "Decay on Plateau");
        }
    }
}
