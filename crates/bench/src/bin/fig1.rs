//! **Figure 1 — average rank vs budget**: aggregates the per-setting CSVs
//! into the paper's headline figure — for each optimizer, the average rank
//! (1 = best) of every schedule at each budget percentage.
//!
//! Run the per-setting binaries first; this binary only reads their CSVs.

use std::collections::BTreeMap;

use rex_bench::Args;
use rex_eval::ranking::average_rank_by_budget;
use rex_eval::store::{read_csv, to_setting_results, Record};
use rex_eval::table;

const INPUTS: &[&str] = &[
    "table4_rn20_cifar10.csv",
    "table5_wrn_stl10.csv",
    "table6_vgg16_cifar100.csv",
    "table7_vae_mnist.csv",
    "table8_rn50_imagenet.csv",
    "table9_yolo_voc.csv",
];

fn main() {
    let args = Args::parse();
    let mut records: Vec<Record> = Vec::new();
    for name in INPUTS {
        let path = args.out.join(name);
        match read_csv(&path) {
            Ok(mut r) => records.append(&mut r),
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
    if records.is_empty() {
        eprintln!(
            "no results found in {} — run the per-table binaries first",
            args.out.display()
        );
        std::process::exit(1);
    }
    let cells = to_setting_results(&records);

    let mut csv = String::from("optimizer,budget_pct,schedule,avg_rank\n");
    for optimizer in ["SGDM", "Adam"] {
        let by_budget = average_rank_by_budget(&cells, optimizer);
        if by_budget.is_empty() {
            continue;
        }
        println!("\n## Figure 1 ({optimizer}): average rank vs budget (1 = best)\n");
        // collect schedule names from the first budget
        let mut schedules: Vec<String> = by_budget
            .values()
            .next()
            .map(|v| v.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default();
        schedules.sort();
        let mut headers = vec!["Method".to_string()];
        headers.extend(by_budget.keys().map(|b| format!("{b}%")));
        let mut rows = Vec::new();
        for sched in &schedules {
            let mut row = vec![sched.clone()];
            for (budget, series) in &by_budget {
                let rank_map: BTreeMap<&str, f64> =
                    series.iter().map(|(n, r)| (n.as_str(), *r)).collect();
                let rank = rank_map.get(sched.as_str()).copied();
                row.push(rank.map(|r| format!("{r:.2}")).unwrap_or_default());
                if let Some(r) = rank {
                    csv.push_str(&format!("{optimizer},{budget},{sched},{r:.4}\n"));
                }
            }
            rows.push(row);
        }
        println!("{}", table::markdown(&headers, &rows));
    }

    let path = args.out.join("fig1_average_rank.csv");
    std::fs::create_dir_all(&args.out).expect("create out dir");
    std::fs::write(&path, csv).expect("write CSV");
    eprintln!("series written to {}", path.display());
}
