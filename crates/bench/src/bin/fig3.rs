//! **Figure 3 — REX vs linear vs delayed linear**: error against budget
//! for REX, the linear schedule, and delayed-linear variants (25/50/75 %)
//! on the VGG16-CIFAR100 and RN38-CIFAR100 analogues, under SGDM and Adam.
//!
//! The shape to reproduce: delaying the linear decay helps at large
//! budgets but not small ones, and REX tracks the best of both — the
//! observation motivating REX as a no-hyperparameter interpolation.

use rex_bench::{print_budget_table, run_schedule_grid, Args};
use rex_core::ScheduleSpec;
use rex_data::images::synth_cifar100;
use rex_eval::store::write_csv;
use rex_train::tasks::{run_image_cell_traced, ImageModel};
use rex_train::{Budget, OptimizerKind};

fn main() {
    let args = Args::parse();
    let (max_epochs, classes, per_class, test_per_class, trials) = args.scale.pick(
        (3usize, 5usize, 8usize, 4usize, 1usize),
        (40, 20, 30, 10, 1),
        (48, 100, 50, 10, 3),
    );
    let trials = args.trials.unwrap_or(trials);
    let budgets = match args.scale {
        rex_bench::ScaleKind::Smoke => vec![Budget::new(max_epochs, 100)],
        _ => Budget::paper_levels(max_epochs),
    };
    let data = synth_cifar100(classes, per_class, test_per_class, args.seed ^ 0xF163);
    let schedules = vec![
        ScheduleSpec::Rex,
        ScheduleSpec::Linear,
        ScheduleSpec::Delayed(Box::new(ScheduleSpec::Linear), 0.25),
        ScheduleSpec::Delayed(Box::new(ScheduleSpec::Linear), 0.50),
        ScheduleSpec::Delayed(Box::new(ScheduleSpec::Linear), 0.75),
        // reference line: the step schedule at full budget (the red dashed
        // line in the paper's plots) comes from the table6 run
        ScheduleSpec::Step,
    ];

    let mut records = Vec::new();
    for (setting, model, lr_scale) in [
        ("VGG16-CIFAR100", ImageModel::MicroVgg(12), 0.1f32),
        ("RN38-CIFAR100", ImageModel::MicroResNet38, 1.0),
    ] {
        for optimizer in [OptimizerKind::sgdm(), OptimizerKind::adam()] {
            records.extend(run_schedule_grid(
                setting,
                optimizer,
                &schedules,
                &budgets,
                trials,
                args.seed,
                true,
                args.trace.as_deref(),
                args.resume.as_deref(),
                |cell, rec| {
                    run_image_cell_traced(
                        model,
                        &data,
                        cell.budget.epochs(),
                        32,
                        cell.optimizer,
                        cell.schedule.clone(),
                        cell.optimizer.default_lr() * lr_scale,
                        cell.seed,
                        args.dtype,
                        rec,
                    )
                    .expect("training cell failed")
                },
            ));
        }
    }

    for setting in ["VGG16-CIFAR100", "RN38-CIFAR100"] {
        let subset: Vec<_> = records
            .iter()
            .filter(|r| r.setting == setting)
            .cloned()
            .collect();
        print_budget_table(
            &format!("Figure 3: {setting} — REX vs linear vs delayed linear (error %)"),
            &subset,
            &budgets,
        );
    }

    let path = args.out.join("fig3_delayed_linear.csv");
    write_csv(&path, &records).expect("write CSV");
    eprintln!("records written to {}", path.display());
}
