//! # rex-bench — experiment harness shared by the per-table binaries
//!
//! Every binary in `src/bin/` regenerates one table or figure of the REX
//! paper (see DESIGN.md §4 for the index). This library holds the pieces
//! they share: CLI parsing ([`Args`]), experiment scales ([`ScaleKind`]),
//! the schedule-grid runner ([`run_schedule_grid`]), and the markdown
//! emission helpers.
//!
//! Binaries accept:
//!
//! ```text
//! --scale smoke|fast|full   experiment size (default fast)
//! --out <dir>               directory for CSV records (default results/)
//! --trials <n>              override the trial count
//! --seed <s>                override the base seed
//! --trace <dir>             write one JSONL telemetry trace per cell
//! --resume <dir>            skip cells with a done-marker in <dir>
//! ```
//!
//! `--resume DIR` makes the grid crash-tolerant at cell granularity:
//! every finished cell writes `<cell>.done` (its score, crash-consistent
//! via [`rex_faults::atomic_write`]) into DIR, and a rerun pointed at the
//! same DIR replays those scores instead of retraining. Cells are
//! deterministic, so the resumed table is identical to an uninterrupted
//! run's.
//!
//! `smoke` finishes in seconds (CI sanity), `fast` reproduces the paper's
//! qualitative shape on a single CPU core in minutes, and `full` uses the
//! largest analogue sizes (hours on one core).

#![warn(missing_docs)]

use std::path::{Path, PathBuf};

use rex_core::ScheduleSpec;
use rex_eval::ranking::SettingResult;
use rex_eval::stats::Summary;
use rex_eval::store::Record;
use rex_eval::table;
use rex_telemetry::{JsonlSink, Recorder};
use rex_train::{Budget, OptimizerKind};

/// Experiment size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleKind {
    /// Seconds: sanity only.
    Smoke,
    /// Minutes on one core: the recorded reproduction scale.
    Fast,
    /// The largest analogue sizes.
    Full,
}

impl ScaleKind {
    /// Parses `smoke|fast|full`.
    pub fn parse(s: &str) -> Option<ScaleKind> {
        match s {
            "smoke" => Some(ScaleKind::Smoke),
            "fast" => Some(ScaleKind::Fast),
            "full" => Some(ScaleKind::Full),
            _ => None,
        }
    }

    /// Picks one of three values by scale.
    pub fn pick<T>(&self, smoke: T, fast: T, full: T) -> T {
        match self {
            ScaleKind::Smoke => smoke,
            ScaleKind::Fast => fast,
            ScaleKind::Full => full,
        }
    }
}

/// Parsed command-line arguments common to every experiment binary.
#[derive(Debug, Clone)]
pub struct Args {
    /// Selected experiment scale.
    pub scale: ScaleKind,
    /// Output directory for CSV records.
    pub out: PathBuf,
    /// Trial-count override.
    pub trials: Option<usize>,
    /// Base-seed override.
    pub seed: u64,
    /// Telemetry trace directory: when set, every grid cell writes a
    /// JSONL trace file there (one per setting/optimizer/schedule/
    /// budget/trial combination).
    pub trace: Option<PathBuf>,
    /// Worker-thread override (`--threads N`); `None` leaves the pool at
    /// its `REX_NUM_THREADS`/core-count default.
    pub threads: Option<usize>,
    /// Compute-backend override (`--backend scalar|simd|auto`); `None`
    /// leaves the `REX_BACKEND`/auto-detected default.
    pub backend: Option<rex_tensor::BackendKind>,
    /// Per-cell resume directory: finished cells leave done-markers here
    /// and are skipped (score replayed) on the next run.
    pub resume: Option<PathBuf>,
    /// Parameter storage precision (`--dtype f32|f16|bf16`); the default
    /// `f32` is the legacy bit-exact path that golden traces pin.
    pub dtype: rex_tensor::DType,
}

impl Args {
    /// Parses `std::env::args`, exiting with usage on error.
    pub fn parse() -> Args {
        let mut scale = ScaleKind::Fast;
        let mut out = PathBuf::from("results");
        let mut trials = None;
        let mut seed = 0u64;
        let mut trace = None;
        let mut threads = None;
        let mut resume = None;
        let mut backend = None;
        let mut dtype = rex_tensor::DType::F32;
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let need_value = |i: usize| {
                argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[i]);
                    std::process::exit(2);
                })
            };
            match argv[i].as_str() {
                "--scale" => {
                    let v = need_value(i);
                    scale = ScaleKind::parse(&v).unwrap_or_else(|| {
                        eprintln!("bad scale {v:?}; expected smoke|fast|full");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--out" => {
                    out = PathBuf::from(need_value(i));
                    i += 2;
                }
                "--trials" => {
                    trials = Some(need_value(i).parse().unwrap_or_else(|_| {
                        eprintln!("bad trial count");
                        std::process::exit(2);
                    }));
                    i += 2;
                }
                "--seed" => {
                    seed = need_value(i).parse().unwrap_or_else(|_| {
                        eprintln!("bad seed");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--trace" => {
                    trace = Some(PathBuf::from(need_value(i)));
                    i += 2;
                }
                "--resume" => {
                    resume = Some(PathBuf::from(need_value(i)));
                    i += 2;
                }
                "--threads" => {
                    let n: usize = need_value(i).parse().unwrap_or(0);
                    if n == 0 {
                        eprintln!("bad thread count (want an integer >= 1)");
                        std::process::exit(2);
                    }
                    threads = Some(n);
                    i += 2;
                }
                "--backend" => {
                    let v = need_value(i);
                    backend = Some(rex_tensor::BackendKind::parse(&v).unwrap_or_else(|e| {
                        eprintln!("--backend {v:?}: {e}");
                        std::process::exit(2);
                    }));
                    i += 2;
                }
                "--dtype" => {
                    let v = need_value(i);
                    dtype = rex_tensor::DType::parse(&v)
                        .filter(|d| d.trainable())
                        .unwrap_or_else(|| {
                            eprintln!("bad dtype {v:?}; expected f32|f16|bf16");
                            std::process::exit(2);
                        });
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: <bin> [--scale smoke|fast|full] [--out DIR] [--trials N] [--seed S] [--trace DIR] [--threads N] [--backend scalar|simd|auto] [--dtype f32|f16|bf16] [--resume DIR]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other:?}");
                    std::process::exit(2);
                }
            }
        }
        if let Some(n) = threads {
            if let Err(e) = rex_pool::set_num_threads(n) {
                eprintln!("--threads {n}: {e}");
                std::process::exit(2);
            }
        }
        if let Some(kind) = backend {
            if let Err(e) = rex_tensor::backend::set_backend(kind) {
                eprintln!("--backend: {e}");
                std::process::exit(2);
            }
        }
        Args {
            scale,
            out,
            trials,
            seed,
            trace,
            threads,
            resume,
            backend,
            dtype,
        }
    }
}

/// The schedules a classification/VAE table compares, in the paper's row
/// order (including the bare-optimizer "None" row).
pub fn table_schedules(plateau_patience: u32) -> Vec<ScheduleSpec> {
    let mut v = vec![ScheduleSpec::None];
    v.extend(rex_core::all_paper_schedules(plateau_patience));
    v
}

/// One cell's inputs, passed to the grid runner's cell function.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Schedule under test.
    pub schedule: ScheduleSpec,
    /// Optimizer family.
    pub optimizer: OptimizerKind,
    /// The budget for this cell.
    pub budget: Budget,
    /// Trial index.
    pub trial: usize,
    /// Seed for this (cell, trial).
    pub seed: u64,
}

/// Sanitises one component of a trace filename: lowercase, with every
/// non-alphanumeric run collapsed to a single `-`.
fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// The trace filename a grid cell writes under `--trace DIR`:
/// `<setting>_<optimizer>_<schedule>_b<pct>_t<trial>.jsonl`, each piece
/// slug-sanitised.
pub fn cell_trace_name(setting: &str, cell: &Cell) -> String {
    format!(
        "{}_{}_{}_b{}_t{}.jsonl",
        slug(setting),
        slug(cell.optimizer.name()),
        slug(&cell.schedule.name()),
        cell.budget.pct(),
        cell.trial
    )
}

/// Builds the telemetry recorder for one grid cell: a JSONL writer under
/// `trace_dir` when tracing is on, otherwise disabled. Falls back to a
/// disabled recorder (with a stderr warning) if the file cannot be
/// created — telemetry must not abort an experiment run.
pub fn cell_recorder(trace_dir: Option<&Path>, setting: &str, cell: &Cell) -> Recorder {
    match trace_dir {
        Some(dir) => {
            let path = dir.join(cell_trace_name(setting, cell));
            match JsonlSink::create(&path) {
                Ok(sink) => Recorder::new(Box::new(sink)),
                Err(e) => {
                    eprintln!("warning: cannot create trace file {}: {e}", path.display());
                    Recorder::disabled()
                }
            }
        }
        None => Recorder::disabled(),
    }
}

/// The done-marker filename a finished grid cell leaves under
/// `--resume DIR`: the cell's [`cell_trace_name`] with a `.done` suffix.
pub fn cell_done_name(setting: &str, cell: &Cell) -> String {
    let mut name = cell_trace_name(setting, cell);
    name.truncate(name.len() - ".jsonl".len());
    name.push_str(".done");
    name
}

/// Reads a done-marker back: the cell's score as big-endian `f64` bits in
/// hex (exact — no decimal round-trip), one line. Returns `None` on any
/// parse problem so a corrupt marker just re-runs the cell.
fn read_done_marker(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let bits = u64::from_str_radix(text.trim(), 16).ok()?;
    Some(f64::from_bits(bits))
}

fn write_done_marker(path: &Path, score: f64) {
    let body = format!("{:016x}\n", score.to_bits());
    if let Err(e) = rex_faults::atomic_write("done", path, body.as_bytes()) {
        eprintln!("warning: cannot write done marker {}: {e}", path.display());
    }
}

/// Runs a full schedule × budget grid for one setting/optimizer pair and
/// returns flat records. `cell_fn` trains one cell — emitting telemetry
/// through the supplied recorder — and returns the metric. With
/// `trace_dir` set, each cell's recorder writes a JSONL trace named by
/// [`cell_trace_name`]; otherwise the recorder is disabled (zero cost).
///
/// With `resume_dir` set, each finished cell writes a crash-consistent
/// done-marker there ([`cell_done_name`]; the score as exact `f64` bits)
/// and a later run with the same `resume_dir` replays marked cells
/// instead of retraining them — an interrupted grid loses at most the
/// cells that were in flight.
///
/// Cells are independent (each derives its own seed, recorder, and
/// model), so they run concurrently on the [`rex_pool`] worker pool, one
/// cell per task. Records are assembled afterwards in the canonical
/// schedule → budget → trial order, so the output is byte-identical to
/// the old serial loop regardless of thread count or completion order;
/// tensor ops inside a cell run inline on the worker (the pool never
/// nests), keeping every cell's trajectory bitwise independent of how
/// many cells run at once.
///
/// Progress is streamed to stderr so long runs are observable; lines may
/// interleave across cells when the pool has more than one thread.
#[allow(clippy::too_many_arguments)]
pub fn run_schedule_grid(
    setting: &str,
    optimizer: OptimizerKind,
    schedules: &[ScheduleSpec],
    budgets: &[Budget],
    trials: usize,
    base_seed: u64,
    lower_is_better: bool,
    trace_dir: Option<&Path>,
    resume_dir: Option<&Path>,
    cell_fn: impl Fn(&Cell, &mut Recorder) -> f64 + Sync,
) -> Vec<Record> {
    if let Some(dir) = resume_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create resume dir {}: {e}", dir.display());
        }
    }
    let mut cells = Vec::with_capacity(schedules.len() * budgets.len() * trials);
    for schedule in schedules {
        for budget in budgets {
            for trial in 0..trials {
                cells.push(Cell {
                    schedule: schedule.clone(),
                    optimizer,
                    budget: *budget,
                    trial,
                    seed: base_seed
                        ^ (trial as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ ((budget.pct() as u64) << 32),
                });
            }
        }
    }
    let mut scores = vec![0.0f64; cells.len()];
    let cells_ref = &cells;
    rex_pool::parallel_for_slices(&mut scores, 1, |idx, _, slot| {
        let cell = &cells_ref[idx];
        let done_path = resume_dir.map(|d| d.join(cell_done_name(setting, cell)));
        if let Some(score) = done_path.as_deref().and_then(read_done_marker) {
            eprintln!(
                "[{setting}/{}] {} @ {}: trial {} -> {:.2} (resumed)",
                cell.optimizer.name(),
                cell.schedule.name(),
                cell.budget,
                cell.trial,
                score,
            );
            slot[0] = score;
            return;
        }
        let mut rec = cell_recorder(trace_dir, setting, cell);
        let t0 = std::time::Instant::now();
        let score = cell_fn(cell, &mut rec);
        rec.flush();
        if let Some(path) = &done_path {
            write_done_marker(path, score);
        }
        eprintln!(
            "[{setting}/{}] {} @ {}: trial {} -> {:.2} ({:.1?})",
            cell.optimizer.name(),
            cell.schedule.name(),
            cell.budget,
            cell.trial,
            score,
            t0.elapsed()
        );
        slot[0] = score;
    });
    cells
        .iter()
        .zip(scores)
        .map(|(cell, score)| Record {
            setting: setting.to_string(),
            optimizer: cell.optimizer.name().to_string(),
            schedule: cell.schedule.name(),
            budget_pct: cell.budget.pct(),
            trial: cell.trial as u32,
            score,
            lower_is_better,
        })
        .collect()
}

/// Prints a paper-style table (rows = schedules, columns = budgets) from
/// flat records, marking Top-1 bold and Top-3 italic per column.
pub fn print_budget_table(title: &str, records: &[Record], budgets: &[Budget]) {
    use std::collections::BTreeMap;
    println!("\n## {title}\n");
    let mut optimizers: Vec<String> = records.iter().map(|r| r.optimizer.clone()).collect();
    optimizers.sort();
    optimizers.dedup();
    for opt in optimizers {
        let recs: Vec<&Record> = records.iter().filter(|r| r.optimizer == opt).collect();
        let mut schedules: Vec<String> = Vec::new();
        for r in &recs {
            if !schedules.contains(&r.schedule) {
                schedules.push(r.schedule.clone());
            }
        }
        let lower = recs.first().map(|r| r.lower_is_better).unwrap_or(true);
        let mut headers = vec![opt.clone()];
        headers.extend(budgets.iter().map(|b| format!("{}%", b.pct())));
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut cols: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for sched in &schedules {
            let mut row = vec![sched.clone()];
            for (ci, b) in budgets.iter().enumerate() {
                let vals: Vec<f64> = recs
                    .iter()
                    .filter(|r| r.schedule == *sched && r.budget_pct == b.pct())
                    .map(|r| r.score)
                    .collect();
                let summary = Summary::of(&vals);
                cols.entry(ci + 1).or_default().push(summary.mean);
                row.push(format!("{summary}"));
            }
            rows.push(row);
        }
        for (ci, values) in cols {
            table::mark_best_per_column(&mut rows, ci, &values, lower);
        }
        println!("{}", table::markdown(&headers, &rows));
    }
}

/// Converts records into per-cell [`SettingResult`]s (convenience for the
/// aggregate binaries).
pub fn records_to_cells(records: &[Record]) -> Vec<SettingResult> {
    rex_eval::store::to_setting_results(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_and_pick() {
        assert_eq!(ScaleKind::parse("smoke"), Some(ScaleKind::Smoke));
        assert_eq!(ScaleKind::parse("fast"), Some(ScaleKind::Fast));
        assert_eq!(ScaleKind::parse("huge"), None);
        assert_eq!(ScaleKind::Fast.pick(1, 2, 3), 2);
    }

    #[test]
    fn grid_runner_covers_all_cells() {
        let budgets = vec![Budget::new(100, 1), Budget::new(100, 100)];
        let schedules = vec![ScheduleSpec::Rex, ScheduleSpec::Linear];
        let records = run_schedule_grid(
            "TEST",
            OptimizerKind::sgdm(),
            &schedules,
            &budgets,
            2,
            0,
            true,
            None,
            None,
            |cell, rec| {
                assert!(!rec.is_enabled(), "no --trace => disabled recorder");
                cell.budget.pct() as f64 + cell.trial as f64
            },
        );
        assert_eq!(records.len(), 2 * 2 * 2);
        let trial_scores: Vec<f64> = records
            .iter()
            .filter(|r| r.schedule == "REX" && r.budget_pct == 1)
            .map(|r| r.score)
            .collect();
        assert_eq!(trial_scores, vec![1.0, 2.0]);
    }

    #[test]
    fn resume_dir_skips_finished_cells_and_replays_exact_scores() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = std::env::temp_dir().join(format!("rex_bench_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let budgets = vec![Budget::new(100, 10)];
        let schedules = vec![ScheduleSpec::Rex, ScheduleSpec::Linear];
        let runs = AtomicUsize::new(0);
        // 1/3 is not exactly representable: a decimal round-trip would drift
        let score = |cell: &Cell| (cell.trial as f64 + 1.0) / 3.0 + cell.seed as f64;
        let first = run_schedule_grid(
            "TEST",
            OptimizerKind::sgdm(),
            &schedules,
            &budgets,
            2,
            7,
            true,
            None,
            Some(&dir),
            |cell, _| {
                runs.fetch_add(1, Ordering::Relaxed);
                score(cell)
            },
        );
        assert_eq!(runs.load(Ordering::Relaxed), 4);
        // simulate a crash that lost one cell's marker: that cell re-runs,
        // the other three replay their stored scores bit-for-bit
        let lost = dir.join(cell_done_name(
            "TEST",
            &Cell {
                schedule: ScheduleSpec::Linear,
                optimizer: OptimizerKind::sgdm(),
                budget: budgets[0],
                trial: 1,
                seed: 0,
            },
        ));
        std::fs::remove_file(&lost).expect("marker was written");
        let second = run_schedule_grid(
            "TEST",
            OptimizerKind::sgdm(),
            &schedules,
            &budgets,
            2,
            7,
            true,
            None,
            Some(&dir),
            |cell, _| {
                runs.fetch_add(1, Ordering::Relaxed);
                score(cell)
            },
        );
        assert_eq!(runs.load(Ordering::Relaxed), 5, "exactly one cell re-ran");
        let key = |r: &Record| (r.schedule.clone(), r.budget_pct, r.trial, r.score.to_bits());
        assert_eq!(
            first.iter().map(key).collect::<Vec<_>>(),
            second.iter().map(key).collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_done_marker_reruns_the_cell() {
        let dir = std::env::temp_dir().join(format!("rex_bench_corrupt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cell = Cell {
            schedule: ScheduleSpec::Rex,
            optimizer: OptimizerKind::sgdm(),
            budget: Budget::new(100, 10),
            trial: 0,
            seed: 0,
        };
        let marker = dir.join(cell_done_name("TEST", &cell));
        std::fs::write(&marker, "not-hex\n").unwrap();
        let records = run_schedule_grid(
            "TEST",
            OptimizerKind::sgdm(),
            &[ScheduleSpec::Rex],
            &[Budget::new(100, 10)],
            1,
            0,
            true,
            None,
            Some(&dir),
            |_, _| 42.0,
        );
        assert_eq!(records[0].score, 42.0, "corrupt marker must not be trusted");
        assert_eq!(
            read_done_marker(&marker),
            Some(42.0),
            "marker rewritten after the re-run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_names_are_sanitised_and_unique_per_cell() {
        let cell = Cell {
            schedule: ScheduleSpec::Delayed(Box::new(ScheduleSpec::Linear), 0.5),
            optimizer: OptimizerKind::sgdm(),
            budget: Budget::new(100, 10),
            trial: 3,
            seed: 0,
        };
        let name = cell_trace_name("RN20-CIFAR10", &cell);
        assert!(name.ends_with("_b10_t3.jsonl"), "{name}");
        assert!(name.starts_with("rn20-cifar10_"), "{name}");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)),
            "{name}"
        );
        let other = cell_trace_name("RN20-CIFAR10", &Cell { trial: 4, ..cell });
        assert_ne!(name, other);
    }

    #[test]
    fn table_schedules_include_none_row() {
        let s = table_schedules(5);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0].name(), "None");
        assert_eq!(s[7].name(), "REX");
    }
}
