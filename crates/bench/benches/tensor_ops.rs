//! Criterion micro-benchmark: the tensor kernels that dominate training
//! time (matmul, conv2d forward/backward, softmax).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rex_tensor::conv::{conv2d_backward, conv2d_forward, Window};
use rex_tensor::ops::softmax_rows;
use rex_tensor::{Prng, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Prng::new(0);
    let a = rng.normal_tensor(&[64, 128], 0.0, 1.0);
    let b = rng.normal_tensor(&[128, 64], 0.0, 1.0);
    c.bench_function("matmul_64x128x64", |bch| {
        bch.iter(|| black_box(a.matmul(&b).unwrap()))
    });
    c.bench_function("matmul_nt_64x128x64", |bch| {
        let bt = b.transpose().unwrap();
        bch.iter(|| black_box(a.matmul_nt(&bt).unwrap()))
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = Prng::new(1);
    let input = rng.normal_tensor(&[8, 8, 12, 12], 0.0, 1.0);
    let weight = rng.normal_tensor(&[16, 8, 3, 3], 0.0, 0.3);
    let win = Window::same(3);
    c.bench_function("conv2d_fwd_8x8x12x12_k3", |bch| {
        bch.iter(|| black_box(conv2d_forward(&input, &weight, None, win).unwrap()))
    });
    let (out, saved) = conv2d_forward(&input, &weight, None, win).unwrap();
    let d_out = Tensor::ones(out.shape());
    c.bench_function("conv2d_bwd_8x8x12x12_k3", |bch| {
        bch.iter(|| black_box(conv2d_backward(&d_out, &weight, &saved).unwrap()))
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = Prng::new(2);
    let x = rng.normal_tensor(&[256, 100], 0.0, 1.0);
    c.bench_function("softmax_256x100", |bch| {
        bch.iter(|| black_box(softmax_rows(&x).unwrap()))
    });
}

criterion_group!(benches, bench_matmul, bench_conv, bench_softmax);
criterion_main!(benches);
