//! Criterion micro-benchmark: per-iteration cost of every schedule.
//!
//! Backs the paper's claim that "REX requires no added computation":
//! a REX factor evaluation should cost the same handful of nanoseconds as
//! the linear/cosine baselines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rex_core::ScheduleSpec;

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_factor");
    let specs = [
        ("none", ScheduleSpec::None),
        ("rex", ScheduleSpec::Rex),
        ("linear", ScheduleSpec::Linear),
        ("cosine", ScheduleSpec::Cosine),
        ("exp", ScheduleSpec::ExpDecay),
        ("step", ScheduleSpec::Step),
        ("onecycle", ScheduleSpec::OneCycle),
        (
            "delayed_linear",
            ScheduleSpec::Delayed(Box::new(ScheduleSpec::Linear), 0.5),
        ),
    ];
    for (name, spec) in specs {
        let mut sched = spec.build();
        let mut t = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                t = (t + 1) % 10_000;
                black_box(sched.factor(black_box(t), black_box(10_000)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
