//! Criterion micro-benchmark: one full forward/backward/update step for
//! each model family — the systems-level throughput numbers behind the
//! experiment-scale choices documented in DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rex_autograd::Graph;
use rex_nn::{MicroResNet, Mlp, Module, TinyTransformer, TransformerConfig, Vae};
use rex_optim::{Optimizer, Sgd};
use rex_tensor::Prng;

fn bench_resnet_step(c: &mut Criterion) {
    let model = MicroResNet::rn20_analog(10, 0);
    let mut rng = Prng::new(1);
    let x = rng.normal_tensor(&[32, 3, 12, 12], 0.0, 1.0);
    let targets: Vec<usize> = (0..32).map(|i| i % 10).collect();
    let mut opt = Sgd::new(model.params(), 0.1).with_momentum(0.9);
    c.bench_function("train_step_micro_resnet20_b32", |b| {
        b.iter(|| {
            opt.zero_grad();
            let mut g = Graph::new(true);
            let xn = g.constant(x.clone());
            let logits = model.forward(&mut g, xn).unwrap();
            let loss = g.cross_entropy(logits, &targets).unwrap();
            g.backward(loss).unwrap();
            opt.step();
            black_box(())
        })
    });
}

fn bench_mlp_step(c: &mut Criterion) {
    let mut rng = Prng::new(2);
    let model = Mlp::new("m", &[128, 256, 10], &mut rng);
    let x = rng.normal_tensor(&[64, 128], 0.0, 1.0);
    let targets: Vec<usize> = (0..64).map(|i| i % 10).collect();
    let mut opt = Sgd::new(model.params(), 0.1);
    c.bench_function("train_step_mlp_128_256_10_b64", |b| {
        b.iter(|| {
            opt.zero_grad();
            let mut g = Graph::new(true);
            let xn = g.constant(x.clone());
            let logits = model.forward(&mut g, xn).unwrap();
            let loss = g.cross_entropy(logits, &targets).unwrap();
            g.backward(loss).unwrap();
            opt.step();
            black_box(())
        })
    });
}

fn bench_vae_step(c: &mut Criterion) {
    let vae = Vae::new(144, 64, 8, 0);
    let mut rng = Prng::new(3);
    let x = rng.uniform_tensor(&[32, 144], 0.0, 1.0);
    let mut opt = Sgd::new(vae.params(), 0.01);
    c.bench_function("train_step_vae_144_b32", |b| {
        b.iter(|| {
            opt.zero_grad();
            let mut g = Graph::new(true);
            let loss = vae.elbo(&mut g, &x).unwrap();
            g.backward(loss).unwrap();
            opt.step();
            black_box(())
        })
    });
}

fn bench_transformer_step(c: &mut Criterion) {
    let cfg = TransformerConfig::default();
    let tf = TinyTransformer::new(cfg, 0);
    let tokens: Vec<usize> = (0..16 * cfg.seq_len)
        .map(|i| 2 + i % (cfg.vocab - 2))
        .collect();
    let targets = tokens.clone();
    let mut opt = Sgd::new(tf.params(), 0.01);
    c.bench_function("train_step_transformer_b16", |b| {
        b.iter(|| {
            opt.zero_grad();
            let mut g = Graph::new(true);
            let logits = tf.lm_logits(&mut g, &tokens, 16).unwrap();
            let loss = g.cross_entropy(logits, &targets).unwrap();
            g.backward(loss).unwrap();
            opt.step();
            black_box(())
        })
    });
}

criterion_group!(
    benches,
    bench_resnet_step,
    bench_mlp_step,
    bench_vae_step,
    bench_transformer_step
);
criterion_main!(benches);
