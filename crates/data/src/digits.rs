//! Procedural digit glyphs — the MNIST analogue for the VAE setting.
//!
//! Digits 0–9 are rendered from seven-segment templates onto a small grid
//! with per-sample translation, thickness jitter, and pixel noise, then
//! clamped to `[0, 1]` (the Bernoulli-likelihood range the VAE expects).

use rex_tensor::{Prng, Tensor};

/// Seven-segment encoding of digits 0–9 (segments: top, top-left,
/// top-right, middle, bottom-left, bottom-right, bottom).
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, false, true, true, true],     // 0
    [false, false, true, false, false, true, false], // 1
    [true, false, true, true, true, false, true],    // 2
    [true, false, true, true, false, true, true],    // 3
    [false, true, true, true, false, true, false],   // 4
    [true, true, false, true, false, true, true],    // 5
    [true, true, false, true, true, true, true],     // 6
    [true, false, true, false, false, true, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// A split of flattened digit images (`[N, size*size]`, values in `[0,1]`)
/// with their digit labels.
#[derive(Debug, Clone)]
pub struct DigitDataset {
    /// Flattened images `[N, size·size]`.
    pub images: Tensor,
    /// Digit (0–9) of each image.
    pub labels: Vec<usize>,
    /// Square image side.
    pub size: usize,
}

impl DigitDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Generates `n` digit images of side `size` (≥ 8).
///
/// # Panics
///
/// Panics if `size < 8`.
pub fn synth_digits(n: usize, size: usize, seed: u64) -> DigitDataset {
    assert!(size >= 8, "digit canvas must be at least 8x8");
    let mut rng = Prng::new(seed);
    let mut images = Vec::with_capacity(n * size * size);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let digit = rng.below(10);
        labels.push(digit);
        images.extend(render_digit(digit, size, &mut rng));
    }
    DigitDataset {
        images: Tensor::from_vec(images, &[n, size * size]).expect("geometry consistent"),
        labels,
        size,
    }
}

fn render_digit(digit: usize, size: usize, rng: &mut Prng) -> Vec<f32> {
    let mut img = vec![0.0f32; size * size];
    // glyph occupies a box roughly half the canvas, jittered
    let gw = size / 2;
    let gh = (2 * size) / 3;
    let max_x = size - gw - 1;
    let max_y = size - gh;
    let ox = 1 + rng.below(max_x.max(1));
    let oy = rng.below(max_y.max(1));
    let seg = &SEGMENTS[digit];
    let mid = gh / 2;

    let hline = |y: usize, img: &mut Vec<f32>| {
        for x in 0..gw {
            set_px(img, size, ox + x, oy + y);
        }
    };
    if seg[0] {
        hline(0, &mut img);
    }
    if seg[3] {
        hline(mid, &mut img);
    }
    if seg[6] {
        hline(gh - 1, &mut img);
    }
    let vline = |x: usize, y0: usize, y1: usize, img: &mut Vec<f32>| {
        for y in y0..y1 {
            set_px(img, size, ox + x, oy + y);
        }
    };
    if seg[1] {
        vline(0, 0, mid, &mut img);
    }
    if seg[2] {
        vline(gw - 1, 0, mid, &mut img);
    }
    if seg[4] {
        vline(0, mid, gh, &mut img);
    }
    if seg[5] {
        vline(gw - 1, mid, gh, &mut img);
    }

    // blur-ish thickening and noise, clamped to [0,1]
    for v in &mut img {
        *v = (*v + 0.08 * rng.normal()).clamp(0.0, 1.0);
    }
    img
}

fn set_px(img: &mut [f32], size: usize, x: usize, y: usize) {
    if x < size && y < size {
        img[y * size + x] = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_range() {
        let d = synth_digits(20, 12, 0);
        assert_eq!(d.images.shape(), &[20, 144]);
        assert_eq!(d.len(), 20);
        assert!(!d.is_empty());
        assert!(d.images.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic() {
        let a = synth_digits(10, 12, 3);
        let b = synth_digits(10, 12, 3);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn digits_have_ink() {
        let d = synth_digits(50, 12, 1);
        for i in 0..50 {
            let row = &d.images.data()[i * 144..(i + 1) * 144];
            let ink: f32 = row.iter().sum();
            assert!(ink > 3.0, "digit {i} nearly blank (ink {ink})");
        }
    }

    #[test]
    fn all_ten_digits_appear() {
        let d = synth_digits(300, 12, 2);
        for digit in 0..10 {
            assert!(d.labels.contains(&digit), "digit {digit} missing");
        }
    }

    #[test]
    fn eight_has_more_ink_than_one() {
        // Structural sanity: glyph shape depends on the digit.
        let mut rng_a = Prng::new(9);
        let mut rng_b = Prng::new(9);
        let eight: f32 = render_digit(8, 12, &mut rng_a).iter().sum();
        let one: f32 = render_digit(1, 12, &mut rng_b).iter().sum();
        assert!(eight > one);
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn tiny_canvas_rejected() {
        let _ = synth_digits(1, 4, 0);
    }
}
