//! Synthetic detection scenes — the Pascal-VOC analogue.
//!
//! Each scene is an RGB image containing 1–3 colored geometric objects
//! (class 0: filled square, class 1: filled disc, class 2: cross) on a
//! textured background. Ground truth is provided both as exact boxes (for
//! mAP evaluation) and in grid form matching the
//! `TinyDetector` head layout: an objectness grid, box-parameter grid, and
//! per-cell class indices.

use rex_tensor::{Prng, Tensor};

/// One ground-truth object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtObject {
    /// Class index (0..num_classes).
    pub class: usize,
    /// Box centre x/y and width/height in `[0, 1]` image coordinates.
    pub cxcywh: [f32; 4],
}

/// A batch of detection scenes.
#[derive(Debug, Clone)]
pub struct SceneDataset {
    /// Images `[N, 3, size, size]`.
    pub images: Tensor,
    /// Ground-truth objects per image.
    pub objects: Vec<Vec<GtObject>>,
    /// Objectness grid `[N, S, S]`.
    pub objectness: Tensor,
    /// Box-target grid `[N, 4, S, S]` (`tx, ty, w, h`; `tx/ty` are the
    /// centre offsets within the cell).
    pub boxes: Tensor,
    /// Class per cell (`None` = background), row-major `N·S·S`.
    pub cell_classes: Vec<Option<usize>>,
    /// Grid side S.
    pub grid: usize,
    /// Number of object classes.
    pub num_classes: usize,
}

impl SceneDataset {
    /// Number of scenes.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// Generates `n` scenes of side `size` with a detection grid of
/// `size/8` cells per side.
///
/// # Panics
///
/// Panics if `size` is not a positive multiple of 8.
pub fn synth_scenes(n: usize, size: usize, seed: u64) -> SceneDataset {
    assert!(
        size > 0 && size.is_multiple_of(8),
        "scene size must be a multiple of 8"
    );
    let grid = size / 8;
    let num_classes = 3;
    let mut rng = Prng::new(seed);

    let mut images = Vec::with_capacity(n * 3 * size * size);
    let mut objects = Vec::with_capacity(n);
    let mut objness = Tensor::zeros(&[n, grid, grid]);
    let mut boxes = Tensor::zeros(&[n, 4, grid, grid]);
    let mut cell_classes = vec![None; n * grid * grid];

    for i in 0..n {
        // textured background
        let mut img = vec![0.0f32; 3 * size * size];
        let base: [f32; 3] = [
            rng.uniform_in(0.1, 0.4),
            rng.uniform_in(0.1, 0.4),
            rng.uniform_in(0.1, 0.4),
        ];
        for ch in 0..3 {
            for p in 0..size * size {
                img[ch * size * size + p] = base[ch] + 0.08 * rng.normal();
            }
        }

        let count = 1 + rng.below(3);
        let mut scene_objs = Vec::with_capacity(count);
        let mut used_cells: Vec<usize> = Vec::new();
        for _ in 0..count {
            let class = rng.below(num_classes);
            let w = rng.uniform_in(0.18, 0.34);
            let h = rng.uniform_in(0.18, 0.34);
            let cx = rng.uniform_in(w / 2.0, 1.0 - w / 2.0);
            let cy = rng.uniform_in(h / 2.0, 1.0 - h / 2.0);
            let cell_x = ((cx * grid as f32) as usize).min(grid - 1);
            let cell_y = ((cy * grid as f32) as usize).min(grid - 1);
            let cell = cell_y * grid + cell_x;
            if used_cells.contains(&cell) {
                continue; // one object per cell (single-anchor detector)
            }
            used_cells.push(cell);
            draw_object(&mut img, size, class, cx, cy, w, h, &mut rng);
            scene_objs.push(GtObject {
                class,
                cxcywh: [cx, cy, w, h],
            });
            objness.set(&[i, cell_y, cell_x], 1.0);
            boxes.set(&[i, 0, cell_y, cell_x], cx * grid as f32 - cell_x as f32);
            boxes.set(&[i, 1, cell_y, cell_x], cy * grid as f32 - cell_y as f32);
            boxes.set(&[i, 2, cell_y, cell_x], w);
            boxes.set(&[i, 3, cell_y, cell_x], h);
            cell_classes[i * grid * grid + cell] = Some(class);
        }
        objects.push(scene_objs);
        images.extend(img);
    }

    SceneDataset {
        images: Tensor::from_vec(images, &[n, 3, size, size]).expect("geometry consistent"),
        objects,
        objectness: objness,
        boxes,
        cell_classes,
        grid,
        num_classes,
    }
}

#[allow(clippy::too_many_arguments)]
fn draw_object(
    img: &mut [f32],
    size: usize,
    class: usize,
    cx: f32,
    cy: f32,
    w: f32,
    h: f32,
    rng: &mut Prng,
) {
    // class-specific color with jitter
    let palette: [[f32; 3]; 3] = [[0.9, 0.2, 0.2], [0.2, 0.9, 0.2], [0.2, 0.3, 0.9]];
    let color: Vec<f32> = palette[class]
        .iter()
        .map(|&c| (c + 0.1 * rng.normal()).clamp(0.0, 1.0))
        .collect();
    let (px_cx, px_cy) = (cx * size as f32, cy * size as f32);
    let (px_w, px_h) = (w * size as f32 / 2.0, h * size as f32 / 2.0);
    for y in 0..size {
        for x in 0..size {
            let dx = (x as f32 - px_cx) / px_w;
            let dy = (y as f32 - px_cy) / px_h;
            let inside = match class {
                0 => dx.abs() <= 1.0 && dy.abs() <= 1.0, // square
                1 => dx * dx + dy * dy <= 1.0,           // disc
                _ => (dx.abs() <= 0.35 || dy.abs() <= 0.35) && dx.abs() <= 1.0 && dy.abs() <= 1.0, // cross
            };
            if inside {
                for ch in 0..3 {
                    img[(ch * size + y) * size + x] = color[ch];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_consistent() {
        let d = synth_scenes(5, 24, 0);
        assert_eq!(d.images.shape(), &[5, 3, 24, 24]);
        assert_eq!(d.objectness.shape(), &[5, 3, 3]);
        assert_eq!(d.boxes.shape(), &[5, 4, 3, 3]);
        assert_eq!(d.cell_classes.len(), 45);
        assert_eq!(d.grid, 3);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn deterministic() {
        let a = synth_scenes(4, 24, 5);
        let b = synth_scenes(4, 24, 5);
        assert_eq!(a.images, b.images);
        assert_eq!(a.cell_classes, b.cell_classes);
    }

    #[test]
    fn grid_targets_match_object_list() {
        let d = synth_scenes(20, 24, 1);
        for (i, objs) in d.objects.iter().enumerate() {
            let positives = (0..9)
                .filter(|&c| d.cell_classes[i * 9 + c].is_some())
                .count();
            assert_eq!(positives, objs.len(), "scene {i}");
            for o in objs {
                let cell_x = ((o.cxcywh[0] * 3.0) as usize).min(2);
                let cell_y = ((o.cxcywh[1] * 3.0) as usize).min(2);
                assert_eq!(d.objectness.at(&[i, cell_y, cell_x]), 1.0);
                assert_eq!(d.cell_classes[i * 9 + cell_y * 3 + cell_x], Some(o.class));
            }
        }
    }

    #[test]
    fn box_offsets_within_cell_range() {
        let d = synth_scenes(20, 24, 2);
        for i in 0..20 {
            for cy in 0..3 {
                for cx in 0..3 {
                    if d.objectness.at(&[i, cy, cx]) == 1.0 {
                        let tx = d.boxes.at(&[i, 0, cy, cx]);
                        let ty = d.boxes.at(&[i, 1, cy, cx]);
                        assert!((0.0..=1.0).contains(&tx), "tx {tx}");
                        assert!((0.0..=1.0).contains(&ty), "ty {ty}");
                    }
                }
            }
        }
    }

    #[test]
    fn scenes_contain_one_to_three_objects() {
        let d = synth_scenes(50, 24, 3);
        for objs in &d.objects {
            assert!((1..=3).contains(&objs.len()));
        }
    }

    #[test]
    fn objects_are_visible_in_image() {
        let d = synth_scenes(10, 24, 4);
        // pixels at an object's centre should differ from the background base
        for (i, objs) in d.objects.iter().enumerate() {
            for o in objs {
                let x = (o.cxcywh[0] * 24.0) as usize;
                let y = (o.cxcywh[1] * 24.0) as usize;
                let px = d.images.at(&[i, 0, y.min(23), x.min(23)]);
                assert!(px.is_finite());
            }
        }
    }
}
