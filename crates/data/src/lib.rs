//! # rex-data — deterministic synthetic datasets
//!
//! The REX paper evaluates on CIFAR-10/100, STL-10, ImageNet, MNIST, Pascal
//! VOC, and GLUE. None of those are available in this offline reproduction,
//! so this crate provides *procedural stand-ins* that exercise the same
//! training code paths (see DESIGN.md §2 for the substitution table):
//!
//! * [`images`] — class-conditional image generators
//!   ([`images::synth_cifar10`], [`images::synth_cifar100`],
//!   [`images::synth_stl10`], [`images::synth_imagenet`]) producing
//!   [`ClassificationDataset`]s;
//! * [`digits`] — glyph-like single-channel images for the VAE setting;
//! * [`scenes`] — multi-object detection scenes with grid-form targets;
//! * [`text`] — a synthetic "GLUE" suite of eight sequence-classification
//!   tasks plus a Markov-chain corpus for pre-training.
//!
//! Every generator takes an explicit seed and is bit-reproducible; dataset
//! *difficulty* (noise, jitter) is tuned so that learning-rate schedules
//! visibly matter — too-easy tasks saturate under any schedule and would
//! flatten the paper's comparisons.

#![warn(missing_docs)]

mod dataset;
pub mod digits;
pub mod images;
mod loader;
pub mod scenes;
pub mod text;

pub use dataset::ClassificationDataset;
pub use loader::{augment_hflip, augment_random_crop, batches, batches_traced, Batch};
