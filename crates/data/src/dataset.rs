use rex_tensor::Tensor;

/// A supervised classification dataset with a train/test split.
///
/// Images are stored as one `[N, C, H, W]` tensor per split; labels are
/// class indices. All generators in this crate return this type.
#[derive(Debug, Clone)]
pub struct ClassificationDataset {
    /// Training images `[N_train, C, H, W]`.
    pub train_images: Tensor,
    /// Training labels, `N_train` class indices.
    pub train_labels: Vec<usize>,
    /// Held-out images `[N_test, C, H, W]`.
    pub test_images: Tensor,
    /// Held-out labels.
    pub test_labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl ClassificationDataset {
    /// Validates shape/label consistency.
    ///
    /// # Panics
    ///
    /// Panics if label counts don't match image counts or any label is out
    /// of range — generator bugs, not user errors.
    pub fn new(
        train_images: Tensor,
        train_labels: Vec<usize>,
        test_images: Tensor,
        test_labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        assert_eq!(train_images.shape()[0], train_labels.len());
        assert_eq!(test_images.shape()[0], test_labels.len());
        assert!(train_labels
            .iter()
            .chain(&test_labels)
            .all(|&l| l < num_classes));
        ClassificationDataset {
            train_images,
            train_labels,
            test_images,
            test_labels,
            num_classes,
        }
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }

    /// Image shape `[C, H, W]`.
    pub fn image_shape(&self) -> &[usize] {
        &self.train_images.shape()[1..]
    }
}
