//! Synthetic text tasks — the GLUE analogue and a pre-training corpus.
//!
//! Sequences are token-id vectors of fixed length with `[CLS]` (token 0) at
//! position 0 and content tokens in `2..vocab`. Eight tasks named after the
//! GLUE suite (WNLI excluded, as in the paper) each encode a different
//! structural rule — presence, ordering, paraphrase, overlap — so task
//! difficulty varies the way real GLUE tasks do. Labels are balanced by
//! construction.

use rex_tensor::Prng;

/// Reserved token ids.
pub const CLS: usize = 0;
/// Mask/separator token id.
pub const MASK: usize = 1;
/// First content token id.
pub const CONTENT_START: usize = 2;

/// One synthetic sequence-classification task.
#[derive(Debug, Clone)]
pub struct TextTask {
    /// Task name (GLUE-style).
    pub name: &'static str,
    /// Number of label classes.
    pub num_classes: usize,
    /// Flattened train tokens (`len = n_train · seq_len`).
    pub train_tokens: Vec<usize>,
    /// Train labels.
    pub train_labels: Vec<usize>,
    /// Flattened test tokens.
    pub test_tokens: Vec<usize>,
    /// Test labels.
    pub test_labels: Vec<usize>,
    /// Sequence length (including `[CLS]`).
    pub seq_len: usize,
}

impl TextTask {
    /// Number of training sequences.
    pub fn train_len(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test sequences.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }
}

/// The eight GLUE-analogue tasks, in the paper's Table 11 column order.
pub fn glue_task_names() -> [&'static str; 8] {
    [
        "CoLA", "MNLI", "MRPC", "QNLI", "QQP", "RTE", "SST-2", "STS-B",
    ]
}

/// Generates the full synthetic GLUE suite.
///
/// # Panics
///
/// Panics if `seq_len < 9` or `vocab < 16` (the rules need room).
pub fn glue_tasks(
    train_per_task: usize,
    test_per_task: usize,
    seq_len: usize,
    vocab: usize,
    seed: u64,
) -> Vec<TextTask> {
    assert!(seq_len >= 9, "seq_len must be at least 9, got {seq_len}");
    assert!(vocab >= 16, "vocab must be at least 16, got {vocab}");
    glue_task_names()
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let task_seed = seed ^ ((i as u64 + 1) * 0x9E37_79B9);
            gen_task(
                name,
                train_per_task,
                test_per_task,
                seq_len,
                vocab,
                task_seed,
            )
        })
        .collect()
}

fn gen_task(
    name: &'static str,
    n_train: usize,
    n_test: usize,
    seq_len: usize,
    vocab: usize,
    seed: u64,
) -> TextTask {
    let num_classes = match name {
        "MNLI" | "STS-B" => 3,
        _ => 2,
    };
    let mut rng = Prng::new(seed);
    let gen_split = |n: usize, rng: &mut Prng| {
        let mut tokens = Vec::with_capacity(n * seq_len);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % num_classes; // balanced
            tokens.extend(gen_sequence(name, label, seq_len, vocab, rng));
            labels.push(label);
        }
        (tokens, labels)
    };
    let mut train_rng = rng.fork();
    let mut test_rng = rng.fork();
    let (train_tokens, train_labels) = gen_split(n_train, &mut train_rng);
    let (test_tokens, test_labels) = gen_split(n_test, &mut test_rng);
    TextTask {
        name,
        num_classes,
        train_tokens,
        train_labels,
        test_tokens,
        test_labels,
        seq_len,
    }
}

fn rand_content(vocab: usize, rng: &mut Prng) -> usize {
    CONTENT_START + rng.below(vocab - CONTENT_START)
}

/// Builds one sequence realising `label` under the task's rule.
fn gen_sequence(
    name: &str,
    label: usize,
    seq_len: usize,
    vocab: usize,
    rng: &mut Prng,
) -> Vec<usize> {
    let body = seq_len - 1; // after CLS
    let half = body / 2;
    let mut seq = vec![CLS];
    match name {
        // "Grammaticality": label 1 = ascending token runs, 0 = shuffled.
        "CoLA" => {
            let mut toks: Vec<usize> = (0..body).map(|_| rand_content(vocab, rng)).collect();
            if label == 1 {
                toks.sort_unstable();
            } else {
                // ensure not accidentally sorted
                rng.shuffle(&mut toks);
                if toks.windows(2).all(|w| w[0] <= w[1]) {
                    toks.reverse();
                }
            }
            seq.extend(toks);
        }
        // Entailment by overlap: 0 = copy (entail), 1 = half overlap, 2 = disjoint.
        "MNLI" => {
            let first: Vec<usize> = (0..half).map(|_| rand_content(vocab, rng)).collect();
            seq.extend(&first);
            let overlap = match label {
                0 => half,
                1 => half / 2,
                _ => 0,
            };
            for j in 0..(body - half) {
                if j < overlap {
                    seq.push(first[j % first.len()]);
                } else {
                    // draw until distinct from first half
                    loop {
                        let t = rand_content(vocab, rng);
                        if !first.contains(&t) {
                            seq.push(t);
                            break;
                        }
                    }
                }
            }
        }
        // Paraphrase: 1 = second half is a permutation of the first.
        "MRPC" | "QQP" => {
            let first: Vec<usize> = (0..half).map(|_| rand_content(vocab, rng)).collect();
            seq.extend(&first);
            if label == 1 {
                // MRPC repeats the first half verbatim; QQP is the noisy
                // (harder) variant: shuffled order plus one corrupted token.
                let mut second = first.clone();
                if name == "QQP" && !second.is_empty() {
                    rng.shuffle(&mut second);
                    let idx = rng.below(second.len());
                    second[idx] = rand_content(vocab, rng);
                }
                seq.extend(second.iter().take(body - half));
                while seq.len() < seq_len {
                    seq.push(rand_content(vocab, rng));
                }
            } else {
                while seq.len() < seq_len {
                    loop {
                        let t = rand_content(vocab, rng);
                        if !first.contains(&t) {
                            seq.push(t);
                            break;
                        }
                    }
                }
            }
        }
        // Question answering: 1 = the probe token (position 1) appears later.
        "QNLI" | "RTE" => {
            let probe = rand_content(vocab, rng);
            seq.push(probe);
            let mut rest: Vec<usize> = Vec::new();
            while rest.len() < body - 1 {
                loop {
                    let t = rand_content(vocab, rng);
                    if t != probe {
                        rest.push(t);
                        break;
                    }
                }
            }
            if label == 1 {
                // QNLI plants the probe at three positions (strong signal);
                // RTE, the harder variant, plants it only once.
                let copies = if name == "RTE" { 1 } else { 3 };
                for _ in 0..copies {
                    let pos = rng.below(rest.len());
                    rest[pos] = probe;
                }
            }
            seq.extend(rest);
        }
        // Sentiment: which of two lexicons dominates.
        "SST-2" => {
            let lex_size = 6.min((vocab - CONTENT_START) / 2);
            let positive = CONTENT_START..CONTENT_START + lex_size;
            let negative = CONTENT_START + lex_size..CONTENT_START + 2 * lex_size;
            let dominant = rng.below(body / 2) + body / 2 + 1; // majority count
            for j in 0..body {
                let from_dominant = j < dominant;
                let tok = if from_dominant == (label == 1) {
                    positive.start + rng.below(lex_size)
                } else {
                    negative.start + rng.below(lex_size)
                };
                seq.push(tok);
            }
            // shuffle body so position carries no signal
            let body_slice = &mut seq[1..];
            rng.shuffle(body_slice);
        }
        // Similarity buckets by overlap count: 0 = low, 1 = mid, 2 = high.
        "STS-B" => {
            let first: Vec<usize> = (0..half).map(|_| rand_content(vocab, rng)).collect();
            seq.extend(&first);
            let overlap = (label * half) / 2; // 0, half/2, half
            for j in 0..(body - half) {
                if j < overlap {
                    seq.push(first[j % first.len()]);
                } else {
                    loop {
                        let t = rand_content(vocab, rng);
                        if !first.contains(&t) {
                            seq.push(t);
                            break;
                        }
                    }
                }
            }
        }
        other => unreachable!("unknown task {other}"),
    }
    seq.truncate(seq_len);
    while seq.len() < seq_len {
        seq.push(rand_content(vocab, rng));
    }
    seq
}

/// A pre-training corpus: sequences from a sparse Markov chain, plus
/// mask-corrupted inputs (15 % of positions replaced by [`MASK`]). The
/// pre-training objective is to reconstruct `targets` from `inputs` at
/// every position — a denoising/MLM-style task.
#[derive(Debug, Clone)]
pub struct LmCorpus {
    /// Corrupted input tokens, flattened `n · seq_len`.
    pub inputs: Vec<usize>,
    /// Original tokens (reconstruction targets), flattened.
    pub targets: Vec<usize>,
    /// Number of sequences.
    pub n: usize,
    /// Sequence length.
    pub seq_len: usize,
}

/// Generates a Markov-chain corpus of `n` sequences.
///
/// # Panics
///
/// Panics if `vocab < 8`.
pub fn lm_corpus(n: usize, seq_len: usize, vocab: usize, seed: u64) -> LmCorpus {
    assert!(vocab >= 8, "vocab must be at least 8");
    let mut rng = Prng::new(seed);
    // sparse transition structure: each token prefers 4 successors
    let succ: Vec<[usize; 4]> = (0..vocab)
        .map(|_| {
            [
                rand_content(vocab, &mut rng),
                rand_content(vocab, &mut rng),
                rand_content(vocab, &mut rng),
                rand_content(vocab, &mut rng),
            ]
        })
        .collect();
    let mut targets = Vec::with_capacity(n * seq_len);
    let mut inputs = Vec::with_capacity(n * seq_len);
    for _ in 0..n {
        let mut tok = rand_content(vocab, &mut rng);
        for pos in 0..seq_len {
            if pos == 0 {
                targets.push(CLS);
                inputs.push(CLS);
                continue;
            }
            tok = if rng.bernoulli(0.9) {
                succ[tok][rng.below(4)]
            } else {
                rand_content(vocab, &mut rng)
            };
            targets.push(tok);
            inputs.push(if rng.bernoulli(0.15) { MASK } else { tok });
        }
    }
    LmCorpus {
        inputs,
        targets,
        n,
        seq_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_tasks_generated() {
        let tasks = glue_tasks(8, 4, 16, 64, 0);
        assert_eq!(tasks.len(), 8);
        let names: Vec<&str> = tasks.iter().map(|t| t.name).collect();
        assert_eq!(names, glue_task_names());
    }

    #[test]
    fn shapes_and_token_ranges() {
        for t in glue_tasks(6, 3, 16, 64, 1) {
            assert_eq!(t.train_tokens.len(), 6 * 16);
            assert_eq!(t.test_tokens.len(), 3 * 16);
            assert_eq!(t.train_len(), 6);
            assert_eq!(t.test_len(), 3);
            assert!(t.train_tokens.iter().all(|&tok| tok < 64));
            // first token of each sequence is CLS
            for i in 0..6 {
                assert_eq!(t.train_tokens[i * 16], CLS, "{}", t.name);
            }
        }
    }

    #[test]
    fn labels_balanced_and_in_range() {
        for t in glue_tasks(12, 6, 16, 64, 2) {
            assert!(t.train_labels.iter().all(|&l| l < t.num_classes));
            let count0 = t.train_labels.iter().filter(|&&l| l == 0).count();
            assert!(
                count0 >= 12 / t.num_classes - 1,
                "{}: label 0 count {count0}",
                t.name
            );
        }
    }

    #[test]
    fn mnli_stsb_have_three_classes() {
        let tasks = glue_tasks(3, 3, 16, 64, 3);
        for t in &tasks {
            let expected = if t.name == "MNLI" || t.name == "STS-B" {
                3
            } else {
                2
            };
            assert_eq!(t.num_classes, expected, "{}", t.name);
        }
    }

    #[test]
    fn cola_positive_sequences_are_sorted() {
        let t = &glue_tasks(20, 2, 16, 64, 4)[0];
        assert_eq!(t.name, "CoLA");
        for i in 0..20 {
            if t.train_labels[i] == 1 {
                let body = &t.train_tokens[i * 16 + 1..(i + 1) * 16];
                assert!(body.windows(2).all(|w| w[0] <= w[1]), "row {i} not sorted");
            }
        }
    }

    #[test]
    fn qnli_positive_contains_probe() {
        let tasks = glue_tasks(20, 2, 16, 64, 5);
        let t = tasks.iter().find(|t| t.name == "QNLI").unwrap();
        for i in 0..20 {
            let probe = t.train_tokens[i * 16 + 1];
            let rest = &t.train_tokens[i * 16 + 2..(i + 1) * 16];
            let present = rest.contains(&probe);
            assert_eq!(present, t.train_labels[i] == 1, "row {i}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = glue_tasks(4, 2, 16, 64, 9);
        let b = glue_tasks(4, 2, 16, 64, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.train_tokens, y.train_tokens);
        }
    }

    #[test]
    fn lm_corpus_masks_some_tokens() {
        let c = lm_corpus(50, 16, 32, 0);
        assert_eq!(c.inputs.len(), 800);
        assert_eq!(c.targets.len(), 800);
        let masked = c.inputs.iter().filter(|&&t| t == MASK).count();
        // ~15% of non-CLS positions
        assert!(masked > 40 && masked < 250, "masked count {masked}");
        // targets never contain MASK (they're the originals)
        assert!(c.targets.iter().all(|&t| t != MASK));
    }

    #[test]
    fn lm_corpus_is_markovian() {
        // the same successor structure means consecutive-token bigrams
        // repeat far more often than uniform chance
        let c = lm_corpus(100, 16, 32, 1);
        let mut bigrams = std::collections::HashMap::new();
        for s in 0..c.n {
            for p in 1..c.seq_len - 1 {
                let a = c.targets[s * 16 + p];
                let b = c.targets[s * 16 + p + 1];
                *bigrams.entry((a, b)).or_insert(0usize) += 1;
            }
        }
        let max_count = bigrams.values().max().copied().unwrap_or(0);
        assert!(
            max_count > 5,
            "no repeated structure (max bigram {max_count})"
        );
    }
}
