//! Mini-batch assembly and augmentation.

use rex_telemetry::{Event, Recorder};
use rex_tensor::{Prng, Tensor};

/// One mini-batch of images and labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Batch images `[B, C, H, W]` (or `[B, D]` for flattened data).
    pub images: Tensor,
    /// Batch labels.
    pub labels: Vec<usize>,
}

/// Splits a dataset into mini-batches for one epoch.
///
/// With `rng: Some(..)` the sample order is shuffled (training); with
/// `None` batches are deterministic and in order (evaluation). The last
/// partial batch is kept.
///
/// The batch order is a pure function of the RNG state on entry: a
/// checkpoint that captured [`Prng::state`] before the shuffle can rebuild
/// this epoch's exact batches via [`Prng::from_state`] — the loader-level
/// half of the resume-determinism contract.
///
/// # Panics
///
/// Panics if `batch_size == 0` or label count differs from the first image
/// axis.
pub fn batches(
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    mut rng: Option<&mut Prng>,
) -> Vec<Batch> {
    assert!(batch_size > 0, "batch size must be positive");
    assert_eq!(
        images.shape()[0],
        labels.len(),
        "images/labels length mismatch"
    );
    let n = labels.len();
    let order: Vec<usize> = match rng.take() {
        Some(r) => r.permutation(n),
        None => (0..n).collect(),
    };
    order
        .chunks(batch_size)
        .map(|rows| Batch {
            images: images.gather_rows(rows),
            labels: rows.iter().map(|&i| labels[i]).collect(),
        })
        .collect()
}

/// [`batches`] plus a telemetry [`Event::Epoch`] announcing the epoch's
/// sample/batch counts and whether the order was shuffled.
///
/// # Panics
///
/// Panics under the same conditions as [`batches`].
pub fn batches_traced(
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    rng: Option<&mut Prng>,
    rec: &mut Recorder,
    epoch: u64,
) -> Vec<Batch> {
    let shuffled = rng.is_some();
    let out = batches(images, labels, batch_size, rng);
    rec.emit(Event::Epoch {
        epoch,
        samples: labels.len() as u64,
        batches: out.len() as u64,
        shuffled,
    });
    out
}

/// Random horizontal flip (probability ½ per sample) for `[B, C, H, W]`
/// image batches — the standard light augmentation for the CIFAR-style
/// settings.
///
/// # Panics
///
/// Panics if `batch` is not 4-D.
pub fn augment_hflip(batch: &Tensor, rng: &mut Prng) -> Tensor {
    assert_eq!(batch.ndim(), 4, "hflip expects [B,C,H,W]");
    let (b, c, h, w) = (
        batch.shape()[0],
        batch.shape()[1],
        batch.shape()[2],
        batch.shape()[3],
    );
    let mut out = batch.clone();
    for i in 0..b {
        if !rng.bernoulli(0.5) {
            continue;
        }
        for ch in 0..c {
            for y in 0..h {
                let base = ((i * c + ch) * h + y) * w;
                out.data_mut()[base..base + w].reverse();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Tensor, Vec<usize>) {
        (
            Tensor::arange(0.0, 1.0, 12).reshape(&[6, 2]).unwrap(),
            vec![0, 1, 2, 3, 4, 5],
        )
    }

    #[test]
    fn unshuffled_batches_in_order() {
        let (imgs, labels) = toy();
        let bs = batches(&imgs, &labels, 4, None);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].labels, vec![0, 1, 2, 3]);
        assert_eq!(bs[1].labels, vec![4, 5]); // partial batch kept
        assert_eq!(bs[0].images.shape(), &[4, 2]);
        assert_eq!(bs[1].images.shape(), &[2, 2]);
    }

    #[test]
    fn shuffled_batches_cover_everything_once() {
        let (imgs, labels) = toy();
        let mut rng = Prng::new(0);
        let bs = batches(&imgs, &labels, 4, Some(&mut rng));
        let mut seen: Vec<usize> = bs.iter().flat_map(|b| b.labels.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, labels);
    }

    #[test]
    fn same_rng_state_reproduces_batches() {
        // the loader half of the resume contract: capturing the RNG state
        // before the shuffle and rebuilding from it regenerates the epoch's
        // batches exactly
        let (imgs, labels) = toy();
        let mut rng = Prng::new(0xFEED);
        let _burn = rng.permutation(17); // advance into the stream
        let saved = rng.state();
        let original = batches(&imgs, &labels, 4, Some(&mut rng));

        let mut replay = Prng::from_state(saved);
        let rebuilt = batches(&imgs, &labels, 4, Some(&mut replay));
        assert_eq!(original.len(), rebuilt.len());
        for (a, b) in original.iter().zip(&rebuilt) {
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.images.data(), b.images.data());
        }
        // both streams end in the same place, so the *next* epoch matches too
        assert_eq!(rng.state(), replay.state());
    }

    #[test]
    fn shuffles_differ_between_epochs() {
        let (imgs, labels) = toy();
        let mut rng = Prng::new(1);
        let a: Vec<usize> = batches(&imgs, &labels, 6, Some(&mut rng))[0].labels.clone();
        let b: Vec<usize> = batches(&imgs, &labels, 6, Some(&mut rng))[0].labels.clone();
        assert_ne!(a, b, "consecutive epochs should shuffle differently");
    }

    #[test]
    fn hflip_reverses_rows_only_for_flipped_samples() {
        let img = Tensor::arange(0.0, 1.0, 2 * 4)
            .reshape(&[2, 1, 1, 4])
            .unwrap();
        // find a seed where sample 0 flips and sample 1 doesn't
        let mut rng = Prng::new(3);
        let out = augment_hflip(&img, &mut rng);
        for i in 0..2 {
            let orig: Vec<f32> = (0..4).map(|x| img.at(&[i, 0, 0, x])).collect();
            let now: Vec<f32> = (0..4).map(|x| out.at(&[i, 0, 0, x])).collect();
            let rev: Vec<f32> = orig.iter().rev().copied().collect();
            assert!(now == orig || now == rev, "sample {i} corrupted: {now:?}");
        }
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let (imgs, labels) = toy();
        let _ = batches(&imgs, &labels, 0, None);
    }

    #[test]
    fn traced_batches_emit_epoch_event() {
        use rex_telemetry::MemorySink;

        let (imgs, labels) = toy();
        let sink = MemorySink::unbounded();
        let handle = sink.handle();
        let mut rec = Recorder::new(Box::new(sink));
        let mut rng = Prng::new(0);
        let bs = batches_traced(&imgs, &labels, 4, Some(&mut rng), &mut rec, 3);
        assert_eq!(bs.len(), 2);
        assert_eq!(
            handle.events(),
            vec![Event::Epoch {
                epoch: 3,
                samples: 6,
                batches: 2,
                shuffled: true,
            }]
        );
        // eval-mode loads report shuffled: false
        let bs2 = batches_traced(&imgs, &labels, 6, None, &mut rec, 4);
        assert_eq!(bs2[0].labels, labels);
        match handle.events().last().unwrap() {
            Event::Epoch { shuffled, .. } => assert!(!shuffled),
            other => panic!("unexpected {other:?}"),
        }
    }
}

/// Random crop with zero padding (the classic CIFAR augmentation): pads
/// each image by `pad` pixels and crops back to the original size at a
/// random offset, independently per sample.
///
/// # Panics
///
/// Panics if `batch` is not 4-D.
pub fn augment_random_crop(batch: &Tensor, pad: usize, rng: &mut Prng) -> Tensor {
    assert_eq!(batch.ndim(), 4, "random crop expects [B,C,H,W]");
    if pad == 0 {
        return batch.clone();
    }
    let padded = rex_tensor::ops::pad2d(batch, pad).expect("4-D checked above");
    let (b, c, h, w) = (
        batch.shape()[0],
        batch.shape()[1],
        batch.shape()[2],
        batch.shape()[3],
    );
    let (ph, pw) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(batch.shape());
    for i in 0..b {
        let oy = rng.below(2 * pad + 1);
        let ox = rng.below(2 * pad + 1);
        for ch in 0..c {
            for y in 0..h {
                let src = ((i * c + ch) * ph + y + oy) * pw + ox;
                let dst = ((i * c + ch) * h + y) * w;
                let row = padded.data()[src..src + w].to_vec();
                out.data_mut()[dst..dst + w].copy_from_slice(&row);
            }
        }
    }
    out
}

#[cfg(test)]
mod crop_tests {
    use super::*;

    #[test]
    fn zero_pad_is_identity() {
        let img = Tensor::arange(0.0, 1.0, 16).reshape(&[1, 1, 4, 4]).unwrap();
        let mut rng = Prng::new(0);
        assert_eq!(augment_random_crop(&img, 0, &mut rng), img);
    }

    #[test]
    fn crop_preserves_shape_and_is_shifted_content() {
        let img = Tensor::ones(&[2, 3, 4, 4]);
        let mut rng = Prng::new(1);
        let out = augment_random_crop(&img, 2, &mut rng);
        assert_eq!(out.shape(), img.shape());
        // crops of an all-ones image contain only zeros (padding) and ones
        assert!(out.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn center_content_survives_small_pad() {
        // with pad 1 the central 2x2 of a 4x4 image is always retained
        let mut img = Tensor::zeros(&[1, 1, 4, 4]);
        img.set(&[0, 0, 1, 1], 5.0);
        img.set(&[0, 0, 2, 2], 7.0);
        let mut rng = Prng::new(2);
        for _ in 0..10 {
            let out = augment_random_crop(&img, 1, &mut rng);
            let has5 = out.data().contains(&5.0);
            let has7 = out.data().contains(&7.0);
            assert!(has5 && has7, "central pixels must survive a 1-px crop");
        }
    }
}
