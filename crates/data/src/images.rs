//! Class-conditional procedural image generators.
//!
//! Each class is defined by a random *prototype*: a mixture of oriented
//! sinusoidal gratings plus a colored blob, all drawn from a class-specific
//! RNG stream. A sample is its class prototype under a random translation
//! and contrast jitter plus pixel noise. The result is learnable by a small
//! CNN yet far from saturating instantly — learning-rate schedules matter,
//! which is the property the REX experiments need.

use rex_tensor::{Prng, Tensor};

use crate::ClassificationDataset;

/// Parameters of a synthetic image-classification dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageSpec {
    /// Image channels (3 for the CIFAR/STL/ImageNet analogues).
    pub channels: usize,
    /// Square image side length.
    pub size: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Std-dev of additive pixel noise.
    pub noise: f32,
    /// Maximum translation jitter (pixels, each direction).
    pub max_shift: usize,
}

impl ImageSpec {
    /// Generates the dataset for this spec with the given seed.
    pub fn generate(&self, seed: u64) -> ClassificationDataset {
        let mut master = Prng::new(seed);
        let prototypes: Vec<Vec<f32>> = (0..self.num_classes as u64)
            .map(|c| self.prototype(&mut Prng::new(seed ^ (0xC1A5_5000 + c))))
            .collect();

        let gen_split = |per_class: usize, rng: &mut Prng| {
            let n = per_class * self.num_classes;
            let pix = self.channels * self.size * self.size;
            let mut images = Vec::with_capacity(n * pix);
            let mut labels = Vec::with_capacity(n);
            for (c, proto) in prototypes.iter().enumerate() {
                for _ in 0..per_class {
                    images.extend(self.render_sample(proto, rng));
                    labels.push(c);
                }
            }
            // interleave classes so un-shuffled batches aren't degenerate
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            let mut shuffled = Vec::with_capacity(n * pix);
            let mut shuffled_labels = Vec::with_capacity(n);
            for &i in &order {
                shuffled.extend_from_slice(&images[i * pix..(i + 1) * pix]);
                shuffled_labels.push(labels[i]);
            }
            (
                Tensor::from_vec(shuffled, &[n, self.channels, self.size, self.size])
                    .expect("generator geometry is consistent"),
                shuffled_labels,
            )
        };

        let mut train_rng = master.fork();
        let mut test_rng = master.fork();
        let (train_images, train_labels) = gen_split(self.train_per_class, &mut train_rng);
        let (test_images, test_labels) = gen_split(self.test_per_class, &mut test_rng);
        ClassificationDataset::new(
            train_images,
            train_labels,
            test_images,
            test_labels,
            self.num_classes,
        )
    }

    /// Class prototype: sum of 3 oriented gratings + a soft blob, per
    /// channel, values roughly in [-1, 1].
    fn prototype(&self, rng: &mut Prng) -> Vec<f32> {
        let s = self.size;
        let mut img = vec![0.0f32; self.channels * s * s];
        for ch in 0..self.channels {
            // gratings
            for _ in 0..3 {
                let fx = rng.uniform_in(0.3, 1.6) * if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
                let fy = rng.uniform_in(0.3, 1.6) * if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
                let phase = rng.uniform_in(0.0, std::f32::consts::TAU);
                let amp = rng.uniform_in(0.2, 0.5);
                for y in 0..s {
                    for x in 0..s {
                        img[(ch * s + y) * s + x] +=
                            amp * (fx * x as f32 + fy * y as f32 + phase).sin();
                    }
                }
            }
            // blob
            let cx = rng.uniform_in(0.2, 0.8) * s as f32;
            let cy = rng.uniform_in(0.2, 0.8) * s as f32;
            let sigma = rng.uniform_in(0.1, 0.25) * s as f32;
            let amp = rng.uniform_in(-0.8, 0.8);
            for y in 0..s {
                for x in 0..s {
                    let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                    img[(ch * s + y) * s + x] += amp * (-d2 / (2.0 * sigma * sigma)).exp();
                }
            }
        }
        img
    }

    /// One sample: prototype shifted by a random offset (wrap-around),
    /// contrast-jittered, plus Gaussian noise.
    fn render_sample(&self, proto: &[f32], rng: &mut Prng) -> Vec<f32> {
        let s = self.size;
        let shift = self.max_shift as isize;
        let dx = if shift > 0 {
            rng.below((2 * shift + 1) as usize) as isize - shift
        } else {
            0
        };
        let dy = if shift > 0 {
            rng.below((2 * shift + 1) as usize) as isize - shift
        } else {
            0
        };
        let contrast = rng.uniform_in(0.8, 1.2);
        let mut out = vec![0.0f32; proto.len()];
        for ch in 0..self.channels {
            for y in 0..s {
                for x in 0..s {
                    let sy = (y as isize + dy).rem_euclid(s as isize) as usize;
                    let sx = (x as isize + dx).rem_euclid(s as isize) as usize;
                    out[(ch * s + y) * s + x] =
                        contrast * proto[(ch * s + sy) * s + sx] + self.noise * rng.normal();
                }
            }
        }
        out
    }
}

/// CIFAR-10 analogue: 10 classes of 3×12×12 images.
pub fn synth_cifar10(
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> ClassificationDataset {
    ImageSpec {
        channels: 3,
        size: 12,
        num_classes: 10,
        train_per_class,
        test_per_class,
        noise: 0.8,
        max_shift: 3,
    }
    .generate(seed)
}

/// CIFAR-100 analogue: many-class variant (class count configurable since
/// the full 100 classes is prohibitively slow on one CPU core; DESIGN.md
/// documents the reduction).
pub fn synth_cifar100(
    num_classes: usize,
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> ClassificationDataset {
    ImageSpec {
        channels: 3,
        size: 12,
        num_classes,
        train_per_class,
        test_per_class,
        noise: 0.5,
        max_shift: 2,
    }
    .generate(seed)
}

/// STL-10 analogue: higher resolution (3×16×16), few samples per class —
/// preserving the low-count/high-res character of STL-10.
pub fn synth_stl10(
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> ClassificationDataset {
    ImageSpec {
        channels: 3,
        size: 16,
        num_classes: 10,
        train_per_class,
        test_per_class,
        noise: 0.65,
        max_shift: 3,
    }
    .generate(seed)
}

/// ImageNet analogue: more classes, higher resolution, larger train set.
pub fn synth_imagenet(
    num_classes: usize,
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> ClassificationDataset {
    ImageSpec {
        channels: 3,
        size: 16,
        num_classes,
        train_per_class,
        test_per_class,
        noise: 0.75,
        max_shift: 3,
    }
    .generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let d = synth_cifar10(5, 2, 0);
        assert_eq!(d.train_images.shape(), &[50, 3, 12, 12]);
        assert_eq!(d.test_images.shape(), &[20, 3, 12, 12]);
        assert_eq!(d.num_classes, 10);
        assert_eq!(d.train_len(), 50);
        assert_eq!(d.test_len(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synth_cifar10(3, 1, 7);
        let b = synth_cifar10(3, 1, 7);
        assert_eq!(a.train_images, b.train_images);
        assert_eq!(a.train_labels, b.train_labels);
        let c = synth_cifar10(3, 1, 8);
        assert_ne!(a.train_images, c.train_images);
    }

    #[test]
    fn all_classes_present_in_both_splits() {
        let d = synth_cifar10(4, 2, 1);
        for c in 0..10 {
            assert!(d.train_labels.contains(&c));
            assert!(d.test_labels.contains(&c));
        }
    }

    #[test]
    fn labels_shuffled_not_sorted() {
        let d = synth_cifar10(10, 2, 2);
        let sorted: Vec<usize> = {
            let mut l = d.train_labels.clone();
            l.sort_unstable();
            l
        };
        assert_ne!(d.train_labels, sorted, "labels should be interleaved");
    }

    #[test]
    fn same_class_samples_correlate_more_than_cross_class() {
        // Nearest-prototype structure: two samples of one class should be
        // closer on average than samples of different classes. Tested at
        // moderate noise so the structural property isn't swamped by the
        // deliberately-hard default noise level.
        let d = ImageSpec {
            channels: 3,
            size: 12,
            num_classes: 10,
            train_per_class: 6,
            test_per_class: 1,
            noise: 0.3,
            max_shift: 2,
        }
        .generate(3);
        let pix: usize = d.image_shape().iter().product();
        let img = |i: usize| &d.train_images.data()[i * pix..(i + 1) * pix];
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum() };
        let mut same = Vec::new();
        let mut cross = Vec::new();
        for i in 0..30 {
            for j in (i + 1)..30 {
                let dd = dist(img(i), img(j));
                if d.train_labels[i] == d.train_labels[j] {
                    same.push(dd);
                } else {
                    cross.push(dd);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&same) < mean(&cross),
            "intra-class distance {} should be below inter-class {}",
            mean(&same),
            mean(&cross)
        );
    }

    #[test]
    fn stl_analogue_is_higher_res() {
        let d = synth_stl10(2, 1, 0);
        assert_eq!(d.image_shape(), &[3, 16, 16]);
    }

    #[test]
    fn cifar100_analogue_many_classes() {
        let d = synth_cifar100(20, 2, 1, 0);
        assert_eq!(d.num_classes, 20);
        assert_eq!(d.train_len(), 40);
    }
}
