use std::cell::{Ref, RefCell, RefMut};
use std::fmt;
use std::rc::Rc;

use rex_tensor::Tensor;

/// A trainable parameter: a named tensor with an accumulated gradient.
///
/// `Param` is a cheap shared handle (`Rc<RefCell<…>>`): the model, the
/// graph's parameter leaves, and the optimizer all hold clones of the same
/// handle. Gradients accumulate across [`crate::Graph::backward`] calls
/// until [`Param::zero_grad`] is invoked (normally by the optimizer).
///
/// `Param` is intentionally **not** `Send`: each training trial owns its
/// model on a single thread; parallelism in the REX experiment harness is
/// per-trial, with each thread constructing its own model.
#[derive(Clone)]
pub struct Param {
    inner: Rc<RefCell<ParamInner>>,
}

struct ParamInner {
    name: String,
    value: Tensor,
    grad: Tensor,
}

impl Param {
    /// Creates a parameter with the given diagnostic name and initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros_like(&value);
        Param {
            inner: Rc::new(RefCell::new(ParamInner {
                name: name.into(),
                value,
                grad,
            })),
        }
    }

    /// The parameter's diagnostic name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Borrow of the current value.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is already mutably borrowed.
    pub fn value(&self) -> Ref<'_, Tensor> {
        Ref::map(self.inner.borrow(), |p| &p.value)
    }

    /// Mutable borrow of the current value (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if the parameter is already borrowed.
    pub fn value_mut(&self) -> RefMut<'_, Tensor> {
        RefMut::map(self.inner.borrow_mut(), |p| &mut p.value)
    }

    /// A clone of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.inner.borrow().grad.clone()
    }

    /// Mutable borrow of the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is already borrowed.
    pub fn grad_mut(&self) -> RefMut<'_, Tensor> {
        RefMut::map(self.inner.borrow_mut(), |p| &mut p.grad)
    }

    /// Adds `delta` into the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if `delta`'s shape differs from the parameter's.
    pub fn accumulate_grad(&self, delta: &Tensor) {
        self.inner.borrow_mut().grad.axpy(1.0, delta);
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        let mut p = self.inner.borrow_mut();
        p.grad = Tensor::zeros_like(&p.value);
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.inner.borrow().value.len()
    }

    /// Whether the parameter is empty (never true for real layers).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether two handles refer to the same underlying parameter.
    pub fn same_as(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.inner.borrow();
        write!(f, "Param({:?}, shape {:?})", p.name, p.value.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_starts_zero() {
        let p = Param::new("w", Tensor::ones(&[3]));
        assert_eq!(p.grad().data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn accumulate_and_zero() {
        let p = Param::new("w", Tensor::ones(&[2]));
        p.accumulate_grad(&Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        p.accumulate_grad(&Tensor::from_vec(vec![0.5, 0.5], &[2]).unwrap());
        assert_eq!(p.grad().data(), &[1.5, 2.5]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn clones_share_storage() {
        let p = Param::new("w", Tensor::zeros(&[1]));
        let q = p.clone();
        q.value_mut().data_mut()[0] = 5.0;
        assert_eq!(p.value().data(), &[5.0]);
        assert!(p.same_as(&q));
        let r = Param::new("w", Tensor::zeros(&[1]));
        assert!(!p.same_as(&r));
    }

    #[test]
    fn debug_shows_name_and_shape() {
        let p = Param::new("conv1.weight", Tensor::zeros(&[4, 3, 3, 3]));
        let s = format!("{p:?}");
        assert!(s.contains("conv1.weight"));
        assert!(s.contains("[4, 3, 3, 3]"));
    }
}
