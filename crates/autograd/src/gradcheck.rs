//! Numeric gradient checking.
//!
//! [`check_gradients`] compares the analytic gradients produced by
//! [`Graph::backward`](crate::Graph::backward) against central finite
//! differences of the loss. It is the correctness oracle used throughout the
//! test suites of `rex-autograd` and `rex-nn`.

use rex_tensor::TensorError;

use crate::{Graph, NodeId, Param};

/// Result details of one mismatching coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct GradMismatch {
    /// Which parameter disagreed.
    pub param: String,
    /// Flat element index within the parameter.
    pub index: usize,
    /// Analytic gradient value.
    pub analytic: f32,
    /// Finite-difference estimate.
    pub numeric: f32,
}

impl std::fmt::Display for GradMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gradient mismatch in {}[{}]: analytic {} vs numeric {}",
            self.param, self.index, self.analytic, self.numeric
        )
    }
}

impl std::error::Error for GradMismatch {}

/// Verifies analytic gradients against central finite differences.
///
/// `build` must construct the forward pass on the given graph — registering
/// each parameter itself via [`Graph::param`] — and return the scalar loss
/// node. It is invoked `1 + 2·Σ len(pᵢ)` times, so keep the model tiny.
///
/// `h` is the finite-difference step (1e-2 works well in f32) and
/// `tol` the allowed absolute-relative error
/// (`|a − n| ≤ tol · (1 + |n|)`).
///
/// # Errors
///
/// Returns the first [`GradMismatch`] found, or propagates a
/// [`TensorError`] from the forward/backward pass (boxed).
pub fn check_gradients(
    params: &[Param],
    mut build: impl FnMut(&mut Graph) -> Result<NodeId, TensorError>,
    h: f32,
    tol: f32,
) -> Result<(), Box<dyn std::error::Error>> {
    // Analytic pass.
    for p in params {
        p.zero_grad();
    }
    let mut g = Graph::new(true);
    let loss = build(&mut g)?;
    g.backward(loss)?;
    let analytic: Vec<_> = params.iter().map(|p| p.grad()).collect();

    // Numeric pass.
    for (pi, p) in params.iter().enumerate() {
        for i in 0..p.len() {
            let orig = p.value().data()[i];
            p.value_mut().data_mut()[i] = orig + h;
            let mut gp = Graph::new(true);
            let lp = build(&mut gp)?;
            let fp = gp.value(lp).item();

            p.value_mut().data_mut()[i] = orig - h;
            let mut gm = Graph::new(true);
            let lm = build(&mut gm)?;
            let fm = gm.value(lm).item();

            p.value_mut().data_mut()[i] = orig;
            let numeric = (fp - fm) / (2.0 * h);
            let a = analytic[pi].data()[i];
            if (a - numeric).abs() > tol * (1.0 + numeric.abs()) {
                return Err(Box::new(GradMismatch {
                    param: p.name(),
                    index: i,
                    analytic: a,
                    numeric,
                }));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_tensor::{Prng, Tensor};

    #[test]
    fn passes_for_correct_gradients() {
        let mut rng = Prng::new(1);
        let w = Param::new("w", rng.normal_tensor(&[3, 2], 0.0, 1.0));
        let x = rng.normal_tensor(&[4, 3], 0.0, 1.0);
        check_gradients(
            std::slice::from_ref(&w),
            |g| {
                let wn = g.param(&w);
                let xn = g.constant(x.clone());
                let y = g.matmul(xn, wn)?;
                let t = g.tanh(y);
                let sq = g.mul(t, t)?;
                g.mean_all(sq)
            },
            1e-2,
            1e-2,
        )
        .unwrap();
    }

    #[test]
    fn catches_wrong_gradients() {
        // A "loss" whose analytic gradient we sabotage by accumulating an
        // extra bogus term before checking.
        let w = Param::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let result = check_gradients(
            std::slice::from_ref(&w),
            |g| {
                let wn = g.param(&w);
                // loss = sum(w) but we poison the gradient by an extra
                // accumulation on the side (emulating a buggy backward).
                w.accumulate_grad(&Tensor::ones(&[2]));
                g.sum_all(wn)
            },
            1e-2,
            1e-3,
        );
        assert!(result.is_err());
    }

    #[test]
    fn covers_softmax_cross_entropy_path() {
        let mut rng = Prng::new(7);
        let w = Param::new("w", rng.normal_tensor(&[5, 3], 0.0, 0.5));
        let x = rng.normal_tensor(&[6, 5], 0.0, 1.0);
        let targets = vec![0usize, 1, 2, 0, 1, 2];
        check_gradients(
            std::slice::from_ref(&w),
            |g| {
                let wn = g.param(&w);
                let xn = g.constant(x.clone());
                let logits = g.matmul(xn, wn)?;
                g.cross_entropy(logits, &targets)
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }
}
