use rex_tensor::conv::{
    conv2d_backward, conv2d_backward_no_bias, conv2d_forward, global_avgpool_backward,
    global_avgpool_forward, maxpool2d_backward, maxpool2d_forward, Conv2dSaved, Window,
};
use rex_tensor::ops;
use rex_tensor::ops::{matmul3, matmul3_nt, matmul3_tn, permute_0213, transpose_last2};
use rex_tensor::{Tensor, TensorError};

use crate::Param;

/// Identifier of a node in a [`Graph`] tape.
///
/// `NodeId`s are only meaningful for the graph that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// How a node's value was computed — the record replayed (in reverse) by
/// [`Graph::backward`]. Each variant stores whatever forward state its
/// backward pass needs.
enum Op {
    Constant,
    ParamLeaf(Param),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Div(NodeId, NodeId),
    MatMul(NodeId, NodeId),
    BatchMatMul(NodeId, NodeId),
    TransposeLast2(NodeId),
    Permute0213(NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId),
    Relu(NodeId),
    LeakyRelu(NodeId, f32),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Gelu(NodeId),
    Exp(NodeId),
    Ln(NodeId),
    Reshape(NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    SumAxis(NodeId, usize),
    Softmax(NodeId),
    LogSoftmax(NodeId),
    NllLoss {
        log_probs: NodeId,
        targets: Vec<usize>,
    },
    BceWithLogits {
        logits: NodeId,
        targets: Tensor,
    },
    Conv2d {
        input: NodeId,
        weight: NodeId,
        bias: Option<NodeId>,
        saved: Conv2dSaved,
    },
    MaxPool2d {
        input: NodeId,
        argmax: Vec<u32>,
        in_shape: Vec<usize>,
    },
    GlobalAvgPool {
        input: NodeId,
        in_shape: Vec<usize>,
    },
    BatchNorm {
        input: NodeId,
        gamma: NodeId,
        beta: NodeId,
        x_hat: Tensor,
        inv_std: Vec<f32>,
        /// true in training mode (batch statistics couple the gradient)
        coupled: bool,
    },
    LayerNorm {
        input: NodeId,
        gamma: NodeId,
        beta: NodeId,
        x_hat: Tensor,
        inv_std: Vec<f32>,
    },
    Embedding {
        weight: NodeId,
        indices: Vec<usize>,
    },
    SelectTime {
        input: NodeId,
        index: usize,
    },
}

struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// A reverse-mode autodiff tape.
///
/// Build a fresh `Graph` per forward pass, register parameters with
/// [`Graph::param`], chain ops, then call [`Graph::backward`] on the scalar
/// loss node. See the [crate docs](crate) for a worked example.
pub struct Graph {
    nodes: Vec<Node>,
    training: bool,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Graph({} nodes, training={})",
            self.nodes.len(),
            self.training
        )
    }
}

impl Graph {
    /// Creates an empty tape. `training` controls mode-dependent layers
    /// (dropout, batch-norm statistics) via [`Graph::training`].
    pub fn new(training: bool) -> Self {
        Graph {
            nodes: Vec::with_capacity(128),
            training,
        }
    }

    /// Whether this pass runs in training mode.
    pub fn training(&self) -> bool {
        self.training
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different graph.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> NodeId {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        NodeId(self.nodes.len() - 1)
    }

    fn rg(&self, id: NodeId) -> bool {
        self.nodes[id.0].requires_grad
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Registers a constant (no gradient flows into it).
    pub fn constant(&mut self, t: Tensor) -> NodeId {
        self.push(t, Op::Constant, false)
    }

    /// Registers a parameter leaf; `backward` will accumulate into
    /// [`Param::grad`].
    pub fn param(&mut self, p: &Param) -> NodeId {
        let value = p.value().clone();
        self.push(value, Op::ParamLeaf(p.clone()), true)
    }

    // ------------------------------------------------------------------
    // Elementwise / arithmetic
    // ------------------------------------------------------------------

    /// Broadcasting elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] on incompatible shapes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        let v = self.value(a).add(self.value(b))?;
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::Add(a, b), rg))
    }

    /// Broadcasting elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] on incompatible shapes.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        let v = self.value(a).sub(self.value(b))?;
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::Sub(a, b), rg))
    }

    /// Broadcasting elementwise product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] on incompatible shapes.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        let v = self.value(a).mul(self.value(b))?;
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::Mul(a, b), rg))
    }

    /// Broadcasting elementwise quotient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] on incompatible shapes.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        let v = self.value(a).div(self.value(b))?;
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::Div(a, b), rg))
    }

    /// Multiplies by a compile-time scalar.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.value(a).scale(s);
        let rg = self.rg(a);
        self.push(v, Op::Scale(a, s), rg)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.value(a).add_scalar(s);
        let rg = self.rg(a);
        self.push(v, Op::AddScalar(a), rg)
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = ops::relu(self.value(a));
        let rg = self.rg(a);
        self.push(v, Op::Relu(a), rg)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: NodeId, alpha: f32) -> NodeId {
        let v = ops::leaky_relu(self.value(a), alpha);
        let rg = self.rg(a);
        self.push(v, Op::LeakyRelu(a, alpha), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = ops::sigmoid(self.value(a));
        let rg = self.rg(a);
        self.push(v, Op::Sigmoid(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = ops::tanh(self.value(a));
        let rg = self.rg(a);
        self.push(v, Op::Tanh(a), rg)
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let v = ops::gelu(self.value(a));
        let rg = self.rg(a);
        self.push(v, Op::Gelu(a), rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::exp);
        let rg = self.rg(a);
        self.push(v, Op::Exp(a), rg)
    }

    /// Elementwise natural log, clamped below at `1e-12` for stability.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(1e-12).ln());
        let rg = self.rg(a);
        self.push(v, Op::Ln(a), rg)
    }

    // ------------------------------------------------------------------
    // Shape
    // ------------------------------------------------------------------

    /// Reshapes without changing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshape(&mut self, a: NodeId, shape: &[usize]) -> Result<NodeId, TensorError> {
        let v = self.value(a).reshape(shape)?;
        let rg = self.rg(a);
        Ok(self.push(v, Op::Reshape(a), rg))
    }

    /// Transposes the last two axes of a 3-D tensor (`[B,M,N] → [B,N,M]`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-3-D inputs.
    pub fn transpose_last2(&mut self, a: NodeId) -> Result<NodeId, TensorError> {
        let v = transpose_last2(self.value(a))?;
        let rg = self.rg(a);
        Ok(self.push(v, Op::TransposeLast2(a), rg))
    }

    /// Permutes a 4-D tensor's axes from `[B, T, H, D]` to `[B, H, T, D]`
    /// (the head split/merge step of multi-head attention). The permutation
    /// is its own inverse, so the same op is used in both directions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-4-D inputs.
    pub fn permute_0213(&mut self, a: NodeId) -> Result<NodeId, TensorError> {
        let v = permute_0213(self.value(a))?;
        let rg = self.rg(a);
        Ok(self.push(v, Op::Permute0213(a), rg))
    }

    /// Selects time step `index` from a `[B, T, D]` tensor, yielding
    /// `[B, D]` (CLS-token pooling in the transformer).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-3-D inputs or
    /// [`TensorError::AxisOutOfRange`] if `index ≥ T`.
    pub fn select_time(&mut self, a: NodeId, index: usize) -> Result<NodeId, TensorError> {
        let x = self.value(a);
        if x.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                expected: "3-D [B,T,D] tensor",
                got: x.shape().to_vec(),
            });
        }
        let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        if index >= t {
            return Err(TensorError::AxisOutOfRange {
                axis: index,
                ndim: t,
            });
        }
        let mut out = Vec::with_capacity(b * d);
        for s in 0..b {
            let base = (s * t + index) * d;
            out.extend_from_slice(&x.data()[base..base + d]);
        }
        let v = Tensor::from_vec(out, &[b, d])?;
        let rg = self.rg(a);
        Ok(self.push(v, Op::SelectTime { input: a, index }, rg))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum over all elements, producing a scalar node.
    ///
    /// # Errors
    ///
    /// Never fails in practice; `Result` kept for interface uniformity.
    pub fn sum_all(&mut self, a: NodeId) -> Result<NodeId, TensorError> {
        let v = Tensor::scalar(self.value(a).sum());
        let rg = self.rg(a);
        Ok(self.push(v, Op::SumAll(a), rg))
    }

    /// Mean over all elements, producing a scalar node.
    ///
    /// # Errors
    ///
    /// Never fails in practice; `Result` kept for interface uniformity.
    pub fn mean_all(&mut self, a: NodeId) -> Result<NodeId, TensorError> {
        let v = Tensor::scalar(self.value(a).mean());
        let rg = self.rg(a);
        Ok(self.push(v, Op::MeanAll(a), rg))
    }

    /// Sum along one axis (removing it).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for a bad axis.
    pub fn sum_axis(&mut self, a: NodeId, axis: usize) -> Result<NodeId, TensorError> {
        let v = self.value(a).sum_axis(axis)?;
        let rg = self.rg(a);
        Ok(self.push(v, Op::SumAxis(a, axis), rg))
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] on incompatible shapes.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        let v = self.value(a).matmul(self.value(b))?;
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::MatMul(a, b), rg))
    }

    /// Batched matrix product of two 3-D tensors (`[B,M,K] × [B,K,N]`),
    /// computed slice-in-place by the GEMM layer (no per-batch copies).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] on incompatible shapes.
    pub fn matmul3(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        let v = matmul3(self.value(a), self.value(b))?;
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::BatchMatMul(a, b), rg))
    }

    /// Batched matrix product (alias of [`Graph::matmul3`], kept for
    /// callers that predate the kernel rework).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] on incompatible shapes.
    pub fn batch_matmul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        self.matmul3(a, b)
    }

    // ------------------------------------------------------------------
    // Softmax & losses
    // ------------------------------------------------------------------

    /// Row-wise softmax of a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-2-D inputs.
    pub fn softmax(&mut self, a: NodeId) -> Result<NodeId, TensorError> {
        let v = ops::softmax_rows(self.value(a))?;
        let rg = self.rg(a);
        Ok(self.push(v, Op::Softmax(a), rg))
    }

    /// Row-wise log-softmax of a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-2-D inputs.
    pub fn log_softmax(&mut self, a: NodeId) -> Result<NodeId, TensorError> {
        let v = ops::log_softmax_rows(self.value(a))?;
        let rg = self.rg(a);
        Ok(self.push(v, Op::LogSoftmax(a), rg))
    }

    /// Negative log-likelihood of `targets` under row-wise log-probs
    /// (mean over the batch). Compose with [`Graph::log_softmax`] for
    /// cross-entropy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `log_probs` is not 2-D or
    /// the target count differs from the batch size.
    pub fn nll_loss(
        &mut self,
        log_probs: NodeId,
        targets: &[usize],
    ) -> Result<NodeId, TensorError> {
        let lp = self.value(log_probs);
        if lp.ndim() != 2 || lp.shape()[0] != targets.len() {
            return Err(TensorError::RankMismatch {
                expected: "2-D [N,C] log-probs with one target per row",
                got: lp.shape().to_vec(),
            });
        }
        let (n, c) = (lp.shape()[0], lp.shape()[1]);
        let mut acc = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            if t >= c {
                return Err(TensorError::AxisOutOfRange { axis: t, ndim: c });
            }
            acc -= lp.data()[i * c + t];
        }
        let v = Tensor::scalar(acc / n as f32);
        let rg = self.rg(log_probs);
        Ok(self.push(
            v,
            Op::NllLoss {
                log_probs,
                targets: targets.to_vec(),
            },
            rg,
        ))
    }

    /// Cross-entropy between logits and class indices (mean over batch).
    ///
    /// # Errors
    ///
    /// As [`Graph::log_softmax`] and [`Graph::nll_loss`].
    pub fn cross_entropy(
        &mut self,
        logits: NodeId,
        targets: &[usize],
    ) -> Result<NodeId, TensorError> {
        let lp = self.log_softmax(logits)?;
        self.nll_loss(lp, targets)
    }

    /// Numerically-stable binary cross-entropy with logits, averaged over
    /// all elements (the VAE reconstruction and detector objectness loss).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] if shapes differ.
    pub fn bce_with_logits(
        &mut self,
        logits: NodeId,
        targets: &Tensor,
    ) -> Result<NodeId, TensorError> {
        let x = self.value(logits);
        if x.shape() != targets.shape() {
            return Err(TensorError::BroadcastMismatch {
                lhs: x.shape().to_vec(),
                rhs: targets.shape().to_vec(),
            });
        }
        let mut acc = 0.0f32;
        for (&xi, &zi) in x.data().iter().zip(targets.data()) {
            acc += xi.max(0.0) - xi * zi + (-xi.abs()).exp().ln_1p();
        }
        let v = Tensor::scalar(acc / x.len() as f32);
        let rg = self.rg(logits);
        Ok(self.push(
            v,
            Op::BceWithLogits {
                logits,
                targets: targets.clone(),
            },
            rg,
        ))
    }

    // ------------------------------------------------------------------
    // Convolution / pooling
    // ------------------------------------------------------------------

    /// 2-D convolution (`input [N,C,H,W]`, `weight [O,C,K,K]`, optional
    /// bias `[O]`).
    ///
    /// # Errors
    ///
    /// Propagates geometry/shape errors from the tensor kernel.
    pub fn conv2d(
        &mut self,
        input: NodeId,
        weight: NodeId,
        bias: Option<NodeId>,
        win: Window,
    ) -> Result<NodeId, TensorError> {
        let b_tensor = bias.map(|b| self.value(b).clone());
        let (v, saved) = conv2d_forward(
            self.value(input),
            self.value(weight),
            b_tensor.as_ref(),
            win,
        )?;
        let rg = self.rg(input) || self.rg(weight) || bias.map(|b| self.rg(b)).unwrap_or(false);
        Ok(self.push(
            v,
            Op::Conv2d {
                input,
                weight,
                bias,
                saved,
            },
            rg,
        ))
    }

    /// Max pooling with the given window.
    ///
    /// # Errors
    ///
    /// Propagates geometry/shape errors from the tensor kernel.
    pub fn maxpool2d(&mut self, input: NodeId, win: Window) -> Result<NodeId, TensorError> {
        let in_shape = self.value(input).shape().to_vec();
        let (v, argmax) = maxpool2d_forward(self.value(input), win)?;
        let rg = self.rg(input);
        Ok(self.push(
            v,
            Op::MaxPool2d {
                input,
                argmax,
                in_shape,
            },
            rg,
        ))
    }

    /// Global average pooling `[N,C,H,W] → [N,C]`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the tensor kernel.
    pub fn global_avgpool(&mut self, input: NodeId) -> Result<NodeId, TensorError> {
        let in_shape = self.value(input).shape().to_vec();
        let v = global_avgpool_forward(self.value(input))?;
        let rg = self.rg(input);
        Ok(self.push(v, Op::GlobalAvgPool { input, in_shape }, rg))
    }

    // ------------------------------------------------------------------
    // Normalisation
    // ------------------------------------------------------------------

    /// Batch normalisation using **batch statistics** (training mode).
    ///
    /// `x` may be `[N,C]` or `[N,C,H,W]`; `gamma`/`beta` are `[C]`.
    /// Returns the output node plus the batch mean and (biased) variance
    /// per channel, which the layer uses to update its running statistics.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for unsupported ranks.
    #[allow(clippy::needless_range_loop)]
    pub fn batch_norm_train(
        &mut self,
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
    ) -> Result<(NodeId, Tensor, Tensor), TensorError> {
        let (n, c, l) = ncl(self.value(x))?;
        let xv = self.value(x).clone();
        let m = (n * l) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * l;
                for i in 0..l {
                    mean[ch] += xv.data()[base + i];
                }
            }
        }
        for v in &mut mean {
            *v /= m;
        }
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * l;
                for i in 0..l {
                    let d = xv.data()[base + i] - mean[ch];
                    var[ch] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= m;
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let (out, x_hat) = bn_affine(
            &xv,
            n,
            c,
            l,
            &mean,
            &inv_std,
            self.value(gamma),
            self.value(beta),
        );
        let rg = self.rg(x) || self.rg(gamma) || self.rg(beta);
        let id = self.push(
            out,
            Op::BatchNorm {
                input: x,
                gamma,
                beta,
                x_hat,
                inv_std,
                coupled: true,
            },
            rg,
        );
        Ok((
            id,
            Tensor::from_vec(mean, &[c])?,
            Tensor::from_vec(var, &[c])?,
        ))
    }

    /// Batch normalisation using **running statistics** (evaluation mode).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for unsupported ranks or
    /// mismatched statistics shapes.
    pub fn batch_norm_eval(
        &mut self,
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> Result<NodeId, TensorError> {
        let (n, c, l) = ncl(self.value(x))?;
        if running_mean.len() != c || running_var.len() != c {
            return Err(TensorError::RankMismatch {
                expected: "running stats of length C",
                got: running_mean.shape().to_vec(),
            });
        }
        let xv = self.value(x).clone();
        let inv_std: Vec<f32> = running_var
            .data()
            .iter()
            .map(|&v| 1.0 / (v + eps).sqrt())
            .collect();
        let (out, x_hat) = bn_affine(
            &xv,
            n,
            c,
            l,
            running_mean.data(),
            &inv_std,
            self.value(gamma),
            self.value(beta),
        );
        let rg = self.rg(x) || self.rg(gamma) || self.rg(beta);
        Ok(self.push(
            out,
            Op::BatchNorm {
                input: x,
                gamma,
                beta,
                x_hat,
                inv_std,
                coupled: false,
            },
            rg,
        ))
    }

    /// Layer normalisation over the last axis; `gamma`/`beta` are `[D]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 inputs or
    /// mismatched affine shapes.
    pub fn layer_norm(
        &mut self,
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
    ) -> Result<NodeId, TensorError> {
        let xv = self.value(x).clone();
        if xv.ndim() == 0 {
            return Err(TensorError::RankMismatch {
                expected: "tensor of rank >= 1",
                got: vec![],
            });
        }
        let d = *xv.shape().last().expect("rank >= 1");
        let rows = xv.len() / d;
        let g = self.value(gamma).clone();
        let b = self.value(beta).clone();
        if g.len() != d || b.len() != d {
            return Err(TensorError::RankMismatch {
                expected: "gamma/beta of length D (last axis)",
                got: g.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; xv.len()];
        let mut x_hat = vec![0.0f32; xv.len()];
        let mut inv_std = vec![0.0f32; rows];
        let be = rex_tensor::backend::active();
        for r in 0..rows {
            let row = &xv.data()[r * d..(r + 1) * d];
            let (mean, var) = be.mean_var_row(row);
            let istd = 1.0 / (var + eps).sqrt();
            inv_std[r] = istd;
            for i in 0..d {
                let xh = (row[i] - mean) * istd;
                x_hat[r * d + i] = xh;
                out[r * d + i] = g.data()[i] * xh + b.data()[i];
            }
        }
        let rg = self.rg(x) || self.rg(gamma) || self.rg(beta);
        let value = Tensor::from_vec(out, xv.shape())?;
        let x_hat = Tensor::from_vec(x_hat, xv.shape())?;
        Ok(self.push(
            value,
            Op::LayerNorm {
                input: x,
                gamma,
                beta,
                x_hat,
                inv_std,
            },
            rg,
        ))
    }

    /// Embedding lookup: gathers rows `indices` of `weight` (`[V, D]`),
    /// producing `[len(indices), D]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `weight` is not 2-D, or
    /// [`TensorError::AxisOutOfRange`] for an out-of-vocabulary index.
    pub fn embedding(&mut self, weight: NodeId, indices: &[usize]) -> Result<NodeId, TensorError> {
        let w = self.value(weight);
        if w.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: "2-D [V,D] embedding matrix",
                got: w.shape().to_vec(),
            });
        }
        let v = w.shape()[0];
        for &i in indices {
            if i >= v {
                return Err(TensorError::AxisOutOfRange { axis: i, ndim: v });
            }
        }
        let out = w.gather_rows(indices);
        let rg = self.rg(weight);
        Ok(self.push(
            out,
            Op::Embedding {
                weight,
                indices: indices.to_vec(),
            },
            rg,
        ))
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Reverse-mode sweep from the scalar `loss` node; accumulates
    /// parameter gradients into their [`Param`] handles.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `loss` is not a scalar, or
    /// propagates shape errors from backward kernels (which indicate a bug
    /// rather than a user error).
    pub fn backward(&mut self, loss: NodeId) -> Result<(), TensorError> {
        if self.value(loss).len() != 1 {
            return Err(TensorError::RankMismatch {
                expected: "scalar loss node",
                got: self.value(loss).shape().to_vec(),
            });
        }
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[loss.0] = Some(Tensor::full(self.value(loss).shape(), 1.0));

        for idx in (0..=loss.0).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            self.backprop_node(idx, &g, &mut grads)?;
            // Param accumulation happens in backprop_node for leaves.
            if let Op::ParamLeaf(p) = &self.nodes[idx].op {
                p.accumulate_grad(&g);
            }
        }
        Ok(())
    }

    /// Adds `delta` into the pending gradient of node `target`.
    fn accum(grads: &mut [Option<Tensor>], target: NodeId, delta: Tensor) {
        match &mut grads[target.0] {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn backprop_node(
        &self,
        idx: usize,
        g: &Tensor,
        grads: &mut [Option<Tensor>],
    ) -> Result<(), TensorError> {
        let node = &self.nodes[idx];
        match &node.op {
            Op::Constant | Op::ParamLeaf(_) => {}
            Op::Add(a, b) => {
                if self.rg(*a) {
                    Self::accum(grads, *a, g.reduce_to_shape(self.value(*a).shape())?);
                }
                if self.rg(*b) {
                    Self::accum(grads, *b, g.reduce_to_shape(self.value(*b).shape())?);
                }
            }
            Op::Sub(a, b) => {
                if self.rg(*a) {
                    Self::accum(grads, *a, g.reduce_to_shape(self.value(*a).shape())?);
                }
                if self.rg(*b) {
                    Self::accum(
                        grads,
                        *b,
                        g.scale(-1.0).reduce_to_shape(self.value(*b).shape())?,
                    );
                }
            }
            Op::Mul(a, b) => {
                if self.rg(*a) {
                    let da = g.mul(self.value(*b))?;
                    Self::accum(grads, *a, da.reduce_to_shape(self.value(*a).shape())?);
                }
                if self.rg(*b) {
                    let db = g.mul(self.value(*a))?;
                    Self::accum(grads, *b, db.reduce_to_shape(self.value(*b).shape())?);
                }
            }
            Op::Div(a, b) => {
                let bv = self.value(*b);
                if self.rg(*a) {
                    let da = g.div(bv)?;
                    Self::accum(grads, *a, da.reduce_to_shape(self.value(*a).shape())?);
                }
                if self.rg(*b) {
                    // d/db (a/b) = -a / b^2
                    let av = self.value(*a);
                    let db = g.mul(av)?.div(&bv.mul(bv)?)?.scale(-1.0);
                    Self::accum(grads, *b, db.reduce_to_shape(bv.shape())?);
                }
            }
            Op::MatMul(a, b) => {
                if self.rg(*a) {
                    Self::accum(grads, *a, g.matmul_nt(self.value(*b))?);
                }
                if self.rg(*b) {
                    Self::accum(grads, *b, self.value(*a).matmul_tn(g)?);
                }
            }
            Op::BatchMatMul(a, b) => {
                let av = self.value(*a);
                let bv = self.value(*b);
                if self.rg(*a) {
                    Self::accum(grads, *a, matmul3_nt(g, bv)?);
                }
                if self.rg(*b) {
                    Self::accum(grads, *b, matmul3_tn(av, g)?);
                }
            }
            Op::TransposeLast2(a) => {
                Self::accum(grads, *a, transpose_last2(g)?);
            }
            Op::Permute0213(a) => {
                Self::accum(grads, *a, permute_0213(g)?);
            }
            Op::Scale(a, s) => {
                Self::accum(grads, *a, g.scale(*s));
            }
            Op::AddScalar(a) => {
                Self::accum(grads, *a, g.clone());
            }
            Op::Relu(a) => {
                let da = self
                    .value(*a)
                    .zip_map(g, |x, gi| if x > 0.0 { gi } else { 0.0 })?;
                Self::accum(grads, *a, da);
            }
            Op::LeakyRelu(a, alpha) => {
                let alpha = *alpha;
                let da = self
                    .value(*a)
                    .zip_map(g, |x, gi| if x >= 0.0 { gi } else { alpha * gi })?;
                Self::accum(grads, *a, da);
            }
            Op::Sigmoid(a) => {
                // use the forward value: s' = s(1-s)
                let da = node.value.zip_map(g, |s, gi| gi * s * (1.0 - s))?;
                Self::accum(grads, *a, da);
            }
            Op::Tanh(a) => {
                let da = node.value.zip_map(g, |t, gi| gi * (1.0 - t * t))?;
                Self::accum(grads, *a, da);
            }
            Op::Gelu(a) => {
                let da = self
                    .value(*a)
                    .zip_map(g, |x, gi| gi * ops::gelu_grad_scalar(x))?;
                Self::accum(grads, *a, da);
            }
            Op::Exp(a) => {
                let da = node.value.zip_map(g, |e, gi| gi * e)?;
                Self::accum(grads, *a, da);
            }
            Op::Ln(a) => {
                let da = self.value(*a).zip_map(g, |x, gi| gi / x.max(1e-12))?;
                Self::accum(grads, *a, da);
            }
            Op::Reshape(a) => {
                Self::accum(grads, *a, g.reshape(self.value(*a).shape())?);
            }
            Op::SumAll(a) => {
                let da = Tensor::full(self.value(*a).shape(), g.item());
                Self::accum(grads, *a, da);
            }
            Op::MeanAll(a) => {
                let len = self.value(*a).len() as f32;
                let da = Tensor::full(self.value(*a).shape(), g.item() / len);
                Self::accum(grads, *a, da);
            }
            Op::SumAxis(a, axis) => {
                let in_shape = self.value(*a).shape().to_vec();
                let outer: usize = in_shape[..*axis].iter().product();
                let mid = in_shape[*axis];
                let inner: usize = in_shape[*axis + 1..].iter().product();
                let mut da = Tensor::zeros(&in_shape);
                for o in 0..outer {
                    for m in 0..mid {
                        let base = (o * mid + m) * inner;
                        for i in 0..inner {
                            da.data_mut()[base + i] = g.data()[o * inner + i];
                        }
                    }
                }
                Self::accum(grads, *a, da);
            }
            Op::Softmax(a) => {
                // dx = s * (g - sum(g * s) per row)
                let s = &node.value;
                let (r, c) = (s.shape()[0], s.shape()[1]);
                let mut da = vec![0.0f32; r * c];
                for i in 0..r {
                    let srow = &s.data()[i * c..(i + 1) * c];
                    let grow = &g.data()[i * c..(i + 1) * c];
                    let dot: f32 = srow.iter().zip(grow).map(|(&si, &gi)| si * gi).sum();
                    for j in 0..c {
                        da[i * c + j] = srow[j] * (grow[j] - dot);
                    }
                }
                Self::accum(grads, *a, Tensor::from_vec(da, s.shape())?);
            }
            Op::LogSoftmax(a) => {
                // dx = g - softmax(x) * sum(g) per row
                let ls = &node.value;
                let (r, c) = (ls.shape()[0], ls.shape()[1]);
                let mut da = vec![0.0f32; r * c];
                for i in 0..r {
                    let lrow = &ls.data()[i * c..(i + 1) * c];
                    let grow = &g.data()[i * c..(i + 1) * c];
                    let gsum: f32 = grow.iter().sum();
                    for j in 0..c {
                        da[i * c + j] = grow[j] - lrow[j].exp() * gsum;
                    }
                }
                Self::accum(grads, *a, Tensor::from_vec(da, ls.shape())?);
            }
            Op::NllLoss { log_probs, targets } => {
                let lp = self.value(*log_probs);
                let (n, c) = (lp.shape()[0], lp.shape()[1]);
                let scale = g.item() / n as f32;
                let mut da = Tensor::zeros(lp.shape());
                for (i, &t) in targets.iter().enumerate() {
                    da.data_mut()[i * c + t] = -scale;
                }
                Self::accum(grads, *log_probs, da);
            }
            Op::BceWithLogits { logits, targets } => {
                let x = self.value(*logits);
                let scale = g.item() / x.len() as f32;
                let da = x.zip_map(targets, |xi, zi| (ops::sigmoid_scalar(xi) - zi) * scale)?;
                Self::accum(grads, *logits, da);
            }
            Op::Conv2d {
                input,
                weight,
                bias,
                saved,
            } => {
                let wants_bias = bias.map(|b| self.rg(b)).unwrap_or(false);
                let (d_in, d_w, d_b) = if wants_bias {
                    conv2d_backward(g, self.value(*weight), saved)?
                } else {
                    conv2d_backward_no_bias(g, self.value(*weight), saved)?
                };
                if self.rg(*input) {
                    Self::accum(grads, *input, d_in);
                }
                if self.rg(*weight) {
                    Self::accum(grads, *weight, d_w);
                }
                if let Some(b) = bias {
                    if self.rg(*b) {
                        Self::accum(grads, *b, d_b);
                    }
                }
            }
            Op::MaxPool2d {
                input,
                argmax,
                in_shape,
            } => {
                Self::accum(grads, *input, maxpool2d_backward(g, argmax, in_shape)?);
            }
            Op::GlobalAvgPool { input, in_shape } => {
                Self::accum(grads, *input, global_avgpool_backward(g, in_shape)?);
            }
            Op::BatchNorm {
                input,
                gamma,
                beta,
                x_hat,
                inv_std,
                coupled,
            } => {
                let (n, c, l) = ncl(x_hat)?;
                let m = (n * l) as f32;
                let gam = self.value(*gamma);
                // per-channel reductions
                let mut sum_g = vec![0.0f32; c];
                let mut sum_gx = vec![0.0f32; c];
                for s in 0..n {
                    for ch in 0..c {
                        let base = (s * c + ch) * l;
                        for i in 0..l {
                            let gi = g.data()[base + i];
                            sum_g[ch] += gi;
                            sum_gx[ch] += gi * x_hat.data()[base + i];
                        }
                    }
                }
                if self.rg(*gamma) {
                    Self::accum(grads, *gamma, Tensor::from_vec(sum_gx.clone(), &[c])?);
                }
                if self.rg(*beta) {
                    Self::accum(grads, *beta, Tensor::from_vec(sum_g.clone(), &[c])?);
                }
                if self.rg(*input) {
                    let mut dx = Tensor::zeros(x_hat.shape());
                    for s in 0..n {
                        for ch in 0..c {
                            let base = (s * c + ch) * l;
                            let k = gam.data()[ch] * inv_std[ch];
                            for i in 0..l {
                                let gi = g.data()[base + i];
                                dx.data_mut()[base + i] = if *coupled {
                                    k * (gi
                                        - sum_g[ch] / m
                                        - x_hat.data()[base + i] * sum_gx[ch] / m)
                                } else {
                                    k * gi
                                };
                            }
                        }
                    }
                    Self::accum(grads, *input, dx);
                }
            }
            #[allow(clippy::needless_range_loop)]
            Op::LayerNorm {
                input,
                gamma,
                beta,
                x_hat,
                inv_std,
            } => {
                let d = *x_hat.shape().last().expect("rank >= 1");
                let rows = x_hat.len() / d;
                let gam = self.value(*gamma);
                if self.rg(*gamma) || self.rg(*beta) {
                    let mut dgamma = vec![0.0f32; d];
                    let mut dbeta = vec![0.0f32; d];
                    for r in 0..rows {
                        for i in 0..d {
                            let gi = g.data()[r * d + i];
                            dgamma[i] += gi * x_hat.data()[r * d + i];
                            dbeta[i] += gi;
                        }
                    }
                    if self.rg(*gamma) {
                        Self::accum(grads, *gamma, Tensor::from_vec(dgamma, &[d])?);
                    }
                    if self.rg(*beta) {
                        Self::accum(grads, *beta, Tensor::from_vec(dbeta, &[d])?);
                    }
                }
                if self.rg(*input) {
                    let mut dx = Tensor::zeros(x_hat.shape());
                    for r in 0..rows {
                        let mut mean_gg = 0.0f32;
                        let mut mean_ggx = 0.0f32;
                        for i in 0..d {
                            let gg = g.data()[r * d + i] * gam.data()[i];
                            mean_gg += gg;
                            mean_ggx += gg * x_hat.data()[r * d + i];
                        }
                        mean_gg /= d as f32;
                        mean_ggx /= d as f32;
                        for i in 0..d {
                            let gg = g.data()[r * d + i] * gam.data()[i];
                            dx.data_mut()[r * d + i] =
                                inv_std[r] * (gg - mean_gg - x_hat.data()[r * d + i] * mean_ggx);
                        }
                    }
                    Self::accum(grads, *input, dx);
                }
            }
            Op::Embedding { weight, indices } => {
                let w = self.value(*weight);
                let d = w.shape()[1];
                let mut dw = Tensor::zeros(w.shape());
                for (row, &i) in indices.iter().enumerate() {
                    for j in 0..d {
                        dw.data_mut()[i * d + j] += g.data()[row * d + j];
                    }
                }
                Self::accum(grads, *weight, dw);
            }
            Op::SelectTime { input, index } => {
                let x = self.value(*input);
                let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
                let mut dx = Tensor::zeros(&[b, t, d]);
                for s in 0..b {
                    let dst = (s * t + index) * d;
                    let src = s * d;
                    dx.data_mut()[dst..dst + d].copy_from_slice(&g.data()[src..src + d]);
                }
                Self::accum(grads, *input, dx);
            }
        }
        Ok(())
    }
}

/// Interprets a tensor as `[N, C, L]` (with L = product of trailing dims);
/// supports `[N, C]` and `[N, C, H, W]`.
fn ncl(x: &Tensor) -> Result<(usize, usize, usize), TensorError> {
    match x.ndim() {
        2 => Ok((x.shape()[0], x.shape()[1], 1)),
        4 => Ok((x.shape()[0], x.shape()[1], x.shape()[2] * x.shape()[3])),
        _ => Err(TensorError::RankMismatch {
            expected: "2-D [N,C] or 4-D [N,C,H,W] tensor",
            got: x.shape().to_vec(),
        }),
    }
}

/// Shared affine step of batch norm: returns `(out, x_hat)`.
#[allow(clippy::too_many_arguments)]
fn bn_affine(
    x: &Tensor,
    n: usize,
    c: usize,
    l: usize,
    mean: &[f32],
    inv_std: &[f32],
    gamma: &Tensor,
    beta: &Tensor,
) -> (Tensor, Tensor) {
    let mut out = Tensor::zeros(x.shape());
    let mut x_hat = Tensor::zeros(x.shape());
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * l;
            let (mu, istd) = (mean[ch], inv_std[ch]);
            let (gm, bt) = (gamma.data()[ch], beta.data()[ch]);
            for i in 0..l {
                let xh = (x.data()[base + i] - mu) * istd;
                x_hat.data_mut()[base + i] = xh;
                out.data_mut()[base + i] = gm * xh + bt;
            }
        }
    }
    (out, x_hat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_tensor::ops::batch_slice;

    #[test]
    fn scalar_chain_gradients() {
        // loss = mean((w*x + 2)^2)
        let w = Param::new("w", Tensor::from_vec(vec![1.5], &[1]).unwrap());
        let mut g = Graph::new(true);
        let wn = g.param(&w);
        let x = g.constant(Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let wx = g.mul(wn, x).unwrap();
        let y = g.add_scalar(wx, 2.0);
        let sq = g.mul(y, y).unwrap();
        let loss = g.mean_all(sq).unwrap();
        assert!((g.value(loss).item() - 25.0).abs() < 1e-5);
        g.backward(loss).unwrap();
        // d/dw (wx+2)^2 = 2(wx+2)*x = 2*5*2 = 20
        assert!((w.grad().data()[0] - 20.0).abs() < 1e-4);
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let w = Param::new("w", Tensor::from_vec(vec![1.0], &[1]).unwrap());
        for _ in 0..2 {
            let mut g = Graph::new(true);
            let wn = g.param(&w);
            let loss = g.sum_all(wn).unwrap();
            g.backward(loss).unwrap();
        }
        assert_eq!(w.grad().data(), &[2.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let w = Param::new("w", Tensor::ones(&[2]));
        let mut g = Graph::new(true);
        let wn = g.param(&w);
        let c = g.constant(Tensor::ones(&[2]));
        let s = g.add(wn, c).unwrap();
        let loss = g.sum_all(s).unwrap();
        // must not panic even though constant has no grad slot
        g.backward(loss).unwrap();
        assert_eq!(w.grad().data(), &[1.0, 1.0]);
    }

    #[test]
    fn backward_rejects_non_scalar() {
        let w = Param::new("w", Tensor::ones(&[2]));
        let mut g = Graph::new(true);
        let wn = g.param(&w);
        assert!(g.backward(wn).is_err());
    }

    #[test]
    fn matmul_gradients_known() {
        // loss = sum(A @ B); dA = ones @ B^T, dB = A^T @ ones
        let a = Param::new(
            "a",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
        );
        let b = Param::new(
            "b",
            Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap(),
        );
        let mut g = Graph::new(true);
        let an = g.param(&a);
        let bn = g.param(&b);
        let c = g.matmul(an, bn).unwrap();
        let loss = g.sum_all(c).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(a.grad().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn cross_entropy_perfect_prediction_small_loss() {
        let logits = Param::new(
            "l",
            Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]).unwrap(),
        );
        let mut g = Graph::new(true);
        let ln = g.param(&logits);
        let loss = g.cross_entropy(ln, &[0, 1]).unwrap();
        assert!(g.value(loss).item() < 1e-4);
        g.backward(loss).unwrap();
        // gradient ~ (softmax - onehot)/N, near zero here
        assert!(logits.grad().data().iter().all(|v| v.abs() < 1e-4));
    }

    #[test]
    fn bce_with_logits_matches_closed_form() {
        let x = Param::new("x", Tensor::from_vec(vec![0.0, 2.0], &[2]).unwrap());
        let targets = Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap();
        let mut g = Graph::new(true);
        let xn = g.param(&x);
        let loss = g.bce_with_logits(xn, &targets).unwrap();
        // BCE(0, 1) = ln 2; BCE(2, 0) = 2 + ln(1+e^-2)
        let expected = (std::f32::consts::LN_2 + 2.0 + (1.0f32 + (-2.0f32).exp()).ln()) / 2.0;
        assert!((g.value(loss).item() - expected).abs() < 1e-5);
        g.backward(loss).unwrap();
        // d/dx = (sigmoid(x) - z)/2
        assert!((x.grad().data()[0] - (0.5 - 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn embedding_scatters_gradient() {
        let w = Param::new("emb", Tensor::arange(0.0, 1.0, 8).reshape(&[4, 2]).unwrap());
        let mut g = Graph::new(true);
        let wn = g.param(&w);
        let e = g.embedding(wn, &[1, 1, 3]).unwrap();
        assert_eq!(g.value(e).shape(), &[3, 2]);
        let loss = g.sum_all(e).unwrap();
        g.backward(loss).unwrap();
        let grad = w.grad();
        assert_eq!(grad.at(&[1, 0]), 2.0); // index 1 used twice
        assert_eq!(grad.at(&[3, 0]), 1.0);
        assert_eq!(grad.at(&[0, 0]), 0.0);
    }

    #[test]
    fn select_time_roundtrip() {
        let x = Param::new(
            "x",
            Tensor::arange(0.0, 1.0, 2 * 3 * 2)
                .reshape(&[2, 3, 2])
                .unwrap(),
        );
        let mut g = Graph::new(true);
        let xn = g.param(&x);
        let s = g.select_time(xn, 1).unwrap();
        assert_eq!(g.value(s).shape(), &[2, 2]);
        assert_eq!(g.value(s).data(), &[2.0, 3.0, 8.0, 9.0]);
        let loss = g.sum_all(s).unwrap();
        g.backward(loss).unwrap();
        let grad = x.grad();
        assert_eq!(grad.at(&[0, 1, 0]), 1.0);
        assert_eq!(grad.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn batch_matmul_matches_loop_of_matmuls() {
        let a = Tensor::arange(0.0, 1.0, 2 * 2 * 3)
            .reshape(&[2, 2, 3])
            .unwrap();
        let b = Tensor::arange(1.0, 1.0, 2 * 3 * 2)
            .reshape(&[2, 3, 2])
            .unwrap();
        let c = matmul3(&a, &b).unwrap();
        for s in 0..2 {
            let expect = batch_slice(&a, s, 2, 3)
                .matmul(&batch_slice(&b, s, 3, 2))
                .unwrap();
            assert_eq!(batch_slice(&c, s, 2, 2), expect);
        }
    }

    #[test]
    fn transpose_last2_involutive() {
        let x = Tensor::arange(0.0, 1.0, 2 * 3 * 4)
            .reshape(&[2, 3, 4])
            .unwrap();
        let t = transpose_last2(&x).unwrap();
        assert_eq!(t.shape(), &[2, 4, 3]);
        assert_eq!(transpose_last2(&t).unwrap(), x);
    }

    #[test]
    fn batch_norm_train_normalises() {
        let x = Param::new(
            "x",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[4, 2]).unwrap(),
        );
        let gamma = Param::new("g", Tensor::ones(&[2]));
        let beta = Param::new("b", Tensor::zeros(&[2]));
        let mut g = Graph::new(true);
        let xn = g.param(&x);
        let gn = g.param(&gamma);
        let bn = g.param(&beta);
        let (y, mean, var) = g.batch_norm_train(xn, gn, bn, 1e-5).unwrap();
        // channel 0 holds {1,3,5,7}: mean 4, var 5
        assert!((mean.data()[0] - 4.0).abs() < 1e-5);
        assert!((var.data()[0] - 5.0).abs() < 1e-4);
        // output per channel has ~zero mean, ~unit variance
        let yv = g.value(y);
        let col0: Vec<f32> = (0..4).map(|i| yv.at(&[i, 0])).collect();
        let m: f32 = col0.iter().sum::<f32>() / 4.0;
        assert!(m.abs() < 1e-5);
    }

    #[test]
    fn batch_norm_eval_is_pure_affine() {
        let x = Param::new("x", Tensor::from_vec(vec![2.0, 4.0], &[2, 1]).unwrap());
        let gamma = Param::new("g", Tensor::from_vec(vec![3.0], &[1]).unwrap());
        let beta = Param::new("b", Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let mean = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        let var = Tensor::from_vec(vec![4.0], &[1]).unwrap();
        let mut g = Graph::new(false);
        let xn = g.param(&x);
        let gn = g.param(&gamma);
        let bn = g.param(&beta);
        let y = g.batch_norm_eval(xn, gn, bn, &mean, &var, 0.0).unwrap();
        // y = 3*(x-2)/2 + 1
        assert!((g.value(y).data()[0] - 1.0).abs() < 1e-5);
        assert!((g.value(y).data()[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn layer_norm_normalises_rows() {
        let x = Param::new(
            "x",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
        );
        let gamma = Param::new("g", Tensor::ones(&[2]));
        let beta = Param::new("b", Tensor::zeros(&[2]));
        let mut g = Graph::new(true);
        let xn = g.param(&x);
        let gn = g.param(&gamma);
        let bn = g.param(&beta);
        let y = g.layer_norm(xn, gn, bn, 1e-5).unwrap();
        let yv = g.value(y);
        for r in 0..2 {
            let sum = yv.at(&[r, 0]) + yv.at(&[r, 1]);
            assert!(sum.abs() < 1e-4, "row {r} mean not ~0");
        }
    }
}
