//! # rex-autograd — tape-based reverse-mode automatic differentiation
//!
//! A minimal but complete autodiff engine over [`rex_tensor::Tensor`],
//! powering every model in the REX reproduction (CNNs, VAEs, detectors,
//! transformers).
//!
//! ## Design
//!
//! * A [`Graph`] is a **tape**: an append-only arena of nodes, each holding
//!   its forward value and a record of how it was produced. A fresh graph is
//!   built for every training step — there is no persistent graph, which
//!   keeps lifetimes trivial and memory bounded.
//! * **Parameters** live *outside* the graph as shared [`Param`] handles.
//!   Each step registers them as leaves; [`Graph::backward`] accumulates
//!   `d loss / d param` into [`Param::grad`], which the optimizer then
//!   consumes.
//! * Backward passes are written per-op against explicit saved state
//!   (im2col buffers, batch-norm statistics, argmax indices), so nothing is
//!   recomputed.
//!
//! ## Example
//!
//! ```
//! use rex_autograd::{Graph, Param};
//! use rex_tensor::Tensor;
//!
//! // y = sum((w * x)^2), dy/dw = 2 * w * x^2
//! let w = Param::new("w", Tensor::from_vec(vec![3.0], &[1])?);
//! let mut g = Graph::new(true);
//! let wn = g.param(&w);
//! let x = g.constant(Tensor::from_vec(vec![2.0], &[1])?);
//! let wx = g.mul(wn, x)?;
//! let sq = g.mul(wx, wx)?;
//! let loss = g.sum_all(sq)?;
//! g.backward(loss)?;
//! assert_eq!(w.grad().data(), &[24.0]); // 2 * 3 * 4
//! # Ok::<(), rex_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
mod graph;
mod param;

pub use graph::{Graph, NodeId};
pub use param::Param;
