//! Targeted gradient-check coverage for the composite paths the unit
//! suites exercise only indirectly:
//!
//! * multi-head attention — the longest op chain in the repo (three
//!   projections, head split/merge permutes, batched matmuls, scaled
//!   softmax, output projection);
//! * checkpoint round-trips — restored parameters must reproduce the
//!   original gradients exactly;
//! * conv2d backward through the im2col transform at the window
//!   geometries the models actually use beyond the "same" default:
//!   strided, 1×1, and over-padded.

use rex_autograd::gradcheck::check_gradients;
use rex_autograd::{Graph, NodeId, Param};
use rex_nn::{checkpoint, Module, MultiHeadAttention};
use rex_tensor::conv::Window;
use rex_tensor::{Prng, Tensor, TensorError};

fn param(rng: &mut Prng, name: &str, shape: &[usize], std: f32) -> Param {
    Param::new(name, rng.normal_tensor(shape, 0.0, std))
}

/// mean(tanh(x)²): bounded values keep finite differences accurate.
fn to_loss(g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
    let t = g.tanh(x);
    let sq = g.mul(t, t)?;
    g.mean_all(sq)
}

#[test]
fn gradcheck_multi_head_attention() {
    let mut rng = Prng::new(31);
    let attn = MultiHeadAttention::new("attn", 4, 2, &mut rng);
    let x = rng.normal_tensor(&[2, 3, 4], 0.0, 1.0);
    check_gradients(
        &attn.params(),
        |g| {
            let xn = g.constant(x.clone());
            let y = attn.forward(g, xn)?;
            to_loss(g, y)
        },
        1e-2,
        2e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_single_head_attention_degenerate_case() {
    // heads == dim: every head attends over scalars, exercising the
    // Dh == 1 corner of the split/merge reshapes
    let mut rng = Prng::new(32);
    let attn = MultiHeadAttention::new("attn1", 3, 3, &mut rng);
    let x = rng.normal_tensor(&[1, 4, 3], 0.0, 1.0);
    check_gradients(
        &attn.params(),
        |g| {
            let xn = g.constant(x.clone());
            let y = attn.forward(g, xn)?;
            to_loss(g, y)
        },
        1e-2,
        2e-2,
    )
    .unwrap();
}

#[test]
fn gradients_survive_checkpoint_roundtrip() {
    let mut rng = Prng::new(33);
    let attn = MultiHeadAttention::new("ck", 4, 2, &mut rng);
    let params = attn.params();
    let x = rng.normal_tensor(&[2, 3, 4], 0.0, 1.0);

    let grads_of = |ps: &[Param]| -> Vec<Vec<f32>> {
        for p in ps {
            p.zero_grad();
        }
        let mut g = Graph::new(true);
        let xn = g.constant(x.clone());
        let y = attn.forward(&mut g, xn).unwrap();
        let loss = to_loss(&mut g, y).unwrap();
        g.backward(loss).unwrap();
        ps.iter().map(|p| p.grad().data().to_vec()).collect()
    };

    let values_before: Vec<Vec<f32>> = params.iter().map(|p| p.value().data().to_vec()).collect();
    let grads_before = grads_of(&params);

    let path = std::env::temp_dir().join(format!("rex-gradcheck-{}.ckpt", std::process::id()));
    checkpoint::save(&path, &params).unwrap();
    // clobber every value, then restore from disk
    for p in &params {
        let shape = p.value().shape().to_vec();
        let junk = Tensor::from_vec(vec![0.123f32; p.len()], &shape).unwrap();
        *p.value_mut() = junk;
    }
    let report = checkpoint::load_into(&path, &params).unwrap();
    assert!(report.is_clean(), "{report:?}");
    std::fs::remove_file(&path).ok();

    // the f32 payload round-trips bit-exactly, so values AND the gradients
    // recomputed from them must be identical — and still pass gradcheck
    for (p, before) in params.iter().zip(&values_before) {
        assert_eq!(p.value().data(), &before[..], "{} values drifted", p.name());
    }
    assert_eq!(grads_of(&params), grads_before, "gradients drifted");
    check_gradients(
        &params,
        |g| {
            let xn = g.constant(x.clone());
            let y = attn.forward(g, xn)?;
            to_loss(g, y)
        },
        1e-2,
        2e-2,
    )
    .unwrap();
}

/// conv2d through im2col with a stride-2, no-padding window — output
/// windows do not tile the input, so col2im must scatter-add correctly.
#[test]
fn gradcheck_conv2d_strided_no_padding() {
    let mut rng = Prng::new(34);
    let x = param(&mut rng, "x", &[2, 2, 5, 5], 1.0);
    let w = param(&mut rng, "w", &[3, 2, 3, 3], 0.5);
    let b = param(&mut rng, "b", &[3], 0.5);
    let win = Window {
        kernel: 3,
        stride: 2,
        padding: 0,
    };
    check_gradients(
        &[x.clone(), w.clone(), b.clone()],
        |g| {
            let xn = g.param(&x);
            let wn = g.param(&w);
            let bn = g.param(&b);
            let c = g.conv2d(xn, wn, Some(bn), win)?;
            to_loss(g, c)
        },
        1e-2,
        3e-2,
    )
    .unwrap();
}

/// 1×1 convolution — im2col degenerates to a pure channel mixing matmul
/// (the ResNet shortcut-projection case), with no bias.
#[test]
fn gradcheck_conv2d_1x1_projection() {
    let mut rng = Prng::new(35);
    let x = param(&mut rng, "x", &[2, 3, 4, 4], 1.0);
    let w = param(&mut rng, "w", &[4, 3, 1, 1], 0.5);
    let win = Window {
        kernel: 1,
        stride: 1,
        padding: 0,
    };
    check_gradients(
        &[x.clone(), w.clone()],
        |g| {
            let xn = g.param(&x);
            let wn = g.param(&w);
            let c = g.conv2d(xn, wn, None, win)?;
            to_loss(g, c)
        },
        1e-2,
        3e-2,
    )
    .unwrap();
}

/// Padding larger than kernel/2 — every border window reaches into the
/// zero halo, so the col2im scatter must drop out-of-range taps instead
/// of wrapping.
#[test]
fn gradcheck_conv2d_overpadded_strided() {
    let mut rng = Prng::new(36);
    let x = param(&mut rng, "x", &[1, 2, 4, 4], 1.0);
    let w = param(&mut rng, "w", &[2, 2, 3, 3], 0.5);
    let b = param(&mut rng, "b", &[2], 0.5);
    let win = Window {
        kernel: 3,
        stride: 2,
        padding: 2,
    };
    check_gradients(
        &[x.clone(), w.clone(), b.clone()],
        |g| {
            let xn = g.param(&x);
            let wn = g.param(&w);
            let bn = g.param(&b);
            let c = g.conv2d(xn, wn, Some(bn), win)?;
            to_loss(g, c)
        },
        1e-2,
        3e-2,
    )
    .unwrap();
}
