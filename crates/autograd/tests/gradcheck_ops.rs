//! Exhaustive numeric gradient checks: every differentiable op in the tape
//! is validated against central finite differences.

use rex_autograd::gradcheck::check_gradients;
use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::conv::Window;
use rex_tensor::{Prng, Tensor, TensorError};

fn param(rng: &mut Prng, name: &str, shape: &[usize], std: f32) -> Param {
    Param::new(name, rng.normal_tensor(shape, 0.0, std))
}

/// Reduce any node to a non-trivial scalar loss: mean(tanh(x)^2) keeps
/// values bounded so finite differences stay accurate.
fn to_loss(g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
    let t = g.tanh(x);
    let sq = g.mul(t, t)?;
    g.mean_all(sq)
}

#[test]
fn gradcheck_broadcast_add_sub() {
    let mut rng = Prng::new(10);
    let a = param(&mut rng, "a", &[3, 4], 1.0);
    let b = param(&mut rng, "b", &[4], 1.0);
    check_gradients(
        &[a.clone(), b.clone()],
        |g| {
            let an = g.param(&a);
            let bn = g.param(&b);
            let s = g.add(an, bn)?;
            let d = g.sub(s, bn)?;
            let s2 = g.add(d, an)?;
            to_loss(g, s2)
        },
        1e-2,
        1e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_mul_div_broadcast() {
    let mut rng = Prng::new(11);
    let a = param(&mut rng, "a", &[2, 3], 1.0);
    // keep denominator well away from zero
    let b = Param::new("b", rng.uniform_tensor(&[3], 1.0, 2.0));
    check_gradients(
        &[a.clone(), b.clone()],
        |g| {
            let an = g.param(&a);
            let bn = g.param(&b);
            let m = g.mul(an, bn)?;
            let q = g.div(m, bn)?;
            let m2 = g.mul(q, m)?;
            to_loss(g, m2)
        },
        1e-2,
        2e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_activations() {
    let mut rng = Prng::new(12);
    let a = param(&mut rng, "a", &[2, 5], 1.0);
    // ReLU/LeakyReLU have a kink at 0: keep values away from it.
    for v in a.value_mut().data_mut() {
        if v.abs() < 0.2 {
            *v += 0.5;
        }
    }
    check_gradients(
        std::slice::from_ref(&a),
        |g| {
            let an = g.param(&a);
            let r = g.relu(an);
            let lr = g.leaky_relu(an, 0.1);
            let s = g.sigmoid(an);
            let t = g.tanh(an);
            let ge = g.gelu(an);
            let sum1 = g.add(r, lr)?;
            let sum2 = g.add(s, t)?;
            let sum3 = g.add(sum1, sum2)?;
            let sum4 = g.add(sum3, ge)?;
            to_loss(g, sum4)
        },
        1e-2,
        2e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_exp_ln() {
    let mut rng = Prng::new(13);
    let a = Param::new("a", rng.uniform_tensor(&[6], 0.5, 2.0));
    check_gradients(
        std::slice::from_ref(&a),
        |g| {
            let an = g.param(&a);
            let e = g.exp(an);
            let l = g.ln(e);
            let both = g.mul(e, l)?;
            g.mean_all(both)
        },
        1e-3,
        2e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_scale_add_scalar_reshape() {
    let mut rng = Prng::new(14);
    let a = param(&mut rng, "a", &[2, 6], 1.0);
    check_gradients(
        std::slice::from_ref(&a),
        |g| {
            let an = g.param(&a);
            let s = g.scale(an, -0.7);
            let p = g.add_scalar(s, 0.3);
            let r = g.reshape(p, &[3, 4])?;
            to_loss(g, r)
        },
        1e-2,
        1e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_sum_axis() {
    let mut rng = Prng::new(15);
    let a = param(&mut rng, "a", &[2, 3, 4], 1.0);
    for axis in 0..3 {
        check_gradients(
            std::slice::from_ref(&a),
            |g| {
                let an = g.param(&a);
                let s = g.sum_axis(an, axis)?;
                to_loss(g, s)
            },
            1e-2,
            2e-2,
        )
        .unwrap_or_else(|e| panic!("axis {axis}: {e}"));
    }
}

#[test]
fn gradcheck_softmax_and_log_softmax() {
    let mut rng = Prng::new(16);
    let a = param(&mut rng, "a", &[3, 4], 1.0);
    check_gradients(
        std::slice::from_ref(&a),
        |g| {
            let an = g.param(&a);
            let s = g.softmax(an)?;
            let ls = g.log_softmax(an)?;
            let prod = g.mul(s, ls)?;
            g.mean_all(prod)
        },
        1e-2,
        2e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_nll_loss() {
    let mut rng = Prng::new(17);
    let a = param(&mut rng, "a", &[4, 3], 1.0);
    let targets = vec![0usize, 2, 1, 2];
    check_gradients(
        std::slice::from_ref(&a),
        |g| {
            let an = g.param(&a);
            g.cross_entropy(an, &targets)
        },
        1e-2,
        1e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_bce_with_logits() {
    let mut rng = Prng::new(18);
    let a = param(&mut rng, "a", &[3, 3], 1.0);
    let targets = Tensor::from_vec(
        (0..9).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect(),
        &[3, 3],
    )
    .unwrap();
    check_gradients(
        std::slice::from_ref(&a),
        |g| {
            let an = g.param(&a);
            g.bce_with_logits(an, &targets)
        },
        1e-2,
        1e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_conv2d_all_inputs() {
    let mut rng = Prng::new(19);
    let x = param(&mut rng, "x", &[2, 2, 4, 4], 1.0);
    let w = param(&mut rng, "w", &[3, 2, 3, 3], 0.5);
    let b = param(&mut rng, "b", &[3], 0.5);
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    check_gradients(
        &[x.clone(), w.clone(), b.clone()],
        |g| {
            let xn = g.param(&x);
            let wn = g.param(&w);
            let bn = g.param(&b);
            let c = g.conv2d(xn, wn, Some(bn), win)?;
            to_loss(g, c)
        },
        1e-2,
        3e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_maxpool_and_avgpool() {
    let mut rng = Prng::new(20);
    let x = param(&mut rng, "x", &[2, 2, 4, 4], 1.0);
    let win = Window {
        kernel: 2,
        stride: 2,
        padding: 0,
    };
    check_gradients(
        std::slice::from_ref(&x),
        |g| {
            let xn = g.param(&x);
            let mp = g.maxpool2d(xn, win)?;
            let gp = g.global_avgpool(mp)?;
            to_loss(g, gp)
        },
        1e-3,
        2e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_batch_norm_train() {
    let mut rng = Prng::new(21);
    let x = param(&mut rng, "x", &[4, 3, 2, 2], 1.0);
    let gamma = Param::new("gamma", rng.uniform_tensor(&[3], 0.5, 1.5));
    let beta = param(&mut rng, "beta", &[3], 0.5);
    check_gradients(
        &[x.clone(), gamma.clone(), beta.clone()],
        |g| {
            let xn = g.param(&x);
            let gn = g.param(&gamma);
            let bn = g.param(&beta);
            let (y, _, _) = g.batch_norm_train(xn, gn, bn, 1e-5)?;
            to_loss(g, y)
        },
        1e-2,
        5e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_batch_norm_eval() {
    let mut rng = Prng::new(22);
    let x = param(&mut rng, "x", &[3, 2], 1.0);
    let gamma = Param::new("gamma", rng.uniform_tensor(&[2], 0.5, 1.5));
    let beta = param(&mut rng, "beta", &[2], 0.5);
    let mean = rng.normal_tensor(&[2], 0.0, 0.3);
    let var = rng.uniform_tensor(&[2], 0.5, 1.5);
    check_gradients(
        &[x.clone(), gamma.clone(), beta.clone()],
        |g| {
            let xn = g.param(&x);
            let gn = g.param(&gamma);
            let bn = g.param(&beta);
            let y = g.batch_norm_eval(xn, gn, bn, &mean, &var, 1e-5)?;
            to_loss(g, y)
        },
        1e-2,
        2e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_layer_norm() {
    let mut rng = Prng::new(23);
    let x = param(&mut rng, "x", &[2, 3, 4], 1.0);
    let gamma = Param::new("gamma", rng.uniform_tensor(&[4], 0.5, 1.5));
    let beta = param(&mut rng, "beta", &[4], 0.5);
    check_gradients(
        &[x.clone(), gamma.clone(), beta.clone()],
        |g| {
            let xn = g.param(&x);
            let gn = g.param(&gamma);
            let bn = g.param(&beta);
            let y = g.layer_norm(xn, gn, bn, 1e-5)?;
            to_loss(g, y)
        },
        1e-2,
        5e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_embedding_and_select_time() {
    let mut rng = Prng::new(24);
    let emb = param(&mut rng, "emb", &[5, 3], 1.0);
    let idx = vec![0usize, 2, 4, 1, 1, 3]; // [B=2, T=3]
    check_gradients(
        std::slice::from_ref(&emb),
        |g| {
            let en = g.param(&emb);
            let e = g.embedding(en, &idx)?;
            let e3 = g.reshape(e, &[2, 3, 3])?;
            let cls = g.select_time(e3, 0)?;
            to_loss(g, cls)
        },
        1e-2,
        2e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_batch_matmul_and_transpose() {
    let mut rng = Prng::new(25);
    let a = param(&mut rng, "a", &[2, 3, 4], 0.5);
    let b = param(&mut rng, "b", &[2, 3, 4], 0.5); // will transpose to [2,4,3]
    check_gradients(
        &[a.clone(), b.clone()],
        |g| {
            let an = g.param(&a);
            let bn = g.param(&b);
            let bt = g.transpose_last2(bn)?;
            let c = g.matmul3(an, bt)?; // [2,3,3]
            to_loss(g, c)
        },
        1e-2,
        3e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_attention_like_composite() {
    // A miniature attention block: softmax(QKᵀ/√d)·V with shared weights.
    let mut rng = Prng::new(26);
    let q = param(&mut rng, "q", &[1, 3, 4], 0.5);
    let k = param(&mut rng, "k", &[1, 3, 4], 0.5);
    let v = param(&mut rng, "v", &[1, 3, 4], 0.5);
    check_gradients(
        &[q.clone(), k.clone(), v.clone()],
        |g| {
            let qn = g.param(&q);
            let kn = g.param(&k);
            let vn = g.param(&v);
            let kt = g.transpose_last2(kn)?;
            let scores = g.matmul3(qn, kt)?;
            let scaled = g.scale(scores, 0.5);
            let flat = g.reshape(scaled, &[3, 3])?;
            let attn = g.softmax(flat)?;
            let attn3 = g.reshape(attn, &[1, 3, 3])?;
            let out = g.matmul3(attn3, vn)?;
            to_loss(g, out)
        },
        1e-2,
        3e-2,
    )
    .unwrap();
}

#[test]
fn gradcheck_permute_0213() {
    let mut rng = Prng::new(27);
    let a = param(&mut rng, "a", &[2, 3, 2, 4], 0.5);
    check_gradients(
        std::slice::from_ref(&a),
        |g| {
            let an = g.param(&a);
            let p = g.permute_0213(an)?;
            // also check the round trip composes
            let back = g.permute_0213(p)?;
            let both = g.add(p, p)?;
            let s = g.reshape(both, &[2, 2, 3 * 4])?;
            let merged = g.reshape(back, &[2, 3, 2 * 4])?;
            let l1 = to_loss(g, s)?;
            let l2 = to_loss(g, merged)?;
            g.add(l1, l2)
        },
        1e-2,
        2e-2,
    )
    .unwrap();
}
