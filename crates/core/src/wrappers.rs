//! Schedule combinators: [`DelayedDecay`] (hold, then decay — Figure 3 of
//! the paper) and [`Warmup`] (linear ramp-in, used by the YOLO setting).

use crate::schedule::{progress, Schedule};

/// Holds the initial learning rate for the first `delay` fraction of the
/// budget, then runs the inner schedule over the remaining fraction.
///
/// This is the paper's "Linear Delayed X %" family (Figure 3): delaying the
/// onset of linear decay improves high-budget performance but costs an extra
/// hyperparameter — the observation that motivates REX, which interpolates
/// between the linear and delayed-linear schedules with no extra knob.
///
/// ```
/// use rex_core::{profile::Linear, DelayedDecay, SampledProfile, SamplingRate, Schedule};
///
/// let inner = SampledProfile::new(Linear, SamplingRate::EveryIteration);
/// let mut d = DelayedDecay::new(inner, 0.5);
/// assert_eq!(d.factor(25, 100), 1.0);              // still held
/// assert!((d.factor(75, 100) - 0.5).abs() < 1e-9); // halfway down the decay
/// ```
#[derive(Debug, Clone)]
pub struct DelayedDecay<S> {
    inner: S,
    delay: f64,
}

impl<S: Schedule> DelayedDecay<S> {
    /// Wraps `inner`, delaying its onset until `delay ∈ [0, 1)` of the
    /// budget has elapsed.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is outside `[0, 1)`.
    pub fn new(inner: S, delay: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&delay),
            "delay fraction must be in [0,1), got {delay}"
        );
        DelayedDecay { inner, delay }
    }

    /// The delay fraction.
    pub fn delay(&self) -> f64 {
        self.delay
    }
}

impl<S: Schedule> Schedule for DelayedDecay<S> {
    fn factor(&mut self, t: u64, total: u64) -> f64 {
        let x = progress(t, total);
        if x < self.delay {
            return 1.0;
        }
        // Rescale the post-delay region onto [0, 1] for the inner schedule.
        let rescaled = (x - self.delay) / (1.0 - self.delay);
        // Use a fixed-resolution virtual clock so the inner schedule sees
        // consistent (t, total) pairs.
        const VIRT: u64 = 1_000_000;
        self.inner
            .factor((rescaled * VIRT as f64).round() as u64, VIRT)
    }

    fn on_validation(&mut self, loss: f64) {
        self.inner.on_validation(loss);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn stateful(&self) -> bool {
        self.inner.stateful()
    }

    fn name(&self) -> String {
        format!(
            "{} Delayed {}%",
            self.inner.name(),
            (self.delay * 100.0).round() as u32
        )
    }
}

/// Linear warmup from `start_factor` to 1 over `warmup_steps` iterations,
/// after which the inner schedule takes over on the *remaining* steps.
///
/// The paper's YOLO-VOC setting warms up for 2 epochs from 1e-5 to 1e-4 and
/// explicitly excludes the warmup from the training budget; setting
/// `counts_toward_budget = false` reproduces that accounting (the inner
/// schedule sees `t − warmup_steps` of `total − warmup_steps`).
#[derive(Debug, Clone)]
pub struct Warmup<S> {
    inner: S,
    warmup_steps: u64,
    start_factor: f64,
    counts_toward_budget: bool,
}

impl<S: Schedule> Warmup<S> {
    /// Wraps `inner` with a linear warmup.
    ///
    /// When the warmup does not count toward the budget, the caller must
    /// give the schedule a `total` strictly greater than `warmup_steps`;
    /// otherwise the inner schedule sees a zero-length budget and holds its
    /// end-of-training value.
    ///
    /// # Panics
    ///
    /// Panics if `start_factor` is negative or exceeds 1.
    pub fn new(inner: S, warmup_steps: u64, start_factor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&start_factor),
            "warmup start factor must be in [0,1], got {start_factor}"
        );
        Warmup {
            inner,
            warmup_steps,
            start_factor,
            counts_toward_budget: false,
        }
    }

    /// Makes the warmup count toward the budget (the inner schedule then
    /// sees the full `(t, total)` clock).
    pub fn counting_toward_budget(mut self) -> Self {
        self.counts_toward_budget = true;
        self
    }

    /// Number of warmup iterations.
    pub fn warmup_steps(&self) -> u64 {
        self.warmup_steps
    }
}

impl<S: Schedule> Schedule for Warmup<S> {
    fn factor(&mut self, t: u64, total: u64) -> f64 {
        if t < self.warmup_steps {
            let frac = (t as f64 + 1.0) / self.warmup_steps as f64;
            return self.start_factor + (1.0 - self.start_factor) * frac.min(1.0);
        }
        if self.counts_toward_budget {
            self.inner.factor(t, total)
        } else {
            let t2 = t - self.warmup_steps;
            let total2 = total.saturating_sub(self.warmup_steps);
            debug_assert!(
                total2 > 0,
                "warmup ({}) consumed the whole budget ({total})",
                self.warmup_steps
            );
            self.inner.factor(t2, total2)
        }
    }

    fn momentum(&mut self, t: u64, total: u64) -> Option<f64> {
        if t < self.warmup_steps {
            None
        } else if self.counts_toward_budget {
            self.inner.momentum(t, total)
        } else {
            self.inner.momentum(
                t - self.warmup_steps,
                total.saturating_sub(self.warmup_steps),
            )
        }
    }

    fn on_validation(&mut self, loss: f64) {
        self.inner.on_validation(loss);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn stateful(&self) -> bool {
        self.inner.stateful()
    }

    fn name(&self) -> String {
        format!("{} (+warmup)", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Linear, ReflectedExponential};
    use crate::sampling::SamplingRate;
    use crate::schedule::SampledProfile;

    fn linear() -> SampledProfile<Linear> {
        SampledProfile::new(Linear, SamplingRate::EveryIteration)
    }

    #[test]
    fn statefulness_propagates_through_wrappers() {
        assert!(!linear().stateful());
        assert!(!DelayedDecay::new(linear(), 0.25).stateful());
        assert!(!Warmup::new(linear(), 10, 0.1).stateful());
        let plateau = crate::DecayOnPlateau::new(2, 0.1);
        assert!(plateau.stateful());
        assert!(DelayedDecay::new(plateau, 0.25).stateful());
        let boxed: Box<dyn Schedule> = Box::new(crate::DecayOnPlateau::new(2, 0.1));
        assert!(boxed.stateful());
    }

    #[test]
    fn delayed_holds_then_decays_to_zero() {
        let mut d = DelayedDecay::new(linear(), 0.25);
        assert_eq!(d.factor(0, 1000), 1.0);
        assert_eq!(d.factor(249, 1000), 1.0);
        assert!((d.factor(250, 1000) - 1.0).abs() < 1e-6);
        assert!((d.factor(625, 1000) - 0.5).abs() < 1e-6);
        assert!(d.factor(1000, 1000).abs() < 1e-6);
    }

    #[test]
    fn delayed_zero_is_inner() {
        let mut d = DelayedDecay::new(linear(), 0.0);
        let mut l = linear();
        for t in [0u64, 10, 50, 99] {
            assert!((d.factor(t, 100) - l.factor(t, 100)).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "delay")]
    fn delayed_rejects_one() {
        let _ = DelayedDecay::new(linear(), 1.0);
    }

    #[test]
    fn delayed_name_mentions_percentage() {
        let d = DelayedDecay::new(linear(), 0.5);
        assert_eq!(d.name(), "Linear Delayed 50%");
    }

    #[test]
    fn rex_between_linear_and_delayed_linear() {
        // The paper's framing: REX interpolates between linear and delayed
        // linear. Check REX lies between Linear and Linear-Delayed-50% over
        // the interior.
        let mut rex = SampledProfile::new(
            ReflectedExponential::default(),
            SamplingRate::EveryIteration,
        );
        let mut lin = linear();
        let mut del = DelayedDecay::new(linear(), 0.5);
        for t in 1..99u64 {
            let r = rex.factor(t, 100);
            let l = lin.factor(t, 100);
            let d = del.factor(t, 100);
            assert!(
                r >= l - 1e-9 && r <= d + 1e-2,
                "t={t}: linear {l} <= rex {r} <= delayed {d} violated"
            );
        }
    }

    #[test]
    fn warmup_ramps_then_defers() {
        let mut w = Warmup::new(linear(), 10, 0.1);
        // During warmup the factor rises toward 1.
        let first = w.factor(0, 110);
        let last_warm = w.factor(9, 110);
        assert!(first < last_warm);
        assert!((last_warm - 1.0).abs() < 1e-9);
        // After warmup, inner schedule starts fresh on remaining budget.
        assert!((w.factor(10, 110) - 1.0).abs() < 1e-9);
        assert!((w.factor(60, 110) - 0.5).abs() < 1e-9);
        assert!(w.factor(110, 110).abs() < 1e-9);
    }

    #[test]
    fn warmup_counting_toward_budget_uses_full_clock() {
        let mut w = Warmup::new(linear(), 10, 0.1).counting_toward_budget();
        assert!((w.factor(50, 100) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn warmup_factor_never_exceeds_one() {
        let mut w = Warmup::new(linear(), 5, 0.0);
        for t in 0..100u64 {
            assert!(w.factor(t, 100) <= 1.0 + 1e-12);
        }
    }
}
