//! # rex-core — the REX schedule and the profile × sampling-rate framework
//!
//! This crate is the Rust reproduction of the primary contribution of
//! *"REX: Revisiting Budgeted Training with an Improved Schedule"*
//! (Chen, Wolfe, Kyrillidis — MLSys 2022).
//!
//! The paper frames a learning-rate schedule as the combination of
//!
//! 1. a **[`Profile`]** — a continuous curve `p : [0,1] → [0,1]` giving the
//!    learning-rate *multiplier* as a function of training progress, and
//! 2. a **[`SamplingRate`]** — how often the multiplier is re-sampled from
//!    the profile (every iteration, every k % of the budget, or at a fixed
//!    set of knots such as the classic 50–75 step points).
//!
//! Any profile composes with any sampling rate via [`SampledProfile`], which
//! is exactly the experiment of the paper's Table 2. The paper's proposal is
//! the **Reflected Exponential (REX)** profile
//!
//! ```text
//! p(x) = (1 − x) / (1/2 + 1/2·(1 − x))
//! ```
//!
//! sampled every iteration ([`ScheduleSpec::Rex`]).
//!
//! # Quickstart
//!
//! ```
//! use rex_core::ScheduleSpec;
//!
//! // Budget-aware REX schedule over 1000 iterations, initial LR 0.1:
//! let mut sched = ScheduleSpec::Rex.build();
//! let total = 1000;
//! let lr0 = 0.1;
//! let lr_start = lr0 * sched.factor(0, total) as f32;
//! let lr_end = lr0 * sched.factor(999, total) as f32;
//! assert!((lr_start - 0.1).abs() < 1e-6);
//! assert!(lr_end < 0.001);
//! ```
//!
//! The schedule only ever sees the *budgeted* horizon `total`: exactly as in
//! the paper, a 1 % budget decays to ~0 just like a 100 % budget, only 100×
//! faster.

#![warn(missing_docs)]

mod extra;
mod onecycle;
mod plateau;
pub mod profile;
pub mod sampling;
mod schedule;
mod spec;
mod wrappers;

pub use extra::{CosineRestarts, Cyclical, InverseSqrt};
pub use onecycle::OneCycle;
pub use plateau::DecayOnPlateau;
pub use profile::{
    Constant, Cosine, Exponential, Linear, Polynomial, Profile, ReflectedExponential,
};
pub use sampling::SamplingRate;
pub use schedule::{SampledProfile, Schedule, StepSchedule};
pub use spec::{all_paper_schedules, ParseScheduleError, ScheduleSpec, Table2Profile};
pub use wrappers::{DelayedDecay, Warmup};
