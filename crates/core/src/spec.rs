//! [`ScheduleSpec`] — a cloneable, comparable description of a schedule
//! that can be instantiated fresh for every trial of an experiment grid.

use crate::extra::{CosineRestarts, Cyclical, InverseSqrt};
use crate::onecycle::OneCycle;
use crate::plateau::DecayOnPlateau;
use crate::profile::{Constant, Cosine, Exponential, Linear, Polynomial, ReflectedExponential};
use crate::sampling::SamplingRate;
use crate::schedule::{SampledProfile, Schedule, StepSchedule};
use crate::wrappers::{DelayedDecay, Warmup};

/// A declarative schedule description.
///
/// Experiment grids iterate over `ScheduleSpec`s and call
/// [`ScheduleSpec::build`] once per trial, guaranteeing stateful schedules
/// (plateau) start fresh. The spec is also the canonical source of the
/// display [`name`](ScheduleSpec::name) used in result tables.
///
/// ```
/// use rex_core::ScheduleSpec;
///
/// let mut rex = ScheduleSpec::Rex.build();
/// let mut lin = ScheduleSpec::Linear.build();
/// assert!(rex.factor(500, 1000) > lin.factor(500, 1000));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleSpec {
    /// No schedule: constant learning rate.
    None,
    /// REX sampled every iteration — the paper's proposal.
    Rex,
    /// Generalised REX with explicit β (reproduction extension).
    RexBeta(f64),
    /// Linear decay to zero, sampled every iteration.
    Linear,
    /// Cosine decay, sampled every iteration.
    Cosine,
    /// Exponential decay `e^{γ t/T}` with the paper's γ = −3.
    ExpDecay,
    /// Exponential decay with explicit γ.
    ExpDecayGamma(f64),
    /// Step schedule: ×0.1 at 50 % and 75 % of the budget.
    Step,
    /// Step schedule with explicit fractional knots and decay factor.
    StepAt(Vec<f64>, f64),
    /// OneCycle with the paper's recommended settings.
    OneCycle,
    /// Decay-on-plateau with the given patience (validation reports).
    DecayOnPlateau(u32),
    /// Polynomial profile `(1−x)^p`, every-iteration sampling (extension).
    Polynomial(f64),
    /// SGDR cosine annealing with the given number of warm restarts and
    /// cycle-length multiplier (extension; cited in the paper's §2).
    CosineRestarts(u32, f64),
    /// Triangular cyclical LR with the given cycle count (extension).
    Cyclical(u32),
    /// Inverse-square-root decay with warmup fraction (extension).
    InverseSqrt(f64),
    /// Any base spec held constant until `delay` fraction, then decayed
    /// over the remainder (Figure 3's "Delayed X%" variants).
    Delayed(Box<ScheduleSpec>, f64),
    /// Any base spec preceded by a linear warmup of `steps` iterations
    /// starting at `start_factor`; warmup is excluded from the budget.
    WithWarmup(Box<ScheduleSpec>, u64, f64),
    /// An arbitrary profile/sampling combination from Table 2's grid:
    /// `(profile, sampling)` where profile is one of the three Table 2
    /// profiles.
    Sampled(Table2Profile, SamplingRate),
}

/// The three profiles compared across sampling rates in the paper's
/// Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table2Profile {
    /// The "tuned exponentially decaying profile" approximating the step
    /// schedule (`p(1/2) = 0.1`).
    StepApprox,
    /// The linear profile.
    Linear,
    /// The REX profile.
    Rex,
}

impl Table2Profile {
    /// Label used in Table 2 column headers.
    pub fn label(&self) -> &'static str {
        match self {
            Table2Profile::StepApprox => "Step",
            Table2Profile::Linear => "Linear",
            Table2Profile::Rex => "REX",
        }
    }

    /// All three Table 2 profiles, in the paper's column order.
    pub fn all() -> [Table2Profile; 3] {
        [
            Table2Profile::StepApprox,
            Table2Profile::Linear,
            Table2Profile::Rex,
        ]
    }
}

impl ScheduleSpec {
    /// Instantiates a fresh schedule.
    pub fn build(&self) -> Box<dyn Schedule> {
        match self {
            ScheduleSpec::None => {
                Box::new(SampledProfile::new(Constant, SamplingRate::EveryIteration))
            }
            ScheduleSpec::Rex => Box::new(SampledProfile::new(
                ReflectedExponential::default(),
                SamplingRate::EveryIteration,
            )),
            ScheduleSpec::RexBeta(beta) => Box::new(SampledProfile::new(
                ReflectedExponential::with_beta(*beta),
                SamplingRate::EveryIteration,
            )),
            ScheduleSpec::Linear => {
                Box::new(SampledProfile::new(Linear, SamplingRate::EveryIteration))
            }
            ScheduleSpec::Cosine => {
                Box::new(SampledProfile::new(Cosine, SamplingRate::EveryIteration))
            }
            ScheduleSpec::ExpDecay => Box::new(SampledProfile::new(
                Exponential::paper_decay(),
                SamplingRate::EveryIteration,
            )),
            ScheduleSpec::ExpDecayGamma(g) => Box::new(SampledProfile::new(
                Exponential::new(*g),
                SamplingRate::EveryIteration,
            )),
            ScheduleSpec::Step => Box::new(StepSchedule::fifty_seventy_five()),
            ScheduleSpec::StepAt(knots, gamma) => Box::new(StepSchedule::new(knots, *gamma)),
            ScheduleSpec::OneCycle => Box::new(OneCycle::default()),
            ScheduleSpec::DecayOnPlateau(patience) => Box::new(DecayOnPlateau::new(*patience, 0.1)),
            ScheduleSpec::Polynomial(p) => Box::new(SampledProfile::new(
                Polynomial::new(*p),
                SamplingRate::EveryIteration,
            )),
            ScheduleSpec::CosineRestarts(cycles, t_mult) => {
                Box::new(CosineRestarts::new(*cycles, *t_mult, 0.0))
            }
            ScheduleSpec::Cyclical(cycles) => Box::new(Cyclical::triangular(*cycles, 0.0)),
            ScheduleSpec::InverseSqrt(warmup) => Box::new(InverseSqrt::new(*warmup)),
            ScheduleSpec::Delayed(inner, delay) => {
                Box::new(DelayedDecay::new(inner.build(), *delay))
            }
            ScheduleSpec::WithWarmup(inner, steps, start) => {
                Box::new(Warmup::new(inner.build(), *steps, *start))
            }
            ScheduleSpec::Sampled(profile, rate) => match profile {
                Table2Profile::StepApprox => Box::new(SampledProfile::new(
                    Exponential::step_approximation(),
                    rate.clone(),
                )),
                Table2Profile::Linear => Box::new(SampledProfile::new(Linear, rate.clone())),
                Table2Profile::Rex => Box::new(SampledProfile::new(
                    ReflectedExponential::default(),
                    rate.clone(),
                )),
            },
        }
    }

    /// Whether the built schedule consumes validation-loss feedback
    /// ([`Schedule::on_validation`]); the trainer only pays for a per-epoch
    /// validation pass when this is true.
    pub fn needs_validation_feedback(&self) -> bool {
        match self {
            ScheduleSpec::DecayOnPlateau(_) => true,
            ScheduleSpec::Delayed(inner, _) | ScheduleSpec::WithWarmup(inner, ..) => {
                inner.needs_validation_feedback()
            }
            _ => false,
        }
    }

    /// Display name, matching the paper's table row labels.
    pub fn name(&self) -> String {
        match self {
            ScheduleSpec::None => "None".to_owned(),
            ScheduleSpec::Rex => "REX".to_owned(),
            ScheduleSpec::RexBeta(b) => format!("REX(beta={b})"),
            ScheduleSpec::Linear => "Linear Schedule".to_owned(),
            ScheduleSpec::Cosine => "Cosine Schedule".to_owned(),
            ScheduleSpec::ExpDecay => "Exp decay".to_owned(),
            ScheduleSpec::ExpDecayGamma(g) => format!("Exp decay(gamma={g})"),
            ScheduleSpec::Step => "Step Schedule".to_owned(),
            ScheduleSpec::StepAt(knots, gamma) => format!("Step{knots:?}x{gamma}"),
            ScheduleSpec::OneCycle => "OneCycle".to_owned(),
            ScheduleSpec::DecayOnPlateau(_) => "Decay on Plateau".to_owned(),
            ScheduleSpec::Polynomial(p) => format!("Poly(p={p})"),
            ScheduleSpec::CosineRestarts(c, _) => format!("SGDR(x{c})"),
            ScheduleSpec::Cyclical(c) => format!("Triangular(x{c})"),
            ScheduleSpec::InverseSqrt(_) => "InverseSqrt".to_owned(),
            ScheduleSpec::Delayed(inner, delay) => format!(
                "{} Delayed {}%",
                inner.name(),
                (delay * 100.0).round() as u32
            ),
            ScheduleSpec::WithWarmup(inner, ..) => inner.name(),
            ScheduleSpec::Sampled(profile, rate) => {
                format!("{} @ {}", profile.label(), rate.label())
            }
        }
    }
}

/// The seven schedules benchmarked throughout the paper's Tables 4–11, in
/// the paper's row order. `plateau_patience` is in validation reports
/// (epochs); the paper tunes it in multiples of 5.
pub fn all_paper_schedules(plateau_patience: u32) -> Vec<ScheduleSpec> {
    vec![
        ScheduleSpec::Step,
        ScheduleSpec::Cosine,
        ScheduleSpec::OneCycle,
        ScheduleSpec::Linear,
        ScheduleSpec::DecayOnPlateau(plateau_patience),
        ScheduleSpec::ExpDecay,
        ScheduleSpec::Rex,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_named_schedules() {
        for spec in all_paper_schedules(5) {
            let sched = spec.build();
            assert!(!sched.name().is_empty());
        }
    }

    #[test]
    fn fresh_builds_are_independent() {
        let spec = ScheduleSpec::DecayOnPlateau(1);
        let mut a = spec.build();
        let b = spec.build();
        a.on_validation(1.0);
        a.on_validation(1.0);
        drop(b);
        let mut b = spec.build();
        assert!(a.factor(0, 10) < 1.0);
        assert_eq!(b.factor(0, 10), 1.0);
    }

    #[test]
    fn paper_schedule_list_is_complete() {
        let names: Vec<String> = all_paper_schedules(5).iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "Step Schedule",
                "Cosine Schedule",
                "OneCycle",
                "Linear Schedule",
                "Decay on Plateau",
                "Exp decay",
                "REX"
            ]
        );
    }

    #[test]
    fn delayed_spec_builds_delayed_schedule() {
        let spec = ScheduleSpec::Delayed(Box::new(ScheduleSpec::Linear), 0.5);
        let mut s = spec.build();
        assert_eq!(s.factor(25, 100), 1.0);
        assert_eq!(spec.name(), "Linear Schedule Delayed 50%");
    }

    #[test]
    fn warmup_spec_excludes_warmup_from_budget() {
        let spec = ScheduleSpec::WithWarmup(Box::new(ScheduleSpec::Linear), 10, 0.1);
        let mut s = spec.build();
        // halfway through the post-warmup region
        assert!((s.factor(10 + 45, 10 + 90) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sampled_spec_matches_table2_grid() {
        for p in Table2Profile::all() {
            for r in SamplingRate::table2_rates() {
                let mut s = ScheduleSpec::Sampled(p, r.clone()).build();
                let start = s.factor(0, 100);
                assert!(
                    (start - 1.0).abs() < 1e-9,
                    "{}@{} should start at 1, got {start}",
                    p.label(),
                    r.label()
                );
            }
        }
    }

    #[test]
    fn rexbeta_one_equals_linear() {
        let mut r = ScheduleSpec::RexBeta(1.0).build();
        let mut l = ScheduleSpec::Linear.build();
        for t in [0u64, 25, 50, 75, 99] {
            assert!((r.factor(t, 100) - l.factor(t, 100)).abs() < 1e-12);
        }
    }
}

/// Error returned when parsing a schedule name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError {
    input: String,
}

impl std::fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown schedule {:?}; expected one of: none, rex, rex-beta=<B>, linear, \
             cosine, step, exp, onecycle, plateau, poly=<P>, sgdr, triangular, \
             inverse-sqrt, delayed-linear=<F>",
            self.input
        )
    }
}

impl std::error::Error for ParseScheduleError {}

impl std::str::FromStr for ScheduleSpec {
    type Err = ParseScheduleError;

    /// Parses the textual schedule vocabulary used by `rexctl` and config
    /// files. Case-insensitive; parameterised forms use `name=value`.
    ///
    /// ```
    /// use rex_core::ScheduleSpec;
    ///
    /// let s: ScheduleSpec = "REX".parse()?;
    /// assert_eq!(s, ScheduleSpec::Rex);
    /// let d: ScheduleSpec = "delayed-linear=0.5".parse()?;
    /// assert_eq!(d.name(), "Linear Schedule Delayed 50%");
    /// # Ok::<(), rex_core::ParseScheduleError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        let err = || ParseScheduleError {
            input: s.to_string(),
        };
        if let Some(v) = lower.strip_prefix("rex-beta=") {
            let beta: f64 = v.parse().map_err(|_| err())?;
            if !(beta > 0.0 && beta <= 1.0) {
                return Err(err());
            }
            return Ok(ScheduleSpec::RexBeta(beta));
        }
        if let Some(v) = lower.strip_prefix("delayed-linear=") {
            let frac: f64 = v.parse().map_err(|_| err())?;
            if !(0.0..1.0).contains(&frac) {
                return Err(err());
            }
            return Ok(ScheduleSpec::Delayed(Box::new(ScheduleSpec::Linear), frac));
        }
        if let Some(v) = lower.strip_prefix("poly=") {
            let p: f64 = v.parse().map_err(|_| err())?;
            if p <= 0.0 {
                return Err(err());
            }
            return Ok(ScheduleSpec::Polynomial(p));
        }
        Ok(match lower.as_str() {
            "none" | "constant" => ScheduleSpec::None,
            "rex" => ScheduleSpec::Rex,
            "linear" => ScheduleSpec::Linear,
            "cosine" => ScheduleSpec::Cosine,
            "step" => ScheduleSpec::Step,
            "exp" | "exp-decay" | "exponential" => ScheduleSpec::ExpDecay,
            "onecycle" | "one-cycle" => ScheduleSpec::OneCycle,
            "plateau" | "decay-on-plateau" => ScheduleSpec::DecayOnPlateau(2),
            "sgdr" | "cosine-restarts" => ScheduleSpec::CosineRestarts(3, 2.0),
            "triangular" | "cyclical" => ScheduleSpec::Cyclical(3),
            "inverse-sqrt" | "invsqrt" => ScheduleSpec::InverseSqrt(0.1),
            _ => return Err(err()),
        })
    }
}

#[cfg(test)]
mod parse_tests {
    use super::*;

    #[test]
    fn parses_every_vocabulary_entry() {
        for (input, expected_name) in [
            ("none", "None"),
            ("REX", "REX"),
            ("linear", "Linear Schedule"),
            ("Cosine", "Cosine Schedule"),
            ("step", "Step Schedule"),
            ("exp", "Exp decay"),
            ("onecycle", "OneCycle"),
            ("plateau", "Decay on Plateau"),
            ("sgdr", "SGDR(x3)"),
            ("triangular", "Triangular(x3)"),
            ("inverse-sqrt", "InverseSqrt"),
        ] {
            let spec: ScheduleSpec = input.parse().unwrap_or_else(|e| panic!("{input}: {e}"));
            assert_eq!(spec.name(), expected_name, "{input}");
        }
    }

    #[test]
    fn parses_parameterised_forms() {
        assert!(matches!(
            "rex-beta=0.25".parse::<ScheduleSpec>().unwrap(),
            ScheduleSpec::RexBeta(b) if (b - 0.25).abs() < 1e-12
        ));
        assert!(matches!(
            "poly=2".parse::<ScheduleSpec>().unwrap(),
            ScheduleSpec::Polynomial(p) if (p - 2.0).abs() < 1e-12
        ));
    }

    #[test]
    fn rejects_garbage_and_bad_parameters() {
        assert!("warp".parse::<ScheduleSpec>().is_err());
        assert!("rex-beta=0".parse::<ScheduleSpec>().is_err());
        assert!("rex-beta=abc".parse::<ScheduleSpec>().is_err());
        assert!("delayed-linear=1.5".parse::<ScheduleSpec>().is_err());
        assert!("poly=-1".parse::<ScheduleSpec>().is_err());
        let msg = "warp".parse::<ScheduleSpec>().unwrap_err().to_string();
        assert!(msg.contains("warp") && msg.contains("rex"), "{msg}");
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(" rex ".parse::<ScheduleSpec>().unwrap(), ScheduleSpec::Rex);
    }
}
