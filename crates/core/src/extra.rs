//! Additional widely-implemented schedules referenced by the paper's
//! related-work section (§2): SGDR cosine annealing with warm restarts
//! (Loshchilov & Hutter), triangular cyclical learning rates (Smith 2017),
//! and the inverse-square-root schedule popularised by the original
//! Transformer recipe.
//!
//! These are not part of the paper's main comparison (its Table 4–11 grids
//! use the non-restarting cosine), but a schedule library without them
//! would be incomplete; the ablation benches exercise them.

use crate::schedule::{progress, Schedule};

/// **SGDR**: cosine annealing with warm restarts.
///
/// The budget is divided into cycles; within each cycle the factor follows
/// a half-cosine from 1 to `floor`, then *restarts* at 1. Each subsequent
/// cycle is `t_mult` times longer than the previous (the paper's cited
/// configuration uses `t_mult = 2`).
///
/// ```
/// use rex_core::{CosineRestarts, Schedule};
///
/// let mut s = CosineRestarts::new(4, 1.0, 0.0);
/// assert!((s.factor(0, 1000) - 1.0).abs() < 1e-9);
/// // a restart boundary jumps back to the initial LR
/// let before = s.factor(249, 1000);
/// let after = s.factor(250, 1000);
/// assert!(after > before);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CosineRestarts {
    cycles: u32,
    floor: f64,
    /// Cycle boundaries as fractions of the budget, precomputed at
    /// construction so the per-iteration factor() stays allocation-free.
    boundaries: Vec<f64>,
}

impl CosineRestarts {
    /// `cycles` restarts over the budget; each cycle `t_mult`× the length
    /// of the previous; LR floor as a fraction of the initial LR.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`, `t_mult < 1`, or `floor` outside `[0, 1)`.
    pub fn new(cycles: u32, t_mult: f64, floor: f64) -> Self {
        assert!(cycles > 0, "need at least one cycle");
        assert!(t_mult >= 1.0, "t_mult must be >= 1, got {t_mult}");
        assert!((0.0..1.0).contains(&floor), "floor must be in [0,1)");
        // lengths 1, m, m^2, ... normalised to sum 1
        let lengths: Vec<f64> = (0..cycles).map(|i| t_mult.powi(i as i32)).collect();
        let total: f64 = lengths.iter().sum();
        let mut acc = 0.0;
        let mut boundaries = Vec::with_capacity(cycles as usize + 1);
        boundaries.push(0.0);
        for l in lengths {
            acc += l / total;
            boundaries.push(acc);
        }
        CosineRestarts {
            cycles,
            floor,
            boundaries,
        }
    }

    /// Cycle boundaries as fractions of the budget.
    fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }
}

impl Schedule for CosineRestarts {
    fn factor(&mut self, t: u64, total: u64) -> f64 {
        let x = progress(t, total);
        let bounds: &[f64] = self.boundaries();
        // find the enclosing cycle
        let mut cycle = 0;
        for (i, &start) in bounds.iter().enumerate().take(bounds.len() - 1) {
            if x >= start {
                cycle = i;
            }
        }
        let (start, end) = (bounds[cycle], bounds[cycle + 1]);
        let local = if end > start {
            ((x - start) / (end - start)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        self.floor + (1.0 - self.floor) * 0.5 * (1.0 + (std::f64::consts::PI * local).cos())
    }

    fn name(&self) -> String {
        format!("SGDR(x{})", self.cycles)
    }
}

/// **Cyclical learning rate** (triangular policy, Smith 2017): the factor
/// oscillates linearly between `floor` and 1, `cycles` times over the
/// budget, optionally with amplitude decay (`triangular2` halves the
/// amplitude each cycle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cyclical {
    cycles: u32,
    floor: f64,
    halve_amplitude: bool,
}

impl Cyclical {
    /// Triangular policy with constant amplitude.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0` or `floor` outside `[0, 1)`.
    pub fn triangular(cycles: u32, floor: f64) -> Self {
        assert!(cycles > 0, "need at least one cycle");
        assert!((0.0..1.0).contains(&floor), "floor must be in [0,1)");
        Cyclical {
            cycles,
            floor,
            halve_amplitude: false,
        }
    }

    /// The `triangular2` variant: amplitude halves each cycle.
    pub fn triangular2(cycles: u32, floor: f64) -> Self {
        let mut c = Cyclical::triangular(cycles, floor);
        c.halve_amplitude = true;
        c
    }
}

impl Schedule for Cyclical {
    fn factor(&mut self, t: u64, total: u64) -> f64 {
        let x = progress(t, total);
        let pos = (x * self.cycles as f64).min(self.cycles as f64 - 1e-12);
        let cycle = pos.floor() as u32;
        let local = pos - cycle as f64; // [0,1) within cycle
        let tri = if local < 0.5 {
            2.0 * local
        } else {
            2.0 * (1.0 - local)
        };
        let amplitude = if self.halve_amplitude {
            (1.0 - self.floor) / 2f64.powi(cycle as i32)
        } else {
            1.0 - self.floor
        };
        self.floor + amplitude * tri
    }

    fn name(&self) -> String {
        if self.halve_amplitude {
            format!("Triangular2(x{})", self.cycles)
        } else {
            format!("Triangular(x{})", self.cycles)
        }
    }
}

/// **Inverse-square-root** decay with linear warmup — the classic
/// Transformer recipe, budget-normalised: after warming up over
/// `warmup_frac` of the budget, the factor decays as
/// `sqrt(warmup_frac / x)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverseSqrt {
    warmup_frac: f64,
}

impl InverseSqrt {
    /// Warmup over the given fraction of the budget (e.g. 0.1).
    ///
    /// # Panics
    ///
    /// Panics if `warmup_frac` is outside `(0, 1)`.
    pub fn new(warmup_frac: f64) -> Self {
        assert!(
            warmup_frac > 0.0 && warmup_frac < 1.0,
            "warmup fraction must be in (0,1), got {warmup_frac}"
        );
        InverseSqrt { warmup_frac }
    }
}

impl Schedule for InverseSqrt {
    fn factor(&mut self, t: u64, total: u64) -> f64 {
        let x = progress(t, total);
        if x < self.warmup_frac {
            x / self.warmup_frac
        } else {
            (self.warmup_frac / x).sqrt()
        }
    }

    fn name(&self) -> String {
        "InverseSqrt".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgdr_restarts_jump_back_up() {
        let mut s = CosineRestarts::new(4, 1.0, 0.0);
        // equal cycles at 0-.25-.5-.75-1
        let end_of_first = s.factor(249, 1000);
        let start_of_second = s.factor(251, 1000);
        assert!(
            end_of_first < 0.05,
            "cycle should anneal to ~0: {end_of_first}"
        );
        assert!(
            start_of_second > 0.9,
            "restart should jump to ~1: {start_of_second}"
        );
    }

    #[test]
    fn sgdr_t_mult_lengthens_cycles() {
        let s = CosineRestarts::new(3, 2.0, 0.0);
        let b = s.boundaries();
        // lengths 1,2,4 normalised: boundaries at 1/7, 3/7, 1
        assert!((b[1] - 1.0 / 7.0).abs() < 1e-12);
        assert!((b[2] - 3.0 / 7.0).abs() < 1e-12);
        assert!((b[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sgdr_respects_floor() {
        let mut s = CosineRestarts::new(2, 1.0, 0.1);
        for t in 0..=100 {
            let f = s.factor(t, 100);
            assert!((0.1 - 1e-12..=1.0 + 1e-12).contains(&f));
        }
    }

    #[test]
    fn single_cycle_sgdr_equals_cosine() {
        use crate::profile::{Cosine, Profile};
        let mut s = CosineRestarts::new(1, 1.0, 0.0);
        for t in [0u64, 25, 50, 75, 100] {
            let expected = Cosine.at(t as f64 / 100.0);
            assert!((s.factor(t, 100) - expected).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn triangular_oscillates() {
        let mut s = Cyclical::triangular(2, 0.0);
        assert!(s.factor(0, 100) < 0.05);
        assert!((s.factor(25, 100) - 1.0).abs() < 0.05); // first peak
        assert!(s.factor(50, 100) < 0.05); // first trough
        assert!((s.factor(75, 100) - 1.0).abs() < 0.05); // second peak
    }

    #[test]
    fn triangular2_amplitude_halves() {
        let mut s = Cyclical::triangular2(2, 0.0);
        let first_peak = s.factor(25, 100);
        let second_peak = s.factor(75, 100);
        assert!((first_peak - 1.0).abs() < 0.05);
        assert!((second_peak - 0.5).abs() < 0.05);
    }

    #[test]
    fn inverse_sqrt_warms_then_decays() {
        let mut s = InverseSqrt::new(0.1);
        assert!(s.factor(0, 1000) < 0.02);
        assert!((s.factor(100, 1000) - 1.0).abs() < 0.02); // end of warmup
        let quarter = s.factor(400, 1000);
        assert!((quarter - (0.1f64 / 0.4).sqrt()).abs() < 0.01);
        // monotone decreasing after warmup
        assert!(s.factor(900, 1000) < quarter);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycles_rejected() {
        let _ = CosineRestarts::new(0, 1.0, 0.0);
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(
            Cyclical::triangular(4, 0.0).name(),
            Cyclical::triangular2(4, 0.0).name()
        );
        assert_eq!(CosineRestarts::new(2, 2.0, 0.0).name(), "SGDR(x2)");
    }
}
