//! Decay-on-plateau: the practical, feedback-driven variant of the step
//! schedule.

use crate::schedule::Schedule;

/// **Decay on Plateau** — drops the LR by `gamma` whenever the validation
/// loss has failed to improve for `patience` consecutive reports.
///
/// This is the paper's practical step-schedule variant: the trainer calls
/// [`Schedule::on_validation`] after each validation pass (typically once
/// per epoch), and the multiplier returned by [`Schedule::factor`] reflects
/// the number of decays triggered so far. The paper tunes the patience in
/// multiples of 5 epochs.
///
/// ```
/// use rex_core::{DecayOnPlateau, Schedule};
///
/// let mut s = DecayOnPlateau::new(2, 0.1);
/// s.on_validation(1.0); // best so far
/// s.on_validation(1.1); // no improvement (1)
/// s.on_validation(1.2); // no improvement (2) -> decay
/// assert!((s.factor(0, 100) - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecayOnPlateau {
    patience: u32,
    gamma: f64,
    min_delta: f64,
    best: f64,
    stale: u32,
    decays: u32,
}

impl DecayOnPlateau {
    /// Plateau schedule with the given patience (validation reports without
    /// improvement before decaying) and decay factor.
    ///
    /// # Panics
    ///
    /// Panics if `patience == 0` or `gamma` is not in `(0, 1)`.
    pub fn new(patience: u32, gamma: f64) -> Self {
        assert!(patience > 0, "patience must be positive");
        assert!(
            gamma > 0.0 && gamma < 1.0,
            "plateau gamma must be in (0,1), got {gamma}"
        );
        DecayOnPlateau {
            patience,
            gamma,
            min_delta: 1e-4,
            best: f64::INFINITY,
            stale: 0,
            decays: 0,
        }
    }

    /// Sets the minimum loss improvement that counts as progress.
    pub fn with_min_delta(mut self, min_delta: f64) -> Self {
        self.min_delta = min_delta;
        self
    }

    /// Number of decays triggered so far.
    pub fn decay_count(&self) -> u32 {
        self.decays
    }

    /// The configured patience.
    pub fn patience(&self) -> u32 {
        self.patience
    }
}

impl Schedule for DecayOnPlateau {
    fn factor(&mut self, _t: u64, _total: u64) -> f64 {
        self.gamma.powi(self.decays as i32)
    }

    fn on_validation(&mut self, loss: f64) {
        if loss < self.best - self.min_delta {
            self.best = loss;
            self.stale = 0;
        } else {
            self.stale += 1;
            if self.stale >= self.patience {
                self.decays += 1;
                self.stale = 0;
            }
        }
    }

    fn reset(&mut self) {
        self.best = f64::INFINITY;
        self.stale = 0;
        self.decays = 0;
    }

    fn stateful(&self) -> bool {
        // the decay counter reacts to validation losses, which a resumed
        // run cannot replay; checkpoints are refused for this schedule
        true
    }

    fn name(&self) -> String {
        "Decay on Plateau".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_decay_while_improving() {
        let mut s = DecayOnPlateau::new(3, 0.1);
        for i in 0..10 {
            s.on_validation(10.0 - i as f64);
        }
        assert_eq!(s.decay_count(), 0);
        assert_eq!(s.factor(0, 1), 1.0);
    }

    #[test]
    fn decays_after_patience_exceeded() {
        let mut s = DecayOnPlateau::new(3, 0.1);
        s.on_validation(1.0);
        s.on_validation(1.0);
        s.on_validation(1.0);
        assert_eq!(s.decay_count(), 0);
        s.on_validation(1.0); // third stale report
        assert_eq!(s.decay_count(), 1);
        assert!((s.factor(5, 10) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn stale_counter_resets_after_decay() {
        let mut s = DecayOnPlateau::new(2, 0.5);
        s.on_validation(1.0);
        s.on_validation(1.0);
        s.on_validation(1.0); // decay #1
        assert_eq!(s.decay_count(), 1);
        s.on_validation(1.0);
        s.on_validation(1.0); // decay #2
        assert_eq!(s.decay_count(), 2);
        assert!((s.factor(0, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn improvement_resets_staleness() {
        let mut s = DecayOnPlateau::new(2, 0.1);
        s.on_validation(1.0);
        s.on_validation(1.0); // stale 1
        s.on_validation(0.5); // improvement
        s.on_validation(0.5); // stale 1
        assert_eq!(s.decay_count(), 0);
    }

    #[test]
    fn tiny_improvement_below_min_delta_is_stale() {
        let mut s = DecayOnPlateau::new(1, 0.1).with_min_delta(0.01);
        s.on_validation(1.0);
        s.on_validation(0.999); // within min_delta -> stale -> decay
        assert_eq!(s.decay_count(), 1);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut s = DecayOnPlateau::new(1, 0.1);
        s.on_validation(1.0);
        s.on_validation(1.0);
        assert_eq!(s.decay_count(), 1);
        s.reset();
        assert_eq!(s.decay_count(), 0);
        assert_eq!(s.factor(0, 1), 1.0);
    }
}
