//! The [`Schedule`] trait — the runtime interface every learning-rate
//! schedule presents to the training loop — plus the two fundamental
//! implementations: [`SampledProfile`] (any profile × any sampling rate)
//! and [`StepSchedule`] (the literal multiplicative-drop schedule).

use crate::profile::Profile;
use crate::sampling::SamplingRate;

/// A budget-aware learning-rate schedule.
///
/// The trainer calls [`Schedule::factor`] once per iteration with the
/// current step `t ∈ [0, total)` and the *budgeted* total step count; the
/// returned multiplier scales the tuned initial learning rate. Schedules are
/// aware only of the budget they were given — a 1 % budget run decays over
/// 1 % of the full horizon, exactly as in the paper.
///
/// `factor` takes `&mut self` because some schedules are stateful
/// ([`crate::DecayOnPlateau`] reacts to validation losses via
/// [`Schedule::on_validation`]); pure schedules simply ignore the
/// mutability.
pub trait Schedule: Send {
    /// LR multiplier for iteration `t` out of `total`.
    ///
    /// `t ≥ total` is treated as end-of-training (progress 1).
    fn factor(&mut self, t: u64, total: u64) -> f64;

    /// Momentum override for iteration `t`, if this schedule also drives
    /// momentum (only [`crate::OneCycle`] does, per the paper).
    fn momentum(&mut self, _t: u64, _total: u64) -> Option<f64> {
        None
    }

    /// Feedback hook: the trainer reports each validation loss here.
    /// Only [`crate::DecayOnPlateau`] reacts; the default is a no-op.
    fn on_validation(&mut self, _loss: f64) {}

    /// Clears any internal state so the schedule can be reused for a new
    /// run. Pure schedules need no action.
    fn reset(&mut self) {}

    /// Whether the schedule carries mutable state that a checkpoint cannot
    /// capture. Pure schedules (every profile × sampling-rate combination)
    /// are functions of `(t, total)` alone and resume exactly; stateful
    /// ones ([`crate::DecayOnPlateau`]) return `true` and the trainer
    /// refuses to checkpoint or resume them.
    fn stateful(&self) -> bool {
        false
    }

    /// Short name used in result tables (e.g. `"REX"`, `"Step Schedule"`).
    fn name(&self) -> String;
}

/// Normalised progress with end-of-training clamping.
pub(crate) fn progress(t: u64, total: u64) -> f64 {
    if total == 0 {
        return 1.0;
    }
    (t as f64 / total as f64).clamp(0.0, 1.0)
}

/// A profile paired with a sampling rate — the paper's schedule
/// decomposition made executable.
///
/// On each query the progress `t/T` is quantised by the sampling rate to
/// the most recent sample point, and the profile is evaluated there:
/// sample-and-hold semantics.
///
/// ```
/// use rex_core::{profile::Exponential, SampledProfile, SamplingRate, Schedule};
///
/// // The paper's "approximated step profile" sampled at 50-75:
/// let mut s = SampledProfile::new(
///     Exponential::step_approximation(),
///     SamplingRate::fifty_seventy_five(),
/// );
/// assert!((s.factor(0, 100) - 1.0).abs() < 1e-9);
/// assert!((s.factor(50, 100) - 0.1).abs() < 1e-9); // first drop
/// ```
#[derive(Debug, Clone)]
pub struct SampledProfile<P> {
    profile: P,
    sampling: SamplingRate,
}

impl<P: Profile> SampledProfile<P> {
    /// Pairs `profile` with `sampling`.
    pub fn new(profile: P, sampling: SamplingRate) -> Self {
        SampledProfile { profile, sampling }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &P {
        &self.profile
    }

    /// The sampling rate.
    pub fn sampling(&self) -> &SamplingRate {
        &self.sampling
    }
}

impl<P: Profile> Schedule for SampledProfile<P> {
    fn factor(&mut self, t: u64, total: u64) -> f64 {
        self.profile.at(self.sampling.quantize(progress(t, total)))
    }

    fn name(&self) -> String {
        match self.sampling {
            SamplingRate::EveryIteration => self.profile.name(),
            _ => format!("{} @ {}", self.profile.name(), self.sampling.label()),
        }
    }
}

/// The classic **step schedule**: multiply the LR by `gamma` each time
/// progress passes a knot. With knots `[0.5, 0.75]` and γ = 0.1 this is the
/// "50–75" schedule used for the paper's Step Schedule baseline (the direct
/// analogue of the 30-60-90 ImageNet recipe, rescaled to the budget).
///
/// Unlike [`SampledProfile`] with an exponential profile — which only
/// *approximates* these drops — `StepSchedule` reproduces them exactly:
/// after the k-th knot the factor is `gamma^k`.
#[derive(Debug, Clone)]
pub struct StepSchedule {
    knots: Vec<f64>,
    gamma: f64,
}

impl StepSchedule {
    /// Step schedule dropping by `gamma` at each fractional knot.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not in `(0, 1)` or any knot is outside `(0, 1]`.
    pub fn new(knots: &[f64], gamma: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma < 1.0,
            "step gamma must be in (0,1), got {gamma}"
        );
        let mut ks = knots.to_vec();
        for &k in &ks {
            assert!(k > 0.0 && k <= 1.0, "step knot {k} outside (0,1]");
        }
        ks.sort_by(|a, b| a.partial_cmp(b).expect("finite knots"));
        StepSchedule { knots: ks, gamma }
    }

    /// The paper's baseline: drop ×0.1 at 50 % and 75 % of the budget.
    pub fn fifty_seventy_five() -> Self {
        StepSchedule::new(&[0.5, 0.75], 0.1)
    }

    /// The ImageNet-style 30-60-90 recipe expressed fractionally
    /// (drops at 1/3 and 2/3 of the budget).
    pub fn thirty_sixty_ninety() -> Self {
        StepSchedule::new(&[1.0 / 3.0, 2.0 / 3.0], 0.1)
    }
}

impl Schedule for StepSchedule {
    fn factor(&mut self, t: u64, total: u64) -> f64 {
        let x = progress(t, total);
        let drops = self.knots.iter().filter(|&&k| x >= k).count() as i32;
        self.gamma.powi(drops)
    }

    fn name(&self) -> String {
        "Step Schedule".to_owned()
    }
}

impl Schedule for Box<dyn Schedule> {
    fn factor(&mut self, t: u64, total: u64) -> f64 {
        (**self).factor(t, total)
    }

    fn momentum(&mut self, t: u64, total: u64) -> Option<f64> {
        (**self).momentum(t, total)
    }

    fn on_validation(&mut self, loss: f64) {
        (**self).on_validation(loss)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn stateful(&self) -> bool {
        (**self).stateful()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Linear, ReflectedExponential};

    #[test]
    fn sampled_linear_every_iteration_is_smooth() {
        let mut s = SampledProfile::new(Linear, SamplingRate::EveryIteration);
        assert!((s.factor(0, 100) - 1.0).abs() < 1e-12);
        assert!((s.factor(50, 100) - 0.5).abs() < 1e-12);
        assert!((s.factor(100, 100)).abs() < 1e-12);
    }

    #[test]
    fn sampled_profile_holds_between_knots() {
        let mut s = SampledProfile::new(Linear, SamplingRate::fifty_seventy_five());
        assert_eq!(s.factor(0, 100), 1.0);
        assert_eq!(s.factor(49, 100), 1.0);
        assert!((s.factor(50, 100) - 0.5).abs() < 1e-12);
        assert!((s.factor(74, 100) - 0.5).abs() < 1e-12);
        assert!((s.factor(75, 100) - 0.25).abs() < 1e-12);
        assert!((s.factor(99, 100) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn step_schedule_exact_drops() {
        let mut s = StepSchedule::fifty_seventy_five();
        assert_eq!(s.factor(0, 1000), 1.0);
        assert_eq!(s.factor(499, 1000), 1.0);
        assert!((s.factor(500, 1000) - 0.1).abs() < 1e-12);
        assert!((s.factor(750, 1000) - 0.01).abs() < 1e-12);
        assert!((s.factor(999, 1000) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn step_schedule_rescales_with_budget() {
        // The same schedule object applied to a 10x smaller budget drops at
        // the same *fractions* — the paper's budget-aware adaptation.
        let mut s = StepSchedule::fifty_seventy_five();
        assert!((s.factor(50, 100) - 0.1).abs() < 1e-12);
        assert!((s.factor(5, 10) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_total_treated_as_end() {
        let mut s = SampledProfile::new(Linear, SamplingRate::EveryIteration);
        assert_eq!(s.factor(0, 0), 0.0);
    }

    #[test]
    fn t_beyond_total_clamps() {
        let mut s = SampledProfile::new(
            ReflectedExponential::default(),
            SamplingRate::EveryIteration,
        );
        assert_eq!(s.factor(500, 100), s.factor(100, 100));
    }

    #[test]
    fn names_are_informative() {
        let s = SampledProfile::new(
            ReflectedExponential::default(),
            SamplingRate::EveryIteration,
        );
        assert_eq!(s.name(), "REX");
        let s2 = SampledProfile::new(Linear, SamplingRate::fifty_seventy_five());
        assert_eq!(s2.name(), "Linear @ 50-75");
        assert_eq!(StepSchedule::fifty_seventy_five().name(), "Step Schedule");
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn step_gamma_validated() {
        let _ = StepSchedule::new(&[0.5], 1.5);
    }

    #[test]
    fn boxed_schedule_delegates() {
        let mut b: Box<dyn Schedule> = Box::new(StepSchedule::fifty_seventy_five());
        assert_eq!(b.factor(0, 10), 1.0);
        assert_eq!(b.name(), "Step Schedule");
        assert_eq!(b.momentum(0, 10), None);
    }
}
