//! Learning-rate **profiles**: continuous curves `p : [0,1] → ℝ₊` giving the
//! LR multiplier as a function of training progress.
//!
//! The profile is one half of the paper's schedule decomposition; the other
//! half is the [sampling rate](crate::sampling). Profiles here are pure and
//! stateless, so the same profile value can be queried from any sampling
//! pattern — the property Table 2 of the paper exploits.

/// A continuous learning-rate profile.
///
/// `at(x)` returns the LR *multiplier* at normalised progress
/// `x = t/T ∈ [0, 1]`. Implementations must be pure functions of `x`
/// (state such as plateau detection lives in
/// [`Schedule`](crate::Schedule) implementations instead), and should
/// satisfy `at(0) ≈ 1` so the initial learning rate is respected.
///
/// Inputs outside `[0, 1]` are clamped by all built-in profiles.
pub trait Profile: Send + Sync {
    /// Multiplier at progress `x ∈ [0, 1]`.
    fn at(&self, x: f64) -> f64;

    /// Short human-readable name used in tables and CSV output.
    fn name(&self) -> String;
}

pub(crate) fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// The **Reflected Exponential (REX)** profile — the paper's proposal:
///
/// ```text
/// p(x) = (1 − x) / (β + (1 − β)·(1 − x))      with β = 1/2
/// ```
///
/// At β = ½ this is exactly Eq. (REX) of the paper:
/// `p(x) = (1−x) / (1/2 + 1/2·(1−x))`. The curve holds the LR high early
/// (like a *delayed* linear schedule) and decays aggressively near the end
/// ("the reflection of the exponential decay") — an interpolation between a
/// linear schedule and a delayed linear schedule requiring no extra
/// hyperparameter.
///
/// The `beta` generalisation is an extension of this reproduction used for
/// ablations; `ReflectedExponential::default()` is the paper's schedule.
///
/// ```
/// use rex_core::profile::{Profile, ReflectedExponential};
///
/// let rex = ReflectedExponential::default();
/// assert!((rex.at(0.0) - 1.0).abs() < 1e-12);
/// assert!(rex.at(1.0).abs() < 1e-12);
/// // REX stays above linear for all interior x:
/// assert!(rex.at(0.5) > 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReflectedExponential {
    beta: f64,
}

impl Default for ReflectedExponential {
    fn default() -> Self {
        ReflectedExponential { beta: 0.5 }
    }
}

impl ReflectedExponential {
    /// The paper's REX profile (β = ½).
    pub fn new() -> Self {
        Self::default()
    }

    /// Generalised REX with interpolation parameter `beta ∈ (0, 1]`.
    ///
    /// β → 1 recovers the linear profile; smaller β holds the LR high for
    /// longer before the terminal drop.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not in `(0, 1]`.
    pub fn with_beta(beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0,
            "REX beta must lie in (0,1], got {beta}"
        );
        ReflectedExponential { beta }
    }

    /// The interpolation parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Profile for ReflectedExponential {
    fn at(&self, x: f64) -> f64 {
        let x = clamp01(x);
        let rem = 1.0 - x;
        rem / (self.beta + (1.0 - self.beta) * rem)
    }

    fn name(&self) -> String {
        if (self.beta - 0.5).abs() < 1e-12 {
            "REX".to_owned()
        } else {
            format!("REX(beta={})", self.beta)
        }
    }
}

/// The linear profile `p(x) = 1 − x`, previously suggested as the best
/// budget-aware schedule (Li et al., "Budgeted Training", 2020).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Linear;

impl Profile for Linear {
    fn at(&self, x: f64) -> f64 {
        1.0 - clamp01(x)
    }

    fn name(&self) -> String {
        "Linear".to_owned()
    }
}

/// The cosine profile `p(x) = (1 + cos(πx)) / 2` (Loshchilov & Hutter,
/// SGDR — without restarts, as evaluated in the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cosine;

impl Profile for Cosine {
    fn at(&self, x: f64) -> f64 {
        0.5 * (1.0 + (std::f64::consts::PI * clamp01(x)).cos())
    }

    fn name(&self) -> String {
        "Cosine".to_owned()
    }
}

/// The exponential profile `p(x) = e^{γx}`.
///
/// Two instances matter for the paper:
/// * `Exponential::paper_decay()` — γ = −3, the "Exp decay" baseline the
///   paper found to perform best among exponential schedules;
/// * `Exponential::step_approximation()` — γ = ln(0.01), the "tuned
///   exponentially decaying profile" whose 50–75 knot sampling approximates
///   the classic step schedule (Table 2's "Step" profile: p(0.5) = 0.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    gamma: f64,
}

impl Exponential {
    /// Exponential profile with decay exponent `gamma` (usually negative).
    pub fn new(gamma: f64) -> Self {
        Exponential { gamma }
    }

    /// The paper's exponential-decay baseline (γ = −3).
    pub fn paper_decay() -> Self {
        Exponential { gamma: -3.0 }
    }

    /// The profile whose knot sampling approximates the 50–75 step schedule:
    /// γ = ln(0.01) ≈ −4.605, so `p(1/2) = 0.1` and `p(1) = 0.01`.
    pub fn step_approximation() -> Self {
        Exponential {
            gamma: (0.01f64).ln(),
        }
    }

    /// The decay exponent γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl Default for Exponential {
    fn default() -> Self {
        Self::paper_decay()
    }
}

impl Profile for Exponential {
    fn at(&self, x: f64) -> f64 {
        (self.gamma * clamp01(x)).exp()
    }

    fn name(&self) -> String {
        format!("Exp(gamma={:.3})", self.gamma)
    }
}

/// The constant profile `p(x) = 1` — i.e. no schedule ("None" rows of the
/// paper's tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Constant;

impl Profile for Constant {
    fn at(&self, _x: f64) -> f64 {
        1.0
    }

    fn name(&self) -> String {
        "None".to_owned()
    }
}

/// The polynomial profile `p(x) = (1 − x)^power` — an extension beyond the
/// paper used in ablations (power = 1 recovers [`Linear`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Polynomial {
    power: f64,
}

impl Polynomial {
    /// Polynomial profile with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `power` is not strictly positive.
    pub fn new(power: f64) -> Self {
        assert!(
            power > 0.0,
            "polynomial power must be positive, got {power}"
        );
        Polynomial { power }
    }

    /// The exponent.
    pub fn power(&self) -> f64 {
        self.power
    }
}

impl Profile for Polynomial {
    fn at(&self, x: f64) -> f64 {
        (1.0 - clamp01(x)).powf(self.power)
    }

    fn name(&self) -> String {
        format!("Poly(p={})", self.power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_endpoints(p: &dyn Profile, end: f64) {
        assert!((p.at(0.0) - 1.0).abs() < 1e-9, "{} at(0) != 1", p.name());
        assert!(
            (p.at(1.0) - end).abs() < 1e-9,
            "{} at(1) != {end}",
            p.name()
        );
    }

    #[test]
    fn rex_matches_paper_formula() {
        let rex = ReflectedExponential::default();
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let expected = (1.0 - x) / (0.5 + 0.5 * (1.0 - x));
            assert!((rex.at(x) - expected).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn rex_endpoints() {
        check_endpoints(&ReflectedExponential::default(), 0.0);
    }

    #[test]
    fn rex_dominates_linear_in_interior() {
        let rex = ReflectedExponential::default();
        let lin = Linear;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            assert!(
                rex.at(x) > lin.at(x),
                "REX should hold LR above linear at x={x}"
            );
        }
    }

    #[test]
    fn rex_beta_one_is_linear() {
        let rex = ReflectedExponential::with_beta(1.0);
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            assert!((rex.at(x) - (1.0 - x)).abs() < 1e-12);
        }
    }

    #[test]
    fn rex_smaller_beta_holds_higher() {
        let low = ReflectedExponential::with_beta(0.1);
        let high = ReflectedExponential::with_beta(0.9);
        assert!(low.at(0.5) > high.at(0.5));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rex_invalid_beta_panics() {
        let _ = ReflectedExponential::with_beta(0.0);
    }

    #[test]
    fn linear_endpoints_and_midpoint() {
        check_endpoints(&Linear, 0.0);
        assert!((Linear.at(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_endpoints_and_midpoint() {
        check_endpoints(&Cosine, 0.0);
        assert!((Cosine.at(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exponential_paper_gamma() {
        let e = Exponential::paper_decay();
        check_endpoints(&e, (-3.0f64).exp());
        assert_eq!(e.gamma(), -3.0);
    }

    #[test]
    fn step_approximation_hits_tenth_at_half() {
        let e = Exponential::step_approximation();
        assert!((e.at(0.5) - 0.1).abs() < 1e-9);
        assert!((e.at(1.0) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn constant_is_flat() {
        for i in 0..=10 {
            assert_eq!(Constant.at(i as f64 / 10.0), 1.0);
        }
    }

    #[test]
    fn polynomial_power_one_is_linear() {
        let p = Polynomial::new(1.0);
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert!((p.at(x) - Linear.at(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn profiles_clamp_out_of_range_progress() {
        let rex = ReflectedExponential::default();
        assert_eq!(rex.at(-0.5), rex.at(0.0));
        assert_eq!(rex.at(1.5), rex.at(1.0));
    }

    #[test]
    fn all_profiles_monotone_nonincreasing() {
        let profiles: Vec<Box<dyn Profile>> = vec![
            Box::new(ReflectedExponential::default()),
            Box::new(Linear),
            Box::new(Cosine),
            Box::new(Exponential::paper_decay()),
            Box::new(Constant),
            Box::new(Polynomial::new(2.0)),
        ];
        for p in &profiles {
            let mut prev = f64::INFINITY;
            for i in 0..=1000 {
                let v = p.at(i as f64 / 1000.0);
                assert!(
                    v <= prev + 1e-12,
                    "{} increased at step {i}: {v} > {prev}",
                    p.name()
                );
                prev = v;
            }
        }
    }
}
