//! The OneCycle schedule (Smith, 2018), driving both LR and momentum.

use crate::schedule::{progress, Schedule};

/// The **OneCycle** schedule: the LR ramps linearly from `η_max·0.1` to
/// `η_max` over the first half of the budget and back down over the second
/// half, while the momentum moves inversely between `β_max` and `β_min`.
///
/// Following the paper's fair-comparison protocol, the recommended defaults
/// are fixed — `η_min = 0.1·η_max`, `β_max = 0.95`, `β_min = 0.85` — so the
/// peak LR (`η_max`, supplied by the tuner as the initial LR) is the only
/// hyperparameter.
///
/// ```
/// use rex_core::{OneCycle, Schedule};
///
/// let mut oc = OneCycle::default();
/// assert!((oc.factor(0, 100) - 0.1).abs() < 0.05);      // starts low
/// assert!((oc.factor(50, 100) - 1.0).abs() < 0.05);     // peaks mid-budget
/// assert!(oc.factor(99, 100) < 0.15);                   // ends low
/// assert_eq!(oc.momentum(50, 100), Some(0.85));         // momentum dips at peak
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneCycle {
    lr_min_factor: f64,
    beta_max: f64,
    beta_min: f64,
}

impl Default for OneCycle {
    /// The paper's recommended settings.
    fn default() -> Self {
        OneCycle {
            lr_min_factor: 0.1,
            beta_max: 0.95,
            beta_min: 0.85,
        }
    }
}

impl OneCycle {
    /// OneCycle with the paper's recommended settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the LR floor factor (`η_min / η_max`) and momentum range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lr_min_factor ≤ 1` and `0 ≤ beta_min ≤ beta_max < 1`.
    pub fn with_settings(lr_min_factor: f64, beta_min: f64, beta_max: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lr_min_factor),
            "lr_min_factor must be in [0,1], got {lr_min_factor}"
        );
        assert!(
            (0.0..1.0).contains(&beta_min) && beta_min <= beta_max && beta_max < 1.0,
            "momentum range [{beta_min}, {beta_max}] invalid"
        );
        OneCycle {
            lr_min_factor,
            beta_max,
            beta_min,
        }
    }

    fn triangle(&self, x: f64) -> f64 {
        // rises 0 -> 1 over [0, 1/2], falls back over [1/2, 1]
        if x < 0.5 {
            2.0 * x
        } else {
            2.0 * (1.0 - x)
        }
    }
}

impl Schedule for OneCycle {
    fn factor(&mut self, t: u64, total: u64) -> f64 {
        let tri = self.triangle(progress(t, total));
        self.lr_min_factor + (1.0 - self.lr_min_factor) * tri
    }

    fn momentum(&mut self, t: u64, total: u64) -> Option<f64> {
        let tri = self.triangle(progress(t, total));
        // momentum is the mirror image: high when LR is low
        Some(self.beta_max - (self.beta_max - self.beta_min) * tri)
    }

    fn name(&self) -> String {
        "OneCycle".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_triangle() {
        let mut oc = OneCycle::default();
        let up = oc.factor(25, 100);
        let down = oc.factor(75, 100);
        assert!((up - down).abs() < 1e-9);
    }

    #[test]
    fn peak_at_half() {
        let mut oc = OneCycle::default();
        assert!((oc.factor(50, 100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ends_at_floor() {
        let mut oc = OneCycle::default();
        assert!((oc.factor(100, 100) - 0.1).abs() < 1e-9);
        assert!((oc.factor(0, 100) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn momentum_mirrors_lr() {
        let mut oc = OneCycle::default();
        assert_eq!(oc.momentum(0, 100), Some(0.95));
        assert_eq!(oc.momentum(50, 100), Some(0.85));
        assert_eq!(oc.momentum(100, 100), Some(0.95));
    }

    #[test]
    fn momentum_always_in_range() {
        let mut oc = OneCycle::default();
        for t in 0..=200u64 {
            let m = oc.momentum(t, 200).unwrap();
            assert!((0.85..=0.95).contains(&m));
        }
    }

    #[test]
    #[should_panic(expected = "momentum range")]
    fn invalid_momentum_range_panics() {
        let _ = OneCycle::with_settings(0.1, 0.95, 0.85);
    }
}
