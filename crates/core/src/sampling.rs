//! **Sampling rates**: how often the learning rate is re-read from a
//! [profile](crate::profile).
//!
//! A sampling rate quantises the continuous progress `x = t/T` down to the
//! most recent *sample point*; the profile is then evaluated at that
//! quantised progress and the value held until the next sample point. At one
//! extreme [`SamplingRate::EveryIteration`] leaves `x` untouched (smooth
//! schedules such as linear/REX); at the other, [`SamplingRate::knots`] with
//! `[0.5, 0.75]` reproduces the classic "50–75" two-drop pattern.

/// How frequently a profile is (re-)sampled over the budget.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingRate {
    /// Re-sample the profile on every iteration (maximum rate — the paper's
    /// recommendation for REX and linear).
    EveryIteration,
    /// Re-sample once every `fraction` of the budget: `EveryFraction(0.1)`
    /// is the paper's "10-10", `0.05` is "5-25", `0.01` is "1-100".
    EveryFraction(f64),
    /// Re-sample only when progress passes each knot (plus an implicit
    /// sample at progress 0). `[0.5, 0.75]` is the paper's "50-75";
    /// `[1/3, 2/3]` is "33-66"; `[0.25, 0.5, 0.75]` is "25-50-75".
    Knots(Vec<f64>),
}

impl SamplingRate {
    /// Builds a knot sampling rate, validating and sorting the knots.
    ///
    /// # Panics
    ///
    /// Panics if any knot lies outside `(0, 1]`.
    pub fn knots(knots: &[f64]) -> Self {
        let mut ks = knots.to_vec();
        for &k in &ks {
            assert!(k > 0.0 && k <= 1.0, "sampling knot {k} outside (0,1]");
        }
        ks.sort_by(|a, b| a.partial_cmp(b).expect("finite knots"));
        SamplingRate::Knots(ks)
    }

    /// The paper's "50-75" sampling pattern.
    pub fn fifty_seventy_five() -> Self {
        SamplingRate::knots(&[0.5, 0.75])
    }

    /// The paper's "33-66" sampling pattern.
    pub fn thirds() -> Self {
        SamplingRate::knots(&[1.0 / 3.0, 2.0 / 3.0])
    }

    /// The paper's "25-50-75" sampling pattern.
    pub fn quarters() -> Self {
        SamplingRate::knots(&[0.25, 0.5, 0.75])
    }

    /// Quantises progress `x ∈ [0,1]` to the most recent sample point.
    ///
    /// The result is always ≤ `x`, so a held learning rate never "peeks
    /// ahead" down the profile.
    pub fn quantize(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match self {
            SamplingRate::EveryIteration => x,
            SamplingRate::EveryFraction(f) => {
                if *f <= 0.0 {
                    return x;
                }
                // the epsilon makes quantisation idempotent at floating-
                // point boundaries (quantize(quantize(x)) == quantize(x))
                ((x / f) + 1e-9).floor() * f
            }
            SamplingRate::Knots(ks) => ks
                .iter()
                .copied()
                .take_while(|&k| k <= x)
                .last()
                .unwrap_or(0.0),
        }
    }

    /// Human-readable label matching the paper's table rows.
    pub fn label(&self) -> String {
        match self {
            SamplingRate::EveryIteration => "Every Iteration".to_owned(),
            SamplingRate::EveryFraction(f) => match (f * 100.0).round() as u32 {
                10 => "10-10".to_owned(),
                5 => "5-25".to_owned(),
                1 => "1-100".to_owned(),
                pct => format!("every-{pct}%"),
            },
            SamplingRate::Knots(ks) => {
                let parts: Vec<String> = ks
                    .iter()
                    .map(|k| format!("{}", (k * 100.0).floor() as u32))
                    .collect();
                parts.join("-")
            }
        }
    }

    /// All sampling rates benchmarked in the paper's Table 2, coarsest
    /// first.
    pub fn table2_rates() -> Vec<SamplingRate> {
        vec![
            SamplingRate::fifty_seventy_five(),
            SamplingRate::thirds(),
            SamplingRate::quarters(),
            SamplingRate::EveryFraction(0.10),
            SamplingRate::EveryFraction(0.05),
            SamplingRate::EveryFraction(0.01),
            SamplingRate::EveryIteration,
        ]
    }
}

impl Default for SamplingRate {
    /// The maximum (per-iteration) sampling rate.
    fn default() -> Self {
        SamplingRate::EveryIteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_iteration_is_identity() {
        let s = SamplingRate::EveryIteration;
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert_eq!(s.quantize(x), x);
        }
    }

    #[test]
    fn every_fraction_floors() {
        let s = SamplingRate::EveryFraction(0.1);
        assert_eq!(s.quantize(0.0), 0.0);
        assert!((s.quantize(0.05) - 0.0).abs() < 1e-12);
        assert!((s.quantize(0.19) - 0.1).abs() < 1e-12);
        assert!((s.quantize(0.95) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn knots_hold_until_passed() {
        let s = SamplingRate::fifty_seventy_five();
        assert_eq!(s.quantize(0.0), 0.0);
        assert_eq!(s.quantize(0.49), 0.0);
        assert_eq!(s.quantize(0.5), 0.5);
        assert_eq!(s.quantize(0.74), 0.5);
        assert_eq!(s.quantize(0.76), 0.75);
        assert_eq!(s.quantize(1.0), 0.75);
    }

    #[test]
    fn knots_sorted_on_construction() {
        let s = SamplingRate::knots(&[0.75, 0.25, 0.5]);
        assert_eq!(s, SamplingRate::Knots(vec![0.25, 0.5, 0.75]));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_knot_panics() {
        let _ = SamplingRate::knots(&[0.0]);
    }

    #[test]
    fn quantize_never_exceeds_progress() {
        for s in SamplingRate::table2_rates() {
            for i in 0..=100 {
                let x = i as f64 / 100.0;
                assert!(
                    s.quantize(x) <= x + 1e-12,
                    "{} peeked ahead at x={x}",
                    s.label()
                );
            }
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SamplingRate::fifty_seventy_five().label(), "50-75");
        assert_eq!(SamplingRate::thirds().label(), "33-66");
        assert_eq!(SamplingRate::quarters().label(), "25-50-75");
        assert_eq!(SamplingRate::EveryFraction(0.1).label(), "10-10");
        assert_eq!(SamplingRate::EveryFraction(0.05).label(), "5-25");
        assert_eq!(SamplingRate::EveryFraction(0.01).label(), "1-100");
        assert_eq!(SamplingRate::EveryIteration.label(), "Every Iteration");
    }

    #[test]
    fn table2_has_seven_rates() {
        assert_eq!(SamplingRate::table2_rates().len(), 7);
    }
}
