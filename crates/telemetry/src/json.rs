//! A minimal JSON encoder/decoder — just enough for the flat objects this
//! crate emits, so the workspace stays dependency-free.
//!
//! Supported: one-level objects whose values are strings, finite numbers,
//! booleans, or `null`. That is exactly the shape of every telemetry event
//! line; nested containers are intentionally rejected.

use std::collections::BTreeMap;

/// A parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as a signed integer, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` as the contents of a JSON string literal (quotes excluded).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number. Non-finite values (which JSON cannot
/// represent) become `null` and parse back as NaN.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` is Rust's shortest-roundtrip formatting: deterministic for a
        // given bit pattern, and always a valid JSON number.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Parses a one-level JSON object into a key → [`Value`] map.
///
/// # Errors
///
/// Returns a human-readable message on malformed input or nested
/// containers.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut p = Parser {
        bytes: line.trim().as_bytes(),
        pos: 0,
    };
    let map = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, Value>, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(map);
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos,
                        other.map(|&c| c as char)
                    ))
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'{') | Some(b'[') => Err(format!(
                "nested containers unsupported at byte {}",
                self.pos
            )),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_owned())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged)
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_owned())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let m = parse_object(r#"{"ev":"step","lr":0.125,"ok":true,"x":null,"n":-3}"#).unwrap();
        assert_eq!(m["ev"].as_str(), Some("step"));
        assert_eq!(m["lr"].as_f64(), Some(0.125));
        assert_eq!(m["ok"].as_bool(), Some(true));
        assert!(m["x"].as_f64().unwrap().is_nan());
        assert_eq!(m["n"].as_i64(), Some(-3));
    }

    #[test]
    fn roundtrips_escapes() {
        let s = "a\"b\\c\nd\te\u{1}";
        let line = format!("{{\"k\":\"{}\"}}", escape(s));
        let m = parse_object(&line).unwrap();
        assert_eq!(m["k"].as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a":}"#).is_err());
        assert!(parse_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_object(r#"{"a":[1]}"#).is_err());
        assert!(parse_object(r#"{"a":{"b":1}}"#).is_err());
    }

    #[test]
    fn float_formatting_roundtrips() {
        for v in [0.0, 1.0, -2.5, 1e-8, 123456.789, f64::MIN_POSITIVE] {
            let s = fmt_f64(v);
            let m = parse_object(&format!("{{\"v\":{s}}}")).unwrap();
            assert_eq!(m["v"].as_f64(), Some(v), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn u64_bounds() {
        let m = parse_object(r#"{"a":42,"b":4.5,"c":-1}"#).unwrap();
        assert_eq!(m["a"].as_u64(), Some(42));
        assert_eq!(m["b"].as_u64(), None);
        assert_eq!(m["c"].as_u64(), None);
    }
}
