//! Hierarchical span profiling with Chrome-trace export.
//!
//! Spans form a proper tree — `job → epoch → step → {data, forward,
//! backward, optimizer, checkpoint}`, and under [`Detail::Kernel`] per-op
//! spans inside the compute backend — recorded as a chronological
//! begin/end stream on the *calling thread*. Kernel dispatch entry points
//! run on the submitting thread (the pool fans out internally), so a
//! thread-local collector captures full op durations without any
//! cross-thread machinery and without touching the hot parallel loops.
//!
//! Profiling is off by default and costs one thread-local load per
//! [`span`] call when disabled. Crucially, spans never pass through the
//! [`Recorder`] event stream: wall-clock data stays out of the
//! deterministic JSONL traces by construction, while the span *tree
//! shape* (names and nesting, timestamps aside) is a pure function of the
//! run configuration and is parity-tested as such.
//!
//! The recorded [`Profile`] aggregates into a per-phase self-profile
//! (inclusive/exclusive time, call counts, % of root) and exports to
//! Chrome trace-event JSON loadable in Perfetto (`chrome://tracing`).
//!
//! [`Recorder`]: crate::Recorder

use crate::json;
use std::cell::RefCell;
use std::time::Instant;

/// How much the profiler records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Detail {
    /// Record nothing (the default; spans are no-ops).
    #[default]
    Off,
    /// Record phase-level spans: job/epoch/step and the per-step phases.
    Phase,
    /// Additionally record per-op kernel spans inside backend dispatch.
    Kernel,
}

impl Detail {
    /// Parses `"off"`, `"phase"`, or `"kernel"`.
    pub fn parse(s: &str) -> Result<Detail, String> {
        match s {
            "off" => Ok(Detail::Off),
            "phase" => Ok(Detail::Phase),
            "kernel" => Ok(Detail::Kernel),
            other => Err(format!(
                "unknown profile detail {other:?} (expected off | phase | kernel)"
            )),
        }
    }
}

/// One begin or end record in a profile's chronological event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (a phase or kernel identifier).
    pub name: String,
    /// `true` for a begin event, `false` for the matching end.
    pub begin: bool,
    /// Nanoseconds since the profile's start anchor.
    pub ts_ns: u64,
}

/// An explicit enter/exit span collector.
///
/// The thread-local profiler wraps one of these; it is public so the
/// nesting discipline (and its panic messages) can be tested directly.
/// Spans must strictly nest: [`SpanCollector::exit`] panics if the name
/// does not match the innermost open span.
#[derive(Debug)]
pub struct SpanCollector {
    events: Vec<(&'static str, bool, u64)>,
    stack: Vec<&'static str>,
    anchor: Instant,
}

impl Default for SpanCollector {
    fn default() -> Self {
        SpanCollector::new()
    }
}

impl SpanCollector {
    /// An empty collector anchored at the current instant.
    pub fn new() -> Self {
        SpanCollector {
            events: Vec::with_capacity(256),
            stack: Vec::with_capacity(8),
            anchor: Instant::now(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Opens a span named `name` nested under the innermost open span.
    pub fn enter(&mut self, name: &'static str) {
        let ts = self.now_ns();
        self.stack.push(name);
        self.events.push((name, true, ts));
    }

    /// Closes the innermost open span, which must be named `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` does not match the innermost open span, or when
    /// no span is open — an unbalanced exit is always a caller bug.
    pub fn exit(&mut self, name: &'static str) {
        let ts = self.now_ns();
        match self.stack.pop() {
            None => panic!("span exit({name:?}) with no open span"),
            Some(open) if open != name => {
                panic!("span exit({name:?}) does not match innermost open span {open:?}")
            }
            Some(_) => self.events.push((name, false, ts)),
        }
    }

    /// Number of currently open spans.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Consumes the collector into a [`Profile`], force-closing any spans
    /// still open (so a panic or early return still yields a valid,
    /// properly nested trace).
    pub fn finish(mut self) -> Profile {
        let ts = self.now_ns();
        while let Some(open) = self.stack.pop() {
            self.events.push((open, false, ts));
        }
        Profile {
            events: self
                .events
                .iter()
                .map(|&(name, begin, ts_ns)| SpanEvent {
                    name: name.to_owned(),
                    begin,
                    ts_ns,
                })
                .collect(),
        }
    }
}

struct TlsProfiler {
    detail: Detail,
    generation: u64,
    collector: Option<SpanCollector>,
}

thread_local! {
    static PROFILER: RefCell<TlsProfiler> = const {
        RefCell::new(TlsProfiler {
            detail: Detail::Off,
            generation: 0,
            collector: None,
        })
    };
}

/// Enables profiling on the current thread at the given detail level,
/// discarding any previously collected spans. `Detail::Off` disables.
pub fn enable(detail: Detail) {
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        p.detail = detail;
        p.generation += 1;
        p.collector = if detail == Detail::Off {
            None
        } else {
            Some(SpanCollector::new())
        };
    });
}

/// The current thread's detail level.
pub fn detail() -> Detail {
    PROFILER.with(|p| p.borrow().detail)
}

/// Whether profiling is enabled on the current thread at any level.
pub fn is_enabled() -> bool {
    detail() != Detail::Off
}

/// Disables profiling on the current thread and returns what was
/// collected (an empty profile if profiling was off).
pub fn take() -> Profile {
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        p.detail = Detail::Off;
        p.generation += 1;
        match p.collector.take() {
            Some(c) => c.finish(),
            None => Profile { events: Vec::new() },
        }
    })
}

/// RAII guard closing its span on drop (including early returns and
/// unwinds). Obtained from [`span`] or [`kernel_span`]; inert when the
/// profiler is disabled or was re-armed since the guard was created.
#[must_use = "the span closes when this guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    generation: u64,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        PROFILER.with(|p| {
            let mut p = p.borrow_mut();
            if p.generation != self.generation {
                return; // profiler re-armed while the guard was open
            }
            if let Some(c) = p.collector.as_mut() {
                c.exit(self.name);
            }
        });
    }
}

fn open_span(name: &'static str, min_detail: Detail) -> SpanGuard {
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        let active = p.detail >= min_detail && p.collector.is_some();
        if active {
            p.collector.as_mut().unwrap().enter(name);
        }
        SpanGuard {
            name,
            generation: p.generation,
            active,
        }
    })
}

/// Opens a phase-level span (recorded at [`Detail::Phase`] and above).
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, Detail::Phase)
}

/// Opens a kernel-level span (recorded only at [`Detail::Kernel`]).
pub fn kernel_span(name: &'static str) -> SpanGuard {
    open_span(name, Detail::Kernel)
}

/// One aggregated row of a profile's phase table.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Slash-joined path from the root, e.g. `job/epoch/step/forward`.
    pub path: String,
    /// The span's own name (last path component).
    pub name: String,
    /// Nesting depth (root spans are 0).
    pub depth: usize,
    /// Number of times a span with this path was entered.
    pub calls: u64,
    /// Total wall time including children, in nanoseconds.
    pub inclusive_ns: u64,
    /// Total wall time excluding children, in nanoseconds.
    pub exclusive_ns: u64,
    /// Inclusive time as a fraction of total root-span time (0..=100).
    pub pct_of_root: f64,
}

/// A recorded span stream plus its aggregations and exports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Chronological begin/end events.
    pub events: Vec<SpanEvent>,
}

impl Profile {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The tree shape — the event stream with timestamps erased. Two
    /// same-seed runs must produce identical shapes; this is what the
    /// determinism parity tests compare.
    pub fn shape(&self) -> Vec<(String, bool)> {
        self.events
            .iter()
            .map(|e| (e.name.clone(), e.begin))
            .collect()
    }

    /// Aggregates the event stream into per-path rows (call counts,
    /// inclusive/exclusive time, % of root), ordered by first occurrence.
    pub fn phase_table(&self) -> Vec<PhaseRow> {
        struct Open {
            path: String,
            begin_ns: u64,
            child_ns: u64,
        }
        let mut stack: Vec<Open> = Vec::new();
        let mut order: Vec<String> = Vec::new();
        let mut rows: std::collections::BTreeMap<String, PhaseRow> =
            std::collections::BTreeMap::new();
        let mut root_ns = 0u64;
        for ev in &self.events {
            if ev.begin {
                let path = match stack.last() {
                    Some(parent) => format!("{}/{}", parent.path, ev.name),
                    None => ev.name.clone(),
                };
                // register rows in first-enter order: parents precede
                // children, so the rendered table reads as a tree
                rows.entry(path.clone()).or_insert_with(|| {
                    order.push(path.clone());
                    PhaseRow {
                        path: path.clone(),
                        name: ev.name.clone(),
                        depth: stack.len(),
                        calls: 0,
                        inclusive_ns: 0,
                        exclusive_ns: 0,
                        pct_of_root: 0.0,
                    }
                });
                stack.push(Open {
                    path,
                    begin_ns: ev.ts_ns,
                    child_ns: 0,
                });
            } else {
                let Some(open) = stack.pop() else { continue };
                let inclusive = ev.ts_ns.saturating_sub(open.begin_ns);
                let exclusive = inclusive.saturating_sub(open.child_ns);
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns += inclusive;
                } else {
                    root_ns += inclusive;
                }
                let row = rows.get_mut(&open.path).unwrap();
                row.calls += 1;
                row.inclusive_ns += inclusive;
                row.exclusive_ns += exclusive;
            }
        }
        let mut out: Vec<PhaseRow> = order
            .into_iter()
            .map(|p| rows.remove(&p).unwrap())
            .collect();
        for row in &mut out {
            row.pct_of_root = if root_ns == 0 {
                0.0
            } else {
                row.inclusive_ns as f64 * 100.0 / root_ns as f64
            };
        }
        out
    }

    /// Renders the phase table as an aligned, indented text table.
    pub fn render_phase_table(&self) -> String {
        let rows = self.phase_table();
        if rows.is_empty() {
            return "profile: no spans recorded\n".to_owned();
        }
        let name_w = rows
            .iter()
            .map(|r| 2 * r.depth + r.name.len())
            .chain(["phase".len()])
            .max()
            .unwrap();
        let mut out = format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>7}\n",
            "phase", "calls", "incl(ms)", "excl(ms)", "%root"
        );
        for r in &rows {
            let label = format!("{}{}", "  ".repeat(r.depth), r.name);
            out.push_str(&format!(
                "{label:<name_w$}  {:>8}  {:>12.3}  {:>12.3}  {:>7.1}\n",
                r.calls,
                r.inclusive_ns as f64 * 1e-6,
                r.exclusive_ns as f64 * 1e-6,
                r.pct_of_root,
            ));
        }
        out
    }

    /// The `k` hottest rows by exclusive time, descending (ties broken by
    /// path for determinism).
    pub fn top_spans(&self, k: usize) -> Vec<PhaseRow> {
        let mut rows = self.phase_table();
        rows.sort_by(|a, b| {
            b.exclusive_ns
                .cmp(&a.exclusive_ns)
                .then_with(|| a.path.cmp(&b.path))
        });
        rows.truncate(k);
        rows
    }

    /// Serializes as Chrome trace-event JSON (`B`/`E` duration events,
    /// microsecond timestamps), loadable in Perfetto. The output is
    /// line-oriented — one event object per line — so it can be parsed
    /// back with the crate's flat-object JSON parser.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 80);
        out.push_str("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            let ph = if ev.begin { "B" } else { "E" };
            let comma = if i + 1 < self.events.len() { "," } else { "" };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"rex\",\"ph\":\"{}\",\"pid\":1,\"tid\":1,\
                 \"ts\":{}.{:03}}}{}\n",
                json::escape(&ev.name),
                ph,
                ev.ts_ns / 1000,
                ev.ts_ns % 1000,
                comma,
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a Chrome trace produced by [`Profile::to_chrome_trace`]
    /// back into a profile.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse_chrome_trace(text: &str) -> Result<Profile, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(first) if first.trim() == "{\"traceEvents\":[" => {}
            other => {
                return Err(format!(
                    "expected {{\"traceEvents\":[ header, got {other:?}"
                ))
            }
        }
        let mut events = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line.trim().trim_end_matches(',');
            if line.is_empty() {
                continue;
            }
            if line == "]}" {
                return Ok(Profile { events });
            }
            let obj =
                json::parse_object(line).map_err(|e| format!("trace event line {}: {e}", i + 2))?;
            let name = obj
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("trace event line {}: missing name", i + 2))?
                .to_owned();
            let begin = match obj.get("ph").and_then(|v| v.as_str()) {
                Some("B") => true,
                Some("E") => false,
                other => {
                    return Err(format!(
                        "trace event line {}: expected ph B or E, got {other:?}",
                        i + 2
                    ))
                }
            };
            let ts_us = obj
                .get("ts")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("trace event line {}: missing ts", i + 2))?;
            events.push(SpanEvent {
                name,
                begin,
                ts_ns: (ts_us * 1000.0).round() as u64,
            });
        }
        Err("unterminated traceEvents array (missing ]})".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(names: &[(&'static str, bool)]) -> Profile {
        let mut c = SpanCollector::new();
        for &(name, begin) in names {
            if begin {
                c.enter(name);
            } else {
                c.exit(name);
            }
        }
        c.finish()
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let p = collect(&[
            ("job", true),
            ("step", true),
            ("forward", true),
            ("forward", false),
            ("backward", true),
            ("backward", false),
            ("step", false),
            ("step", true),
            ("forward", true),
            ("forward", false),
            ("step", false),
            ("job", false),
        ]);
        let rows = p.phase_table();
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        // first-enter order: parents precede children, tree reads top-down
        assert_eq!(
            paths,
            ["job", "job/step", "job/step/forward", "job/step/backward"]
        );
        let by_path = |p: &str| rows.iter().find(|r| r.path == p).unwrap();
        assert_eq!(by_path("job/step").calls, 2);
        assert_eq!(by_path("job/step/forward").calls, 2);
        assert_eq!(by_path("job").calls, 1);
        assert_eq!(by_path("job").depth, 0);
        assert_eq!(by_path("job/step/forward").depth, 2);
        assert!((by_path("job").pct_of_root - 100.0).abs() < 1e-9);
        // inclusive >= exclusive, parents' inclusive >= children's
        for r in &rows {
            assert!(r.inclusive_ns >= r.exclusive_ns, "{}", r.path);
        }
        assert!(by_path("job").inclusive_ns >= by_path("job/step").inclusive_ns);
    }

    #[test]
    #[should_panic(expected = "does not match innermost open span")]
    fn unbalanced_exit_panics_with_the_offending_names() {
        let mut c = SpanCollector::new();
        c.enter("job");
        c.enter("forward");
        c.exit("job");
    }

    #[test]
    #[should_panic(expected = "with no open span")]
    fn exit_without_enter_panics() {
        let mut c = SpanCollector::new();
        c.exit("step");
    }

    #[test]
    fn finish_force_closes_open_spans() {
        let mut c = SpanCollector::new();
        c.enter("job");
        c.enter("step");
        assert_eq!(c.depth(), 2);
        let p = c.finish();
        assert_eq!(p.events.len(), 4);
        assert!(!p.events[2].begin && p.events[2].name == "step");
        assert!(!p.events[3].begin && p.events[3].name == "job");
    }

    #[test]
    fn guard_records_on_early_return() {
        fn early(n: u32) -> u32 {
            let _g = span("early");
            if n < 10 {
                return n; // guard must still close the span here
            }
            n * 2
        }
        enable(Detail::Phase);
        assert_eq!(early(3), 3);
        let p = take();
        assert_eq!(
            p.shape(),
            [("early".to_owned(), true), ("early".to_owned(), false)]
        );
    }

    #[test]
    fn kernel_spans_respect_detail_level() {
        enable(Detail::Phase);
        {
            let _a = span("phase");
            let _b = kernel_span("gemm"); // dropped: below detail level
        }
        let p = take();
        assert_eq!(
            p.shape(),
            [("phase".to_owned(), true), ("phase".to_owned(), false)]
        );

        enable(Detail::Kernel);
        {
            let _a = span("phase");
            let _b = kernel_span("gemm");
        }
        let p = take();
        assert_eq!(p.events.len(), 4);
        assert_eq!(p.events[1].name, "gemm");
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        assert!(!is_enabled());
        {
            let _g = span("ignored");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn chrome_trace_roundtrips_and_is_monotone() {
        enable(Detail::Phase);
        {
            let _job = span("job");
            for _ in 0..3 {
                let _step = span("step");
                let _fwd = span("forward");
            }
        }
        let p = take();
        let text = p.to_chrome_trace();
        assert!(text.starts_with("{\"traceEvents\":[\n"));
        assert!(text.ends_with("]}\n"));
        let parsed = Profile::parse_chrome_trace(&text).unwrap();
        assert_eq!(parsed.shape(), p.shape());
        let mut prev = 0u64;
        let mut depth = 0i64;
        for ev in &parsed.events {
            assert!(ev.ts_ns >= prev, "timestamps must be monotone");
            prev = ev.ts_ns;
            depth += if ev.begin { 1 } else { -1 };
            assert!(depth >= 0, "E before matching B");
        }
        assert_eq!(depth, 0, "every B needs a matching E");
    }

    #[test]
    fn phase_table_renders_aligned_rows() {
        let p = collect(&[
            ("job", true),
            ("step", true),
            ("step", false),
            ("job", false),
        ]);
        let table = p.render_phase_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("phase"));
        assert!(lines[0].contains("%root"));
        assert!(lines[1].starts_with("job"));
        assert!(lines[2].starts_with("  step"), "children are indented");
    }

    #[test]
    fn top_spans_orders_by_exclusive_time() {
        let mut c = SpanCollector::new();
        c.enter("job");
        std::thread::sleep(std::time::Duration::from_millis(2));
        c.enter("fast");
        c.exit("fast");
        c.enter("slow");
        std::thread::sleep(std::time::Duration::from_millis(5));
        c.exit("slow");
        c.exit("job");
        let p = c.finish();
        let top = p.top_spans(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].exclusive_ns >= top[1].exclusive_ns);
        assert_eq!(top[0].name, "slow");
    }

    #[test]
    fn reenable_discards_stale_guards() {
        enable(Detail::Phase);
        let g = span("stale");
        enable(Detail::Phase); // re-arm while a guard is open
        drop(g); // must not exit into the new collector
        {
            let _h = span("fresh");
        }
        let p = take();
        assert_eq!(
            p.shape(),
            [("fresh".to_owned(), true), ("fresh".to_owned(), false)]
        );
    }
}
