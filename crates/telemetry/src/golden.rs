//! Tolerance-checked trace diffing for golden-trace regression tests.
//!
//! Integer fields (steps, epochs, seeds, counter values) and strings must
//! match exactly; float fields are compared under per-field [`Tolerance`]s
//! so golden files survive benign numeric churn (e.g. a re-ordered but
//! mathematically identical reduction) while catching real trajectory
//! drift. Timing fields are never compared.

use crate::event::{Event, StepRecord};

/// Combined relative + absolute tolerance: `|a−b| ≤ abs + rel·max(|a|,|b|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative component.
    pub rel: f64,
    /// Absolute component.
    pub abs: f64,
}

impl Tolerance {
    /// An exact-match tolerance (still treats NaN == NaN).
    pub const EXACT: Tolerance = Tolerance { rel: 0.0, abs: 0.0 };

    /// A pure relative tolerance.
    pub fn rel(rel: f64) -> Self {
        Tolerance { rel, abs: 0.0 }
    }

    /// Whether `a` and `b` agree under this tolerance. Non-finite values
    /// must match bit-class (NaN↔NaN, +∞↔+∞).
    pub fn close(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true;
        }
        if !a.is_finite() || !b.is_finite() {
            return (a.is_nan() && b.is_nan()) || a == b;
        }
        (a - b).abs() <= self.abs + self.rel * a.abs().max(b.abs())
    }
}

/// Per-field tolerances for a whole-trace diff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Applied learning rates (tightest — schedules are closed-form).
    pub lr: Tolerance,
    /// Train/validation losses.
    pub loss: Tolerance,
    /// Gradient/parameter norms.
    pub norm: Tolerance,
    /// Final run metric.
    pub metric: Tolerance,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            lr: Tolerance {
                rel: 1e-6,
                abs: 1e-12,
            },
            loss: Tolerance {
                rel: 5e-3,
                abs: 1e-6,
            },
            norm: Tolerance {
                rel: 5e-3,
                abs: 1e-6,
            },
            metric: Tolerance {
                rel: 5e-3,
                abs: 1e-6,
            },
        }
    }
}

/// The first divergence found between two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Index of the diverging event in the expected trace.
    pub index: usize,
    /// Optimizer step the divergence belongs to, when the event is (or
    /// follows) a step record.
    pub step: Option<u64>,
    /// Dotted field path, e.g. `step.lr` or `len`.
    pub field: String,
    /// Expected value rendered as text.
    pub expected: String,
    /// Actual value rendered as text.
    pub actual: String,
}

impl std::fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace diverges at event {}{}: {} — expected {}, got {}",
            self.index,
            self.step
                .map(|s| format!(" (optimizer step {s})"))
                .unwrap_or_default(),
            self.field,
            self.expected,
            self.actual
        )
    }
}

/// Compares two event traces under per-field tolerances.
///
/// Structure (event count, kinds, integer indices, strings) must match
/// exactly; float fields use `tol`. Wall-clock fields are ignored.
///
/// # Errors
///
/// Returns the first [`TraceDiff`] found, with the optimizer step of the
/// most recent step record for diagnostics.
pub fn diff_traces(
    expected: &[Event],
    actual: &[Event],
    tol: &Tolerances,
) -> Result<(), TraceDiff> {
    let mut last_step: Option<u64> = None;
    let n = expected.len().min(actual.len());
    for i in 0..n {
        if let Event::Step(r) = &expected[i] {
            last_step = Some(r.step);
        }
        diff_event(i, last_step, &expected[i], &actual[i], tol)?;
    }
    if expected.len() != actual.len() {
        return Err(TraceDiff {
            index: n,
            step: last_step,
            field: "len".into(),
            expected: format!("{} events", expected.len()),
            actual: format!("{} events", actual.len()),
        });
    }
    Ok(())
}

fn diff_event(
    index: usize,
    step: Option<u64>,
    expected: &Event,
    actual: &Event,
    tol: &Tolerances,
) -> Result<(), TraceDiff> {
    let fail = |field: &str, exp: String, act: String| {
        Err(TraceDiff {
            index,
            step,
            field: field.to_owned(),
            expected: exp,
            actual: act,
        })
    };
    let exact_u64 = |field: &str, a: u64, b: u64| {
        if a == b {
            Ok(())
        } else {
            fail(field, a.to_string(), b.to_string())
        }
    };
    let exact_str = |field: &str, a: &str, b: &str| {
        if a == b {
            Ok(())
        } else {
            fail(field, format!("{a:?}"), format!("{b:?}"))
        }
    };
    let close = |field: &str, t: Tolerance, a: f64, b: f64| {
        if t.close(a, b) {
            Ok(())
        } else {
            fail(field, format!("{a}"), format!("{b}"))
        }
    };

    match (expected, actual) {
        (
            Event::RunStart {
                run: r1,
                schedule: s1,
                optimizer: o1,
                seed: d1,
                total_samples: t1,
            },
            Event::RunStart {
                run: r2,
                schedule: s2,
                optimizer: o2,
                seed: d2,
                total_samples: t2,
            },
        ) => {
            exact_str("run_start.run", r1, r2)?;
            exact_str("run_start.schedule", s1, s2)?;
            exact_str("run_start.optimizer", o1, o2)?;
            exact_u64("run_start.seed", *d1, *d2)?;
            exact_u64("run_start.total_samples", *t1, *t2)
        }
        (
            Event::Epoch {
                epoch: e1,
                samples: n1,
                batches: b1,
                shuffled: f1,
            },
            Event::Epoch {
                epoch: e2,
                samples: n2,
                batches: b2,
                shuffled: f2,
            },
        ) => {
            exact_u64("epoch.epoch", *e1, *e2)?;
            exact_u64("epoch.samples", *n1, *n2)?;
            exact_u64("epoch.batches", *b1, *b2)?;
            if f1 != f2 {
                return fail("epoch.shuffled", f1.to_string(), f2.to_string());
            }
            Ok(())
        }
        (Event::Step(a), Event::Step(b)) => diff_step(index, a, b, tol),
        (
            Event::Validation {
                epoch: e1,
                loss: l1,
            },
            Event::Validation {
                epoch: e2,
                loss: l2,
            },
        ) => {
            exact_u64("validation.epoch", *e1, *e2)?;
            close("validation.loss", tol.loss, *l1, *l2)
        }
        (
            Event::EpochEnd {
                epoch: e1,
                mean_loss: m1,
                lr: l1,
            },
            Event::EpochEnd {
                epoch: e2,
                mean_loss: m2,
                lr: l2,
            },
        ) => {
            exact_u64("epoch_end.epoch", *e1, *e2)?;
            close("epoch_end.mean_loss", tol.loss, *m1, *m2)?;
            close("epoch_end.lr", tol.lr, *l1, *l2)
        }
        (
            Event::Counter {
                name: n1,
                value: v1,
            },
            Event::Counter {
                name: n2,
                value: v2,
            },
        ) => {
            exact_str("counter.name", n1, n2)?;
            exact_u64("counter.value", *v1, *v2)
        }
        (
            Event::Gauge {
                name: n1,
                value: v1,
            },
            Event::Gauge {
                name: n2,
                value: v2,
            },
        ) => {
            exact_str("gauge.name", n1, n2)?;
            close("gauge.value", tol.norm, *v1, *v2)
        }
        (Event::Timer { name: n1, .. }, Event::Timer { name: n2, .. }) => {
            // elapsed time intentionally not compared
            exact_str("timer.name", n1, n2)
        }
        (Event::RunEnd { metric: m1 }, Event::RunEnd { metric: m2 }) => {
            close("run_end.metric", tol.metric, *m1, *m2)
        }
        (Event::Checkpoint { step: s1 }, Event::Checkpoint { step: s2 }) => {
            exact_u64("checkpoint.step", *s1, *s2)
        }
        (Event::Resume { step: s1 }, Event::Resume { step: s2 }) => {
            exact_u64("resume.step", *s1, *s2)
        }
        (
            Event::GuardTrip {
                step: s1,
                what: w1,
                action: a1,
                ..
            },
            Event::GuardTrip {
                step: s2,
                what: w2,
                action: a2,
                ..
            },
        ) => {
            // the offending value is often NaN, which never compares equal;
            // the (step, what, action) triple identifies the trip
            exact_u64("guard.step", *s1, *s2)?;
            exact_str("guard.what", w1, w2)?;
            exact_str("guard.action", a1, a2)
        }
        (e, a) => fail("kind", e.kind().to_owned(), a.kind().to_owned()),
    }
}

fn diff_step(
    index: usize,
    expected: &StepRecord,
    actual: &StepRecord,
    tol: &Tolerances,
) -> Result<(), TraceDiff> {
    let step = Some(expected.step);
    let fail = |field: &str, exp: String, act: String| {
        Err(TraceDiff {
            index,
            step,
            field: field.to_owned(),
            expected: exp,
            actual: act,
        })
    };
    if expected.step != actual.step {
        return fail(
            "step.step",
            expected.step.to_string(),
            actual.step.to_string(),
        );
    }
    if expected.epoch != actual.epoch {
        return fail(
            "step.epoch",
            expected.epoch.to_string(),
            actual.epoch.to_string(),
        );
    }
    if expected.batch_id != actual.batch_id {
        return fail(
            "step.batch_id",
            expected.batch_id.to_string(),
            actual.batch_id.to_string(),
        );
    }
    for (field, t, a, b) in [
        ("step.lr", tol.lr, expected.lr, actual.lr),
        ("step.loss", tol.loss, expected.loss, actual.loss),
        (
            "step.grad_norm",
            tol.norm,
            expected.grad_norm,
            actual.grad_norm,
        ),
        (
            "step.param_norm",
            tol.norm,
            expected.param_norm,
            actual.param_norm,
        ),
    ] {
        if !t.close(a, b) {
            return fail(field, format!("{a}"), format!("{b}"));
        }
    }
    // elapsed_ns intentionally not compared
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(i: u64, lr: f64, loss: f64) -> Event {
        Event::Step(StepRecord {
            step: i,
            epoch: 0,
            batch_id: i,
            lr,
            loss,
            grad_norm: 1.0,
            param_norm: 2.0,
            elapsed_ns: 7 * i,
        })
    }

    fn trace() -> Vec<Event> {
        vec![
            Event::RunStart {
                run: "digits".into(),
                schedule: "rex".into(),
                optimizer: "adamw".into(),
                seed: 1,
                total_samples: 120,
            },
            step(0, 0.003, 2.3),
            step(1, 0.002, 2.1),
            Event::RunEnd { metric: 0.8 },
        ]
    }

    #[test]
    fn identical_traces_pass() {
        let t = trace();
        diff_traces(&t, &t, &Tolerances::default()).unwrap();
    }

    #[test]
    fn within_tolerance_passes() {
        let expected = trace();
        let mut actual = trace();
        if let Event::Step(r) = &mut actual[2] {
            r.loss *= 1.0 + 1e-4; // inside the 5e-3 loss tolerance
            r.elapsed_ns = 999_999; // timing never compared
        }
        diff_traces(&expected, &actual, &Tolerances::default()).unwrap();
    }

    #[test]
    fn lr_perturbation_reports_first_divergent_step() {
        let expected = trace();
        let mut actual = trace();
        if let Event::Step(r) = &mut actual[2] {
            r.lr *= 1.01;
        }
        let diff = diff_traces(&expected, &actual, &Tolerances::default()).unwrap_err();
        assert_eq!(diff.index, 2);
        assert_eq!(diff.step, Some(1));
        assert_eq!(diff.field, "step.lr");
        let msg = diff.to_string();
        assert!(msg.contains("optimizer step 1"), "{msg}");
    }

    #[test]
    fn length_mismatch_is_reported() {
        let expected = trace();
        let actual = &expected[..3];
        let diff = diff_traces(&expected, actual, &Tolerances::default()).unwrap_err();
        assert_eq!(diff.field, "len");
        assert_eq!(diff.index, 3);
    }

    #[test]
    fn kind_mismatch_is_reported() {
        let expected = trace();
        let mut actual = trace();
        actual[3] = Event::Validation {
            epoch: 0,
            loss: 1.0,
        };
        let diff = diff_traces(&expected, &actual, &Tolerances::default()).unwrap_err();
        assert_eq!(diff.field, "kind");
    }

    #[test]
    fn tolerance_close_semantics() {
        let t = Tolerance {
            rel: 1e-3,
            abs: 0.0,
        };
        assert!(t.close(1.0, 1.0005));
        assert!(!t.close(1.0, 1.002));
        assert!(Tolerance::EXACT.close(f64::NAN, f64::NAN));
        assert!(!Tolerance::EXACT.close(f64::NAN, 1.0));
        assert!(Tolerance::EXACT.close(f64::INFINITY, f64::INFINITY));
        assert!(!Tolerance::EXACT.close(f64::INFINITY, f64::NEG_INFINITY));
        assert!(Tolerance::rel(1e-6).close(2.0, 2.0));
    }
}
