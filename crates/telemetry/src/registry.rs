//! A thread-safe, process-wide metrics registry with Prometheus text
//! rendering.
//!
//! The [`Recorder`] threaded through training loops is deliberately
//! single-threaded (one recorder per run, sinks may hold `Rc`s). A server
//! hosting many concurrent runs needs the opposite: one shared place that
//! every worker thread and every HTTP handler can update, and that a
//! `/metrics` endpoint can render at any instant. [`MetricsRegistry`] is
//! that place — monotone counters, point-in-time gauges, and log-bucketed
//! duration [`Histogram`]s behind a single mutex, rendered in the
//! Prometheus text exposition format (`_bucket`/`_sum`/`_count` series,
//! so p50/p90/p99 are derivable by any Prometheus client).
//!
//! [`RegistrySink`] bridges the two worlds: it is a [`Sink`] that folds a
//! run's deterministic event stream into a shared registry (steps into a
//! counter, gauges into gauges, timers into histograms), so a per-job
//! recorder can feed both its JSONL trace and the server's `/metrics` via
//! [`FanoutSink`].
//!
//! [`Recorder`]: crate::Recorder

use crate::event::Event;
use crate::hist::Histogram;
use crate::json;
use crate::sink::Sink;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Running summary of an observed duration series.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimerStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in nanoseconds.
    pub sum_ns: u64,
    /// Smallest observation, in nanoseconds.
    pub min_ns: u64,
    /// Largest observation, in nanoseconds.
    pub max_ns: u64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timers: BTreeMap<String, Histogram>,
}

/// Thread-safe counters, gauges, and timer histograms.
///
/// Metric names should be valid Prometheus identifiers
/// (`[a-zA-Z_][a-zA-Z0-9_]*`); [`MetricsRegistry::render_prometheus`]
/// sanitizes other characters to `_`. By convention counters end in
/// `_total`.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
    summary_compat: AtomicBool,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// A shared, clonable registry handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `delta` to the named monotone counter.
    pub fn counter_inc(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Adds `delta` (possibly negative) to the named gauge.
    pub fn gauge_add(&self, name: &str, delta: f64) {
        *self.lock().gauges.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// Current value of a gauge (0 if never set).
    pub fn gauge(&self, name: &str) -> f64 {
        self.lock().gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Records one duration observation under `name`.
    pub fn timer_observe_ns(&self, name: &str, elapsed_ns: u64) {
        let mut inner = self.lock();
        inner
            .timers
            .entry(name.to_owned())
            .or_default()
            .observe_ns(elapsed_ns);
    }

    /// Summary of a timer series, if it has any observations.
    pub fn timer(&self, name: &str) -> Option<TimerStat> {
        self.lock().timers.get(name).map(Histogram::stat)
    }

    /// Full histogram of a timer series, if it has any observations.
    pub fn timer_histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().timers.get(name).cloned()
    }

    /// Estimated `q`-quantile of a timer series, in seconds.
    pub fn timer_quantile_seconds(&self, name: &str, q: f64) -> Option<f64> {
        self.lock()
            .timers
            .get(name)
            .map(|h| h.quantile_ns(q) as f64 * 1e-9)
    }

    /// Additionally emits the deprecated `_min_seconds` / `_max_seconds`
    /// summary gauges next to each timer histogram. One-release bridge
    /// for scrapers of the pre-histogram names; off by default.
    pub fn set_summary_compat(&self, on: bool) {
        self.summary_compat.store(on, Ordering::Relaxed);
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// counters and gauges as single samples, timers as histograms with
    /// cumulative `_bucket{le="..."}` series plus `_sum` / `_count`
    /// (seconds). With [`MetricsRegistry::set_summary_compat`] enabled,
    /// the deprecated `_min_seconds` / `_max_seconds` gauges of the old
    /// summary form are appended after each histogram. Output is
    /// deterministic (sorted by metric name).
    pub fn render_prometheus(&self) -> String {
        let compat = self.summary_compat.load(Ordering::Relaxed);
        let inner = self.lock();
        let mut out = String::with_capacity(512);
        for (name, value) in &inner.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &inner.gauges {
            let name = sanitize(name);
            out.push_str(&format!(
                "# TYPE {name} gauge\n{name} {}\n",
                json::fmt_f64(*value)
            ));
        }
        for (name, hist) in &inner.timers {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name}_seconds histogram\n"));
            for (bound, cum) in hist.cumulative_buckets() {
                let le = if bound.is_infinite() {
                    "+Inf".to_owned()
                } else {
                    json::fmt_f64(bound)
                };
                out.push_str(&format!("{name}_seconds_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            let stat = hist.stat();
            out.push_str(&format!(
                "{name}_seconds_sum {}\n{name}_seconds_count {}\n",
                json::fmt_f64(stat.sum_ns as f64 * 1e-9),
                stat.count,
            ));
            if compat {
                out.push_str(&format!(
                    "# TYPE {name}_min_seconds gauge\n\
                     {name}_min_seconds {}\n\
                     # TYPE {name}_max_seconds gauge\n\
                     {name}_max_seconds {}\n",
                    json::fmt_f64(stat.min_ns as f64 * 1e-9),
                    json::fmt_f64(stat.max_ns as f64 * 1e-9),
                ));
            }
        }
        out
    }
}

/// Replaces any character outside `[a-zA-Z0-9_]` with `_` (and prefixes
/// `_` when the name would start with a digit), yielding a valid
/// Prometheus metric name.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// A [`Sink`] that folds a run's event stream into a shared
/// [`MetricsRegistry`]:
///
/// * every [`Event::Step`] increments `rex_train_steps_total`;
/// * [`Event::Gauge`]s are written through under their sanitized name;
/// * [`Event::Timer`]s become timer observations;
/// * [`Event::RunEnd`] increments `rex_train_runs_total`;
/// * guard trips increment `rex_train_guard_trips_total`.
///
/// Recorder counters (cumulative within one run) are *not* folded — they
/// would double-count across runs sharing a registry.
#[derive(Debug)]
pub struct RegistrySink {
    registry: Arc<MetricsRegistry>,
}

impl RegistrySink {
    /// A sink feeding `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        RegistrySink { registry }
    }
}

impl Sink for RegistrySink {
    fn record(&mut self, event: &Event) {
        match event {
            Event::Step(_) => self.registry.counter_inc("rex_train_steps_total", 1),
            Event::Gauge { name, value } => self.registry.gauge_set(name, *value),
            Event::Timer { name, elapsed_ns } => {
                self.registry.timer_observe_ns(name, *elapsed_ns);
            }
            Event::RunEnd { .. } => self.registry.counter_inc("rex_train_runs_total", 1),
            Event::GuardTrip { .. } => {
                self.registry.counter_inc("rex_train_guard_trips_total", 1);
            }
            _ => {}
        }
    }
}

/// Broadcasts every event to several sinks in order — e.g. a job's JSONL
/// trace plus a server-wide [`RegistrySink`].
pub struct FanoutSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl FanoutSink {
    /// A fanout over `sinks` (events are delivered in vector order).
    pub fn new(sinks: Vec<Box<dyn Sink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl Sink for FanoutSink {
    fn record(&mut self, event: &Event) {
        for sink in &mut self.sinks {
            sink.record(event);
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StepRecord;
    use crate::sink::MemorySink;

    fn step(i: u64) -> Event {
        Event::Step(StepRecord {
            step: i,
            epoch: 0,
            batch_id: i,
            lr: 0.1,
            loss: 1.0,
            grad_norm: 0.5,
            param_norm: 2.0,
            elapsed_ns: 10,
        })
    }

    #[test]
    fn counters_gauges_timers_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter_inc("rex_jobs_submitted_total", 2);
        reg.counter_inc("rex_jobs_submitted_total", 3);
        assert_eq!(reg.counter("rex_jobs_submitted_total"), 5);
        assert_eq!(reg.counter("missing"), 0);

        reg.gauge_set("rex_queue_depth", 4.0);
        reg.gauge_add("rex_queue_depth", -1.0);
        assert_eq!(reg.gauge("rex_queue_depth"), 3.0);

        reg.timer_observe_ns("rex_job_duration", 100);
        reg.timer_observe_ns("rex_job_duration", 40);
        reg.timer_observe_ns("rex_job_duration", 160);
        let stat = reg.timer("rex_job_duration").unwrap();
        assert_eq!(stat.count, 3);
        assert_eq!(stat.sum_ns, 300);
        assert_eq!(stat.min_ns, 40);
        assert_eq!(stat.max_ns, 160);
        assert!(reg.timer("missing").is_none());
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter_inc("b_total", 1);
        reg.counter_inc("a_total", 2);
        reg.gauge_set("depth", 1.5);
        reg.timer_observe_ns("lat", 2_000_000_000);
        let text = reg.render_prometheus();
        assert_eq!(text, reg.render_prometheus(), "rendering must be stable");
        let lines: Vec<&str> = text.lines().collect();
        // counters sorted, then gauges, then timers
        assert_eq!(lines[0], "# TYPE a_total counter");
        assert_eq!(lines[1], "a_total 2");
        assert_eq!(lines[2], "# TYPE b_total counter");
        assert_eq!(lines[3], "b_total 1");
        assert!(text.contains("# TYPE depth gauge\ndepth 1.5\n"));
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_seconds_count 1\n"));
        assert!(text.contains("lat_seconds_sum 2\n"));
        // compat mode off: the deprecated summary gauges stay out
        assert!(!text.contains("lat_min_seconds"));
    }

    #[test]
    fn histogram_rendering_exposes_buckets_and_quantiles() {
        let reg = MetricsRegistry::new();
        // 9 fast (2 µs) + 1 slow (1 s) observation
        for _ in 0..9 {
            reg.timer_observe_ns("lat", 2_000);
        }
        reg.timer_observe_ns("lat", 1_000_000_000);
        let text = reg.render_prometheus();
        // cumulative bucket series: the 2 µs bucket holds 9, +Inf all 10
        assert!(text.contains("lat_seconds_bucket{le=\"0.000002048\"} 9\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 10\n"));
        assert!(text.contains("lat_seconds_count 10\n"));
        // p50/p99 derivable from the same data via the registry API
        let p50 = reg.timer_quantile_seconds("lat", 0.50).unwrap();
        let p99 = reg.timer_quantile_seconds("lat", 0.99).unwrap();
        assert!(p50 < 0.001, "p50 = {p50}");
        assert!(p99 > 0.1, "p99 = {p99}");
        assert!(reg.timer_histogram("lat").unwrap().count() == 10);
    }

    #[test]
    fn summary_compat_appends_min_max_gauges() {
        let reg = MetricsRegistry::new();
        reg.timer_observe_ns("lat", 2_000_000_000);
        reg.set_summary_compat(true);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("# TYPE lat_min_seconds gauge\nlat_min_seconds 2\n"));
        assert!(text.contains("# TYPE lat_max_seconds gauge\nlat_max_seconds 2\n"));
        reg.set_summary_compat(false);
        assert!(!reg.render_prometheus().contains("lat_min_seconds"));
    }

    #[test]
    fn metric_names_are_sanitized() {
        let reg = MetricsRegistry::new();
        reg.counter_inc("train/steps.total", 1);
        reg.gauge_set("1weird", 0.0);
        let text = reg.render_prometheus();
        assert!(text.contains("train_steps_total 1"));
        assert!(text.contains("_1weird 0"));
    }

    #[test]
    fn registry_sink_folds_events() {
        let reg = MetricsRegistry::shared();
        let mut sink = RegistrySink::new(Arc::clone(&reg));
        sink.record(&step(0));
        sink.record(&step(1));
        sink.record(&Event::Gauge {
            name: "optim/update_norm".into(),
            value: 0.25,
        });
        sink.record(&Event::Timer {
            name: "epoch".into(),
            elapsed_ns: 7,
        });
        sink.record(&Event::RunEnd { metric: 1.0 });
        sink.record(&Event::GuardTrip {
            step: 3,
            what: "loss".into(),
            value: f64::NAN,
            action: "skip".into(),
        });
        assert_eq!(reg.counter("rex_train_steps_total"), 2);
        assert_eq!(reg.counter("rex_train_runs_total"), 1);
        assert_eq!(reg.counter("rex_train_guard_trips_total"), 1);
        assert_eq!(reg.gauge("optim/update_norm"), 0.25);
        assert_eq!(reg.timer("epoch").unwrap().count, 1);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = MetricsRegistry::shared();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    reg.counter_inc("spins_total", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("spins_total"), 4000);
    }

    #[test]
    fn fanout_delivers_to_every_sink() {
        let a = MemorySink::unbounded();
        let ha = a.handle();
        let b = MemorySink::unbounded();
        let hb = b.handle();
        let mut tee = FanoutSink::new(vec![Box::new(a), Box::new(b)]);
        tee.record(&step(0));
        tee.record(&Event::RunEnd { metric: 0.0 });
        tee.flush();
        assert_eq!(ha.len(), 2);
        assert_eq!(hb.len(), 2);
    }
}
