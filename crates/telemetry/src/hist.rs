//! Log-bucketed duration histograms.
//!
//! The registry's original [`TimerStat`] kept count/sum/min/max — enough
//! for a mean, useless for tail latency. This module adds an HDR-style
//! histogram with *fixed, power-of-two bucket boundaries*: bucket `i`
//! covers `(2^(i+MIN_POW-1), 2^(i+MIN_POW)]` nanoseconds, spanning 1 µs to
//! ~69 s, plus an overflow bucket. Fixed boundaries make two histograms
//! mergeable bucket-by-bucket and make the rendered `/metrics` output a
//! pure function of the observations — no state-dependent resizing.
//!
//! Exact `count`, `sum`, `min`, and `max` are carried alongside the
//! buckets, so the old summary view stays derivable and quantile
//! estimates can be clamped into the true observed range.
//!
//! [`TimerStat`]: crate::registry::TimerStat

use crate::registry::TimerStat;

/// Smallest bucketed power: bucket 0 holds observations `<= 2^MIN_POW` ns
/// (1.024 µs — below timer resolution for everything we measure).
const MIN_POW: u32 = 10;
/// Largest bucketed power: `2^MAX_POW` ns ≈ 68.7 s.
const MAX_POW: u32 = 36;
/// Finite buckets; one more slot holds the `+Inf` overflow.
const N_BUCKETS: usize = (MAX_POW - MIN_POW + 1) as usize;

/// A log-bucketed histogram of durations in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS + 1],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; N_BUCKETS + 1],
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
        }
    }
}

/// Index of the finite bucket holding `ns`, or `N_BUCKETS` for overflow.
fn bucket_index(ns: u64) -> usize {
    if ns <= (1 << MIN_POW) {
        return 0;
    }
    // smallest p with ns <= 2^p, i.e. ceil(log2(ns)) for ns > 1
    let p = 64 - (ns - 1).leading_zeros();
    if p > MAX_POW {
        N_BUCKETS
    } else {
        (p - MIN_POW) as usize
    }
}

/// Inclusive upper bound of finite bucket `i`, in nanoseconds.
fn bucket_bound_ns(i: usize) -> u64 {
    1u64 << (MIN_POW + i as u32)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn observe_ns(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Folds `other` into `self` bucket-by-bucket (boundaries are fixed,
    /// so merging is exact).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        if self.count == 0 {
            self.min_ns = other.min_ns;
            self.max_ns = other.max_ns;
        } else {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Smallest observation, in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        self.min_ns
    }

    /// Largest observation, in nanoseconds (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The flat summary view ([`TimerStat`]) of this histogram.
    pub fn stat(&self) -> TimerStat {
        TimerStat {
            count: self.count,
            sum_ns: self.sum_ns,
            min_ns: self.min_ns,
            max_ns: self.max_ns,
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) in nanoseconds.
    ///
    /// Walks the cumulative bucket counts to the target rank and linearly
    /// interpolates within the bucket, then clamps into the exact
    /// observed `[min, max]` range. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lower = if i == 0 { 0 } else { bucket_bound_ns(i - 1) };
                let upper = if i < N_BUCKETS {
                    bucket_bound_ns(i)
                } else {
                    self.max_ns.max(lower)
                };
                let frac = (target - seen) as f64 / c as f64;
                let est = lower as f64 + frac * (upper - lower) as f64;
                return (est as u64).clamp(self.min_ns, self.max_ns);
            }
            seen += c;
        }
        self.max_ns
    }

    /// Cumulative bucket counts as `(upper_bound_seconds, count)` pairs in
    /// ascending bound order, ending with the `+Inf` total. Empty buckets
    /// between occupied ones are included (Prometheus requires cumulative
    /// monotone series); fully trailing-empty finite buckets above the
    /// maximum observation are elided to keep `/metrics` compact.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        let last = if self.count == 0 {
            0
        } else {
            bucket_index(self.max_ns).min(N_BUCKETS - 1)
        };
        for i in 0..=last {
            cum += self.buckets[i];
            out.push((bucket_bound_ns(i) as f64 * 1e-9, cum));
        }
        out.push((f64::INFINITY, self.count));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        // exactly-on-boundary values land in the lower bucket
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1024), 0);
        assert_eq!(bucket_index(1025), 1);
        assert_eq!(bucket_index(2048), 1);
        assert_eq!(bucket_index(2049), 2);
        assert_eq!(bucket_index(1 << 36), N_BUCKETS - 1);
        assert_eq!(bucket_index((1 << 36) + 1), N_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS);
    }

    #[test]
    fn exact_stats_survive_bucketing() {
        let mut h = Histogram::new();
        for ns in [500, 1500, 3000, 3000, 1 << 20] {
            h.observe_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 500 + 1500 + 3000 + 3000 + (1 << 20));
        assert_eq!(h.min_ns(), 500);
        assert_eq!(h.max_ns(), 1 << 20);
        let s = h.stat();
        assert_eq!(s.count, 5);
        assert_eq!(s.min_ns, 500);
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        // 90 fast observations (~2 µs) and 10 slow (~1 ms)
        for _ in 0..90 {
            h.observe_ns(2_000);
        }
        for _ in 0..10 {
            h.observe_ns(1_000_000);
        }
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        assert!((1_000..=4_096).contains(&p50), "p50 = {p50}");
        assert!((500_000..=1_048_576).contains(&p99), "p99 = {p99}");
        assert!(h.quantile_ns(0.0) >= h.min_ns());
        assert_eq!(h.quantile_ns(1.0), 1_000_000);
    }

    #[test]
    fn merge_equals_observing_the_union() {
        let samples_a = [1_000u64, 5_000, 9_999, 1 << 30];
        let samples_b = [2u64, 70_000, 70_000];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut u = Histogram::new();
        for &s in &samples_a {
            a.observe_ns(s);
            u.observe_ns(s);
        }
        for &s in &samples_b {
            b.observe_ns(s);
            u.observe_ns(s);
        }
        a.merge(&b);
        assert_eq!(a, u);
        // merging an empty histogram is a no-op
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        // merging INTO an empty histogram copies
        let mut e = Histogram::new();
        e.merge(&u);
        assert_eq!(e, u);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let mut h = Histogram::new();
        for ns in [100, 10_000, 1_000_000, u64::MAX] {
            h.observe_ns(ns);
        }
        let buckets = h.cumulative_buckets();
        let mut prev = 0;
        for &(bound, c) in &buckets {
            assert!(bound > 0.0);
            assert!(c >= prev, "cumulative counts must be monotone");
            prev = c;
        }
        let (last_bound, last_count) = *buckets.last().unwrap();
        assert!(last_bound.is_infinite());
        assert_eq!(last_count, 4);
    }

    #[test]
    fn empty_histogram_renders_a_single_inf_bucket() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        let buckets = h.cumulative_buckets();
        // lone finite bucket 0 plus +Inf
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets.last().unwrap().1, 0);
    }
}
