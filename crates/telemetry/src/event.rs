//! The telemetry event vocabulary and its JSONL serialization.

use crate::json::{self, Value};
use std::collections::BTreeMap;

/// One optimizer step, as observed by the training loop.
///
/// `elapsed_ns` is the only non-deterministic field; it is excluded from
/// JSONL output unless timing is explicitly enabled, so same-seed traces
/// serialize byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Zero-based optimizer-step index within the run.
    pub step: u64,
    /// Zero-based epoch the step belongs to.
    pub epoch: u64,
    /// Zero-based batch index within the epoch.
    pub batch_id: u64,
    /// Learning rate applied for this step.
    pub lr: f64,
    /// Mini-batch training loss.
    pub loss: f64,
    /// Global gradient norm before clipping (0 when not instrumented).
    pub grad_norm: f64,
    /// Global parameter norm after the update (0 when not instrumented).
    pub param_norm: f64,
    /// Wall-clock duration of the step in nanoseconds (timing-only field).
    pub elapsed_ns: u64,
}

/// A single telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A run began.
    RunStart {
        /// Human-readable run label (task / cell name).
        run: String,
        /// Schedule name driving the learning rate.
        schedule: String,
        /// Optimizer name.
        optimizer: String,
        /// Prng seed for the run.
        seed: u64,
        /// Total training samples across the budgeted horizon
        /// (`dataset len × budgeted epochs`).
        total_samples: u64,
    },
    /// An epoch began.
    Epoch {
        /// Zero-based epoch index.
        epoch: u64,
        /// Number of samples the loader will serve this epoch.
        samples: u64,
        /// Number of mini-batches this epoch.
        batches: u64,
        /// Whether the loader shuffled before batching.
        shuffled: bool,
    },
    /// One optimizer step.
    Step(StepRecord),
    /// A validation pass finished.
    Validation {
        /// Epoch after which validation ran.
        epoch: u64,
        /// Validation loss (or proxy metric) observed.
        loss: f64,
    },
    /// An epoch finished.
    EpochEnd {
        /// Zero-based epoch index.
        epoch: u64,
        /// Mean training loss across the epoch.
        mean_loss: f64,
        /// Learning rate in effect at the end of the epoch.
        lr: f64,
    },
    /// A monotone counter's cumulative value.
    Counter {
        /// Counter name, e.g. `train/steps`.
        name: String,
        /// Cumulative value after the increment.
        value: u64,
    },
    /// A point-in-time measurement.
    Gauge {
        /// Gauge name, e.g. `optim/update_norm`.
        name: String,
        /// Observed value.
        value: f64,
    },
    /// A scoped wall-clock timer fired (timing-only event).
    Timer {
        /// Timer name, e.g. `epoch/forward`.
        name: String,
        /// Elapsed wall-clock nanoseconds.
        elapsed_ns: u64,
    },
    /// A full training-state snapshot was written.
    Checkpoint {
        /// Optimizer step count at the snapshot (steps completed).
        step: u64,
    },
    /// The run resumed from a snapshot (operational event: excluded from
    /// deterministic traces so a resumed run's JSONL stays byte-identical
    /// to the uninterrupted run's).
    Resume {
        /// Optimizer step count the snapshot restored to.
        step: u64,
    },
    /// A numeric guard observed a non-finite loss or gradient
    /// (operational event, like [`Event::Resume`]).
    GuardTrip {
        /// Optimizer step at which the guard fired.
        step: u64,
        /// What was non-finite: `"loss"` or `"grad:<param>"`.
        what: String,
        /// The offending value (serialized as null — JSON has no NaN).
        value: f64,
        /// Policy applied: `"abort"`, `"skip"`, or `"rollback"`.
        action: String,
    },
    /// A run finished.
    RunEnd {
        /// Final scalar metric for the run (accuracy, ELBO, mAP, ...).
        metric: f64,
    },
}

impl Event {
    /// Serializes the event as one JSON line (no trailing newline).
    ///
    /// Wall-clock fields are included only when `include_timing` is true;
    /// with it false, [`Event::Timer`] events return `None` and
    /// `elapsed_ns` is omitted from step records, making same-seed traces
    /// byte-identical.
    pub fn to_jsonl(&self, include_timing: bool) -> Option<String> {
        let mut s = String::with_capacity(96);
        match self {
            Event::RunStart {
                run,
                schedule,
                optimizer,
                seed,
                total_samples,
            } => {
                s.push_str(&format!(
                    "{{\"ev\":\"run_start\",\"run\":\"{}\",\"schedule\":\"{}\",\"optimizer\":\"{}\",\"seed\":{seed},\"total_samples\":{total_samples}}}",
                    json::escape(run),
                    json::escape(schedule),
                    json::escape(optimizer),
                ));
            }
            Event::Epoch {
                epoch,
                samples,
                batches,
                shuffled,
            } => {
                s.push_str(&format!(
                    "{{\"ev\":\"epoch\",\"epoch\":{epoch},\"samples\":{samples},\"batches\":{batches},\"shuffled\":{shuffled}}}"
                ));
            }
            Event::Step(r) => {
                s.push_str(&format!(
                    "{{\"ev\":\"step\",\"step\":{},\"epoch\":{},\"batch_id\":{},\"lr\":{},\"loss\":{},\"grad_norm\":{},\"param_norm\":{}",
                    r.step,
                    r.epoch,
                    r.batch_id,
                    json::fmt_f64(r.lr),
                    json::fmt_f64(r.loss),
                    json::fmt_f64(r.grad_norm),
                    json::fmt_f64(r.param_norm),
                ));
                if include_timing {
                    s.push_str(&format!(",\"elapsed_ns\":{}", r.elapsed_ns));
                }
                s.push('}');
            }
            Event::Validation { epoch, loss } => {
                s.push_str(&format!(
                    "{{\"ev\":\"validation\",\"epoch\":{epoch},\"loss\":{}}}",
                    json::fmt_f64(*loss)
                ));
            }
            Event::EpochEnd {
                epoch,
                mean_loss,
                lr,
            } => {
                s.push_str(&format!(
                    "{{\"ev\":\"epoch_end\",\"epoch\":{epoch},\"mean_loss\":{},\"lr\":{}}}",
                    json::fmt_f64(*mean_loss),
                    json::fmt_f64(*lr)
                ));
            }
            Event::Counter { name, value } => {
                s.push_str(&format!(
                    "{{\"ev\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                    json::escape(name)
                ));
            }
            Event::Gauge { name, value } => {
                s.push_str(&format!(
                    "{{\"ev\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                    json::escape(name),
                    json::fmt_f64(*value)
                ));
            }
            Event::Timer { name, elapsed_ns } => {
                if !include_timing {
                    return None;
                }
                s.push_str(&format!(
                    "{{\"ev\":\"timer\",\"name\":\"{}\",\"elapsed_ns\":{elapsed_ns}}}",
                    json::escape(name)
                ));
            }
            Event::Checkpoint { step } => {
                s.push_str(&format!("{{\"ev\":\"checkpoint\",\"step\":{step}}}"));
            }
            Event::Resume { step } => {
                if !include_timing {
                    return None;
                }
                s.push_str(&format!("{{\"ev\":\"resume\",\"step\":{step}}}"));
            }
            Event::GuardTrip {
                step,
                what,
                value,
                action,
            } => {
                if !include_timing {
                    return None;
                }
                s.push_str(&format!(
                    "{{\"ev\":\"guard\",\"step\":{step},\"what\":\"{}\",\"value\":{},\"action\":\"{}\"}}",
                    json::escape(what),
                    json::fmt_f64(*value),
                    json::escape(action)
                ));
            }
            Event::RunEnd { metric } => {
                s.push_str(&format!(
                    "{{\"ev\":\"run_end\",\"metric\":{}}}",
                    json::fmt_f64(*metric)
                ));
            }
        }
        Some(s)
    }

    /// True for events describing the *mechanics* of a run (timers,
    /// resume markers, guard trips) rather than its deterministic
    /// trajectory. Operational events are excluded from trace encoding
    /// unless timing is enabled, so they never perturb byte-identity of
    /// same-seed or resumed traces.
    pub fn is_operational(&self) -> bool {
        matches!(
            self,
            Event::Timer { .. } | Event::Resume { .. } | Event::GuardTrip { .. }
        )
    }

    /// Parses one JSON line back into an event.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on malformed input.
    pub fn parse_jsonl(line: &str) -> Result<Event, String> {
        let map = json::parse_object(line)?;
        let kind = req_str(&map, "ev")?;
        match kind.as_str() {
            "run_start" => Ok(Event::RunStart {
                run: req_str(&map, "run")?,
                schedule: req_str(&map, "schedule")?,
                optimizer: req_str(&map, "optimizer")?,
                seed: req_u64(&map, "seed")?,
                total_samples: req_u64(&map, "total_samples")?,
            }),
            "epoch" => Ok(Event::Epoch {
                epoch: req_u64(&map, "epoch")?,
                samples: req_u64(&map, "samples")?,
                batches: req_u64(&map, "batches")?,
                shuffled: map
                    .get("shuffled")
                    .and_then(Value::as_bool)
                    .ok_or("epoch: missing bool field shuffled")?,
            }),
            "step" => Ok(Event::Step(StepRecord {
                step: req_u64(&map, "step")?,
                epoch: req_u64(&map, "epoch")?,
                batch_id: req_u64(&map, "batch_id")?,
                lr: req_f64(&map, "lr")?,
                loss: req_f64(&map, "loss")?,
                grad_norm: req_f64(&map, "grad_norm")?,
                param_norm: req_f64(&map, "param_norm")?,
                // absent when timing was excluded at serialization time
                elapsed_ns: map.get("elapsed_ns").and_then(Value::as_u64).unwrap_or(0),
            })),
            "validation" => Ok(Event::Validation {
                epoch: req_u64(&map, "epoch")?,
                loss: req_f64(&map, "loss")?,
            }),
            "epoch_end" => Ok(Event::EpochEnd {
                epoch: req_u64(&map, "epoch")?,
                mean_loss: req_f64(&map, "mean_loss")?,
                lr: req_f64(&map, "lr")?,
            }),
            "counter" => Ok(Event::Counter {
                name: req_str(&map, "name")?,
                value: req_u64(&map, "value")?,
            }),
            "gauge" => Ok(Event::Gauge {
                name: req_str(&map, "name")?,
                value: req_f64(&map, "value")?,
            }),
            "timer" => Ok(Event::Timer {
                name: req_str(&map, "name")?,
                elapsed_ns: req_u64(&map, "elapsed_ns")?,
            }),
            "checkpoint" => Ok(Event::Checkpoint {
                step: req_u64(&map, "step")?,
            }),
            "resume" => Ok(Event::Resume {
                step: req_u64(&map, "step")?,
            }),
            "guard" => Ok(Event::GuardTrip {
                step: req_u64(&map, "step")?,
                what: req_str(&map, "what")?,
                value: req_f64(&map, "value")?,
                action: req_str(&map, "action")?,
            }),
            "run_end" => Ok(Event::RunEnd {
                metric: req_f64(&map, "metric")?,
            }),
            other => Err(format!("unknown event kind {other:?}")),
        }
    }

    /// Short kind tag, matching the `"ev"` discriminant in JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::Epoch { .. } => "epoch",
            Event::Step(_) => "step",
            Event::Validation { .. } => "validation",
            Event::EpochEnd { .. } => "epoch_end",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Timer { .. } => "timer",
            Event::Checkpoint { .. } => "checkpoint",
            Event::Resume { .. } => "resume",
            Event::GuardTrip { .. } => "guard",
            Event::RunEnd { .. } => "run_end",
        }
    }

    /// The step record, if this is a step event.
    pub fn as_step(&self) -> Option<&StepRecord> {
        match self {
            Event::Step(r) => Some(r),
            _ => None,
        }
    }
}

fn req_str(map: &BTreeMap<String, Value>, key: &str) -> Result<String, String> {
    map.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn req_u64(map: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    map.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

fn req_f64(map: &BTreeMap<String, Value>, key: &str) -> Result<f64, String> {
    map.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing number field {key:?}"))
}

/// Serializes a slice of events as a JSONL document (newline-terminated
/// lines; timer-only events dropped unless `include_timing`).
pub fn encode_trace(events: &[Event], include_timing: bool) -> String {
    let mut out = String::new();
    for ev in events {
        if let Some(line) = ev.to_jsonl(include_timing) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Parses a JSONL document (one event per non-empty line) back into events.
///
/// # Errors
///
/// Returns `line <n>: <cause>` for the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = Event::parse_jsonl(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStart {
                run: "digits".into(),
                schedule: "rex".into(),
                optimizer: "adamw".into(),
                seed: 7,
                total_samples: 480,
            },
            Event::Epoch {
                epoch: 0,
                samples: 60,
                batches: 4,
                shuffled: true,
            },
            Event::Step(StepRecord {
                step: 0,
                epoch: 0,
                batch_id: 0,
                lr: 0.003,
                loss: 2.302,
                grad_norm: 1.25,
                param_norm: 10.5,
                elapsed_ns: 42_000,
            }),
            Event::Validation {
                epoch: 0,
                loss: 2.1,
            },
            Event::EpochEnd {
                epoch: 0,
                mean_loss: 2.25,
                lr: 0.0028,
            },
            Event::Counter {
                name: "train/steps".into(),
                value: 4,
            },
            Event::Gauge {
                name: "optim/update_norm".into(),
                value: 0.007,
            },
            Event::Timer {
                name: "epoch".into(),
                elapsed_ns: 1_000_000,
            },
            Event::Checkpoint { step: 4 },
            Event::Resume { step: 4 },
            Event::GuardTrip {
                step: 5,
                what: "grad:m.fc0.weight".into(),
                value: 7.5, // finite so the roundtrip compares equal
                action: "skip".into(),
            },
            Event::RunEnd { metric: 0.85 },
        ]
    }

    #[test]
    fn roundtrip_with_timing() {
        let events = sample_events();
        let text = encode_trace(&events, true);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn timing_excluded_by_default() {
        let events = sample_events();
        let text = encode_trace(&events, false);
        assert!(!text.contains("elapsed_ns"), "{text}");
        let parsed = parse_trace(&text).unwrap();
        // the operational events (timer, resume, guard) are dropped and
        // step elapsed_ns zeroed; the checkpoint marker survives
        let dropped = events.iter().filter(|e| e.is_operational()).count();
        assert_eq!(dropped, 3);
        assert_eq!(parsed.len(), events.len() - dropped);
        assert_eq!(parsed[2].as_step().unwrap().elapsed_ns, 0);
        assert!(text.contains("\"ev\":\"checkpoint\""), "{text}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let ev = Event::Gauge {
            name: "g".into(),
            value: f64::NAN,
        };
        let line = ev.to_jsonl(false).unwrap();
        assert!(line.contains("\"value\":null"), "{line}");
        match Event::parse_jsonl(&line).unwrap() {
            Event::Gauge { value, .. } => assert!(value.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = parse_trace("{\"ev\":\"step\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = parse_trace("{\"ev\":\"nope\"}\n").unwrap_err();
        assert!(err.contains("unknown event kind"), "{err}");
    }

    #[test]
    fn kind_tags_match_serialization() {
        for ev in sample_events() {
            let line = ev.to_jsonl(true).unwrap();
            assert!(
                line.starts_with(&format!("{{\"ev\":\"{}\"", ev.kind())),
                "{line}"
            );
        }
    }
}
