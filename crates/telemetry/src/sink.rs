//! Pluggable telemetry backends.

use crate::event::Event;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

/// A telemetry backend that consumes [`Event`]s from a [`Recorder`].
///
/// [`Recorder`]: crate::Recorder
pub trait Sink {
    /// Consume one event.
    fn record(&mut self, event: &Event);
    /// Flush any buffered output (default: no-op).
    fn flush(&mut self) {}
}

/// A sink that discards everything.
///
/// Useful when an API requires a boxed sink but the caller wants none; for
/// hot loops prefer [`Recorder::disabled`], whose `None` branch the
/// optimizer removes entirely.
///
/// [`Recorder::disabled`]: crate::Recorder::disabled
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    fn record(&mut self, _event: &Event) {}
}

/// Shared, cloneable view into a [`MemorySink`]'s buffer.
///
/// The sink itself is moved into the [`Recorder`], so tests keep a handle
/// to read events back while the recorder is live.
///
/// [`Recorder`]: crate::Recorder
#[derive(Debug, Clone)]
pub struct MemoryHandle {
    buf: Rc<RefCell<VecDeque<Event>>>,
}

impl MemoryHandle {
    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.borrow().iter().cloned().collect()
    }

    /// Snapshot of the buffered step records, oldest first.
    pub fn steps(&self) -> Vec<crate::StepRecord> {
        self.buf
            .borrow()
            .iter()
            .filter_map(|ev| ev.as_step().cloned())
            .collect()
    }

    /// Drops all buffered events.
    pub fn clear(&self) {
        self.buf.borrow_mut().clear();
    }
}

/// In-memory ring buffer sink for tests and interactive inspection.
///
/// With a capacity, the oldest events are evicted once full; unbounded
/// buffers keep everything.
#[derive(Debug)]
pub struct MemorySink {
    buf: Rc<RefCell<VecDeque<Event>>>,
    capacity: Option<usize>,
}

impl MemorySink {
    /// A ring buffer keeping at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            buf: Rc::new(RefCell::new(VecDeque::with_capacity(capacity.min(1024)))),
            capacity: Some(capacity),
        }
    }

    /// A buffer that never evicts.
    pub fn unbounded() -> Self {
        MemorySink {
            buf: Rc::new(RefCell::new(VecDeque::new())),
            capacity: None,
        }
    }

    /// A shared handle onto this sink's buffer, usable after the sink is
    /// boxed into a recorder.
    pub fn handle(&self) -> MemoryHandle {
        MemoryHandle {
            buf: Rc::clone(&self.buf),
        }
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        let mut buf = self.buf.borrow_mut();
        if let Some(cap) = self.capacity {
            if cap == 0 {
                return;
            }
            while buf.len() >= cap {
                buf.pop_front();
            }
        }
        buf.push_back(event.clone());
    }
}

/// JSON-lines writer sink, one event per line.
///
/// Timing data (`elapsed_ns`, timer events) is excluded unless enabled via
/// [`JsonlSink::with_timing`], so same-seed runs produce byte-identical
/// files.
pub struct JsonlSink {
    writer: BufWriter<Box<dyn Write>>,
    include_timing: bool,
    /// The underlying file when writing to one, kept so `flush` can fsync:
    /// the trace is the resume contract's source of truth, so its flushed
    /// prefix must actually be durable.
    file: Option<File>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("include_timing", &self.include_timing)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, building parent directories
    /// as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory or file creation.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        let handle = file.try_clone().ok();
        let mut sink = Self::from_writer(Box::new(file));
        sink.file = handle;
        Ok(sink)
    }

    /// Re-opens an existing trace for a resumed run: keeps exactly the
    /// first `keep_lines` lines (the prefix the restored training state
    /// had already emitted — [`Recorder::lines_emitted`] at checkpoint
    /// time), atomically rewrites the file to that prefix, and appends
    /// from there. The finished resumed trace is byte-identical to an
    /// uninterrupted run's.
    ///
    /// [`Recorder::lines_emitted`]: crate::Recorder::lines_emitted
    ///
    /// A kill mid-append can leave a torn final line (no trailing
    /// newline); only `\n`-terminated lines count as complete, and a torn
    /// trailing fragment past the cursor is truncated away with a logged
    /// warning rather than silently promoted to a complete line.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` when the file holds fewer than
    /// `keep_lines` complete lines (the trace and checkpoint are from
    /// different runs, or the trace was not flushed at checkpoint time);
    /// propagates filesystem errors.
    pub fn resume(path: &Path, keep_lines: u64) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut kept = String::with_capacity(text.len());
        let mut count = 0u64;
        // an unterminated tail is a torn append from a mid-write kill,
        // whether it falls before or after the cursor
        let torn = !text.is_empty() && !text.ends_with('\n');
        for line in text.split_inclusive('\n') {
            if count == keep_lines || !line.ends_with('\n') {
                break;
            }
            kept.push_str(line);
            count += 1;
        }
        if torn {
            eprintln!(
                "rex-telemetry: dropping torn trailing line of {} (interrupted append)",
                path.display()
            );
        }
        if count < keep_lines {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace {} holds {count} complete lines but the checkpoint cursor is \
                     {keep_lines}; it does not belong to this checkpoint",
                    path.display()
                ),
            ));
        }
        rex_faults::atomic_write("trace", path, kept.as_bytes())?;
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        let handle = file.try_clone().ok();
        let mut sink = Self::from_writer(Box::new(file));
        sink.file = handle;
        Ok(sink)
    }

    /// Wraps an arbitrary writer.
    pub fn from_writer(writer: Box<dyn Write>) -> Self {
        JsonlSink {
            writer: BufWriter::new(writer),
            include_timing: false,
            file: None,
        }
    }

    /// Enables wall-clock fields in the output (breaks byte-identical
    /// same-seed traces; intended for profiling, not golden files).
    pub fn with_timing(mut self) -> Self {
        self.include_timing = true;
        self
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        if let Some(line) = event.to_jsonl(self.include_timing) {
            if self.file.is_some() {
                // a `kill-on-write=trace:N:mid` plan dies here with half
                // the line on disk — the torn trailing line a real
                // mid-append kill leaves behind
                rex_faults::append_crash_point("trace", self.file.as_ref(), line.as_bytes());
            }
            // Telemetry must not abort training on a full disk; drop the
            // line and keep going.
            let _ = writeln!(self.writer, "{line}");
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
        // make the flushed prefix durable: resume truncates the trace to
        // the checkpoint's line cursor, which must exist on disk even if
        // the process is killed right after checkpointing
        if let Some(file) = &self.file {
            rex_faults::fsync_file(file);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StepRecord;

    fn step(i: u64) -> Event {
        Event::Step(StepRecord {
            step: i,
            epoch: 0,
            batch_id: i,
            lr: 0.1,
            loss: 1.0,
            grad_norm: 0.5,
            param_norm: 2.0,
            elapsed_ns: 10,
        })
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut sink = MemorySink::new(3);
        let handle = sink.handle();
        for i in 0..5 {
            sink.record(&step(i));
        }
        let steps = handle.steps();
        assert_eq!(steps.len(), 3);
        assert_eq!(
            steps.iter().map(|r| r.step).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut sink = MemorySink::unbounded();
        let handle = sink.handle();
        for i in 0..100 {
            sink.record(&step(i));
        }
        assert_eq!(handle.len(), 100);
        handle.clear();
        assert!(handle.is_empty());
    }

    #[test]
    fn jsonl_resume_truncates_to_cursor_and_appends() {
        let path =
            std::env::temp_dir().join(format!("rex_sink_resume_{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for i in 0..5 {
                sink.record(&step(i));
            }
        }
        // resume keeping 3 lines, then append two fresh ones
        {
            let mut sink = JsonlSink::resume(&path, 3).unwrap();
            sink.record(&step(3));
            sink.record(&Event::RunEnd { metric: 0.5 });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5);
        let events = crate::parse_trace(&text).unwrap();
        assert_eq!(events[3].as_step().unwrap().step, 3);
        assert_eq!(events[4], Event::RunEnd { metric: 0.5 });

        // a cursor beyond the file length is a hard error
        let err = JsonlSink::resume(&path, 99).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn jsonl_resume_truncates_a_torn_trailing_line() {
        let path = std::env::temp_dir().join(format!("rex_sink_torn_{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for i in 0..3 {
                sink.record(&step(i));
            }
        }
        // model a kill mid-append: a trailing fragment with no newline
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"type\":\"step\",\"st").unwrap();
        }
        // the torn fragment is dropped; the 3 complete lines resume fine
        {
            let mut sink = JsonlSink::resume(&path, 3).unwrap();
            sink.record(&step(3));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let events = crate::parse_trace(&text).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[3].as_step().unwrap().step, 3);

        // a torn fragment must never be promoted to a complete line: a
        // cursor that would need it is a hard mismatch, not silent reuse
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"type\":\"step\",\"st").unwrap();
        }
        let err = JsonlSink::resume(&path, 5).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("4 complete lines"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf: Rc<RefCell<Vec<u8>>> = Rc::default();

        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut sink = JsonlSink::from_writer(Box::new(Shared(Rc::clone(&buf))));
        sink.record(&step(0));
        sink.record(&Event::Timer {
            name: "t".into(),
            elapsed_ns: 9,
        });
        sink.record(&Event::RunEnd { metric: 0.5 });
        sink.flush();

        let text = String::from_utf8(buf.borrow().clone()).unwrap();
        let events = crate::parse_trace(&text).unwrap();
        // timer dropped (timing off), step's elapsed_ns zeroed
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].as_step().unwrap().elapsed_ns, 0);
        assert_eq!(events[1], Event::RunEnd { metric: 0.5 });
    }
}
