//! Pluggable telemetry backends.

use crate::event::Event;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

/// A telemetry backend that consumes [`Event`]s from a [`Recorder`].
///
/// [`Recorder`]: crate::Recorder
pub trait Sink {
    /// Consume one event.
    fn record(&mut self, event: &Event);
    /// Flush any buffered output (default: no-op).
    fn flush(&mut self) {}
}

/// A sink that discards everything.
///
/// Useful when an API requires a boxed sink but the caller wants none; for
/// hot loops prefer [`Recorder::disabled`], whose `None` branch the
/// optimizer removes entirely.
///
/// [`Recorder::disabled`]: crate::Recorder::disabled
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    fn record(&mut self, _event: &Event) {}
}

/// Shared, cloneable view into a [`MemorySink`]'s buffer.
///
/// The sink itself is moved into the [`Recorder`], so tests keep a handle
/// to read events back while the recorder is live.
///
/// [`Recorder`]: crate::Recorder
#[derive(Debug, Clone)]
pub struct MemoryHandle {
    buf: Rc<RefCell<VecDeque<Event>>>,
}

impl MemoryHandle {
    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.borrow().iter().cloned().collect()
    }

    /// Snapshot of the buffered step records, oldest first.
    pub fn steps(&self) -> Vec<crate::StepRecord> {
        self.buf
            .borrow()
            .iter()
            .filter_map(|ev| ev.as_step().cloned())
            .collect()
    }

    /// Drops all buffered events.
    pub fn clear(&self) {
        self.buf.borrow_mut().clear();
    }
}

/// In-memory ring buffer sink for tests and interactive inspection.
///
/// With a capacity, the oldest events are evicted once full; unbounded
/// buffers keep everything.
#[derive(Debug)]
pub struct MemorySink {
    buf: Rc<RefCell<VecDeque<Event>>>,
    capacity: Option<usize>,
}

impl MemorySink {
    /// A ring buffer keeping at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            buf: Rc::new(RefCell::new(VecDeque::with_capacity(capacity.min(1024)))),
            capacity: Some(capacity),
        }
    }

    /// A buffer that never evicts.
    pub fn unbounded() -> Self {
        MemorySink {
            buf: Rc::new(RefCell::new(VecDeque::new())),
            capacity: None,
        }
    }

    /// A shared handle onto this sink's buffer, usable after the sink is
    /// boxed into a recorder.
    pub fn handle(&self) -> MemoryHandle {
        MemoryHandle {
            buf: Rc::clone(&self.buf),
        }
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        let mut buf = self.buf.borrow_mut();
        if let Some(cap) = self.capacity {
            if cap == 0 {
                return;
            }
            while buf.len() >= cap {
                buf.pop_front();
            }
        }
        buf.push_back(event.clone());
    }
}

/// JSON-lines writer sink, one event per line.
///
/// Timing data (`elapsed_ns`, timer events) is excluded unless enabled via
/// [`JsonlSink::with_timing`], so same-seed runs produce byte-identical
/// files.
pub struct JsonlSink {
    writer: BufWriter<Box<dyn Write>>,
    include_timing: bool,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("include_timing", &self.include_timing)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, building parent directories
    /// as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory or file creation.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Self::from_writer(Box::new(File::create(path)?)))
    }

    /// Wraps an arbitrary writer.
    pub fn from_writer(writer: Box<dyn Write>) -> Self {
        JsonlSink {
            writer: BufWriter::new(writer),
            include_timing: false,
        }
    }

    /// Enables wall-clock fields in the output (breaks byte-identical
    /// same-seed traces; intended for profiling, not golden files).
    pub fn with_timing(mut self) -> Self {
        self.include_timing = true;
        self
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        if let Some(line) = event.to_jsonl(self.include_timing) {
            // Telemetry must not abort training on a full disk; drop the
            // line and keep going.
            let _ = writeln!(self.writer, "{line}");
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StepRecord;

    fn step(i: u64) -> Event {
        Event::Step(StepRecord {
            step: i,
            epoch: 0,
            batch_id: i,
            lr: 0.1,
            loss: 1.0,
            grad_norm: 0.5,
            param_norm: 2.0,
            elapsed_ns: 10,
        })
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut sink = MemorySink::new(3);
        let handle = sink.handle();
        for i in 0..5 {
            sink.record(&step(i));
        }
        let steps = handle.steps();
        assert_eq!(steps.len(), 3);
        assert_eq!(
            steps.iter().map(|r| r.step).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut sink = MemorySink::unbounded();
        let handle = sink.handle();
        for i in 0..100 {
            sink.record(&step(i));
        }
        assert_eq!(handle.len(), 100);
        handle.clear();
        assert!(handle.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf: Rc<RefCell<Vec<u8>>> = Rc::default();

        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut sink = JsonlSink::from_writer(Box::new(Shared(Rc::clone(&buf))));
        sink.record(&step(0));
        sink.record(&Event::Timer {
            name: "t".into(),
            elapsed_ns: 9,
        });
        sink.record(&Event::RunEnd { metric: 0.5 });
        sink.flush();

        let text = String::from_utf8(buf.borrow().clone()).unwrap();
        let events = crate::parse_trace(&text).unwrap();
        // timer dropped (timing off), step's elapsed_ns zeroed
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].as_step().unwrap().elapsed_ns, 0);
        assert_eq!(events[1], Event::RunEnd { metric: 0.5 });
    }
}
