//! The [`Recorder`] handle threaded through trainers, optimizers, and
//! loaders.

use crate::event::Event;
use crate::sink::Sink;
use std::collections::BTreeMap;
use std::time::Instant;

/// Telemetry entry point held by a training loop.
///
/// A disabled recorder carries no sink; every emit path starts with an
/// inlined `None` check, so instrumented code pays a single predictable
/// branch when telemetry is off.
pub struct Recorder {
    sink: Option<Box<dyn Sink>>,
    counters: BTreeMap<String, u64>,
    /// Deterministic events emitted so far — exactly the number of lines a
    /// timing-off JSONL encoding of the stream would hold. Snapshotted at
    /// checkpoint time so resume can truncate a trace file to the prefix
    /// the restored state has already produced.
    lines: u64,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.sink.is_some())
            .field("counters", &self.counters)
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Recorder {
    /// A recorder that drops everything at negligible cost.
    pub fn disabled() -> Self {
        Recorder {
            sink: None,
            counters: BTreeMap::new(),
            lines: 0,
        }
    }

    /// A recorder forwarding every event to `sink`.
    pub fn new(sink: Box<dyn Sink>) -> Self {
        Recorder {
            sink: Some(sink),
            counters: BTreeMap::new(),
            lines: 0,
        }
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Sends one event to the sink (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, event: Event) {
        if let Some(sink) = &mut self.sink {
            if !event.is_operational() {
                self.lines += 1;
            }
            sink.record(&event);
        }
    }

    /// Number of deterministic (non-operational) events emitted so far —
    /// the line count of a timing-off JSONL rendering of the stream.
    pub fn lines_emitted(&self) -> u64 {
        self.lines
    }

    /// Overrides the deterministic-event count; called on resume so later
    /// checkpoints carry absolute trace cursors.
    pub fn set_lines_emitted(&mut self, lines: u64) {
        self.lines = lines;
    }

    /// Increments the named monotone counter by `delta` and emits its new
    /// cumulative value.
    pub fn counter(&mut self, name: &str, delta: u64) {
        if self.sink.is_none() {
            return;
        }
        let value = self
            .counters
            .entry(name.to_owned())
            .and_modify(|v| *v += delta)
            .or_insert(delta);
        let value = *value;
        self.emit(Event::Counter {
            name: name.to_owned(),
            value,
        });
    }

    /// Current cumulative value of a counter (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Emits a point-in-time measurement.
    #[inline]
    pub fn gauge(&mut self, name: &str, value: f64) {
        if self.sink.is_some() {
            self.emit(Event::Gauge {
                name: name.to_owned(),
                value,
            });
        }
    }

    /// Times `f` and emits a [`Event::Timer`] with the elapsed wall-clock
    /// nanoseconds. When disabled, `f` runs without any clock reads.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        if self.sink.is_none() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let elapsed_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.emit(Event::Timer {
            name: name.to_owned(),
            elapsed_ns,
        });
        out
    }

    /// Starts a scoped timer; the elapsed time is read when the guard is
    /// passed back to [`Recorder::stop`].
    pub fn start_timer(&self, name: &str) -> TimerGuard {
        TimerGuard {
            name: name.to_owned(),
            start: if self.is_enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Stops a timer started with [`Recorder::start_timer`] and emits its
    /// event.
    pub fn stop(&mut self, guard: TimerGuard) {
        if let Some(start) = guard.start {
            let elapsed_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            self.emit(Event::Timer {
                name: guard.name,
                elapsed_ns,
            });
        }
    }

    /// Flushes the sink's buffered output.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
    }

    /// Consumes the recorder, flushing and returning the sink (if any).
    pub fn into_sink(mut self) -> Option<Box<dyn Sink>> {
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
        self.sink.take()
    }
}

/// Handle for a scoped wall-clock timer; see [`Recorder::start_timer`].
#[derive(Debug)]
pub struct TimerGuard {
    name: String,
    start: Option<Instant>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.emit(Event::RunEnd { metric: 1.0 });
        rec.counter("c", 5);
        rec.gauge("g", 1.0);
        assert_eq!(rec.counter_value("c"), 0);
        let ran = rec.time("t", || 42);
        assert_eq!(ran, 42);
        assert!(rec.into_sink().is_none());
    }

    #[test]
    fn counters_accumulate() {
        let sink = MemorySink::unbounded();
        let handle = sink.handle();
        let mut rec = Recorder::new(Box::new(sink));
        rec.counter("steps", 1);
        rec.counter("steps", 1);
        rec.counter("steps", 3);
        assert_eq!(rec.counter_value("steps"), 5);
        let values: Vec<u64> = handle
            .events()
            .iter()
            .filter_map(|ev| match ev {
                Event::Counter { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![1, 2, 5]);
    }

    #[test]
    fn lines_emitted_counts_only_deterministic_events() {
        let mut rec = Recorder::new(Box::new(MemorySink::unbounded()));
        rec.emit(Event::RunEnd { metric: 1.0 });
        rec.emit(Event::Checkpoint { step: 1 });
        rec.emit(Event::Timer {
            name: "t".into(),
            elapsed_ns: 1,
        });
        rec.emit(Event::Resume { step: 1 });
        rec.emit(Event::GuardTrip {
            step: 1,
            what: "loss".into(),
            value: f64::NAN,
            action: "skip".into(),
        });
        assert_eq!(rec.lines_emitted(), 2);
        rec.set_lines_emitted(40);
        rec.emit(Event::RunEnd { metric: 1.0 });
        assert_eq!(rec.lines_emitted(), 41);

        // a disabled recorder counts nothing
        let mut off = Recorder::disabled();
        off.emit(Event::RunEnd { metric: 1.0 });
        assert_eq!(off.lines_emitted(), 0);
    }

    #[test]
    fn timers_emit_events() {
        let sink = MemorySink::unbounded();
        let handle = sink.handle();
        let mut rec = Recorder::new(Box::new(sink));
        let out = rec.time("closure", || 7u32);
        assert_eq!(out, 7);
        let guard = rec.start_timer("scoped");
        rec.stop(guard);
        let names: Vec<String> = handle
            .events()
            .iter()
            .filter_map(|ev| match ev {
                Event::Timer { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["closure".to_owned(), "scoped".to_owned()]);
    }
}
