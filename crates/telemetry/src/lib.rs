//! # rex-telemetry — deterministic training telemetry
//!
//! A lightweight, zero-dependency event/metrics layer for the REX
//! budgeted-training stack. The paper's entire argument is
//! trajectory-shaped — per-step learning-rate curves and loss trajectories
//! across profiles × sampling rates × budgets — so final-metric assertions
//! alone cannot catch a mid-trajectory regression (a schedule knot
//! off-by-one, optimizer state drift, a loader reshuffle). This crate gives
//! every layer of the stack a step-resolution record of what it did:
//!
//! * [`StepRecord`] — one optimizer step: step/epoch indices, applied
//!   learning rate, batch loss, gradient and parameter norms, batch id,
//!   and wall-clock time.
//! * [`Event`] — the full event vocabulary: run/epoch boundaries, steps,
//!   validation passes, counters, gauges, and scoped timers.
//! * [`Recorder`] — the handle threaded through trainers, optimizers, and
//!   loaders. A disabled recorder ([`Recorder::disabled`]) is a branch on a
//!   `None` sink that the optimizer removes from hot loops.
//! * [`Sink`] — pluggable backends: [`MemorySink`] (a bounded in-memory
//!   ring buffer for tests), [`JsonlSink`] (a JSON-lines writer for
//!   `results/`), and [`NullSink`].
//! * [`golden`] — tolerance-checked trace diffing for golden-trace
//!   regression tests, with first-divergent-step diagnostics.
//!
//! # Determinism
//!
//! Traces are designed to be **byte-identical across same-seed runs**:
//! wall-clock fields (`elapsed_ns`, timer events) are excluded from JSONL
//! serialization unless explicitly enabled via
//! [`JsonlSink::with_timing`] / [`Event::to_jsonl`]. Everything else in a
//! trace derives from the seeded `Prng` streams, so two runs of the same
//! configuration serialize identically.
//!
//! ```
//! use rex_telemetry::{Event, MemorySink, Recorder, StepRecord};
//!
//! let sink = MemorySink::unbounded();
//! let events = sink.handle();
//! let mut rec = Recorder::new(Box::new(sink));
//! rec.emit(Event::Step(StepRecord {
//!     step: 0,
//!     epoch: 0,
//!     batch_id: 0,
//!     lr: 0.1,
//!     loss: 2.3,
//!     grad_norm: 1.0,
//!     param_norm: 4.2,
//!     elapsed_ns: 125,
//! }));
//! rec.counter("train/steps", 1);
//! assert_eq!(events.len(), 2);
//! // deterministic serialization (timing excluded by default):
//! let line = events.events()[0].to_jsonl(false).unwrap();
//! assert!(line.starts_with("{\"ev\":\"step\""));
//! assert!(!line.contains("elapsed_ns"));
//! ```

#![warn(missing_docs)]

mod event;
pub mod golden;
pub mod hist;
pub mod json;
mod recorder;
pub mod registry;
mod sink;
pub mod span;

pub use event::{encode_trace, parse_trace, Event, StepRecord};
pub use hist::Histogram;
pub use recorder::{Recorder, TimerGuard};
pub use registry::{FanoutSink, MetricsRegistry, RegistrySink, TimerStat};
pub use sink::{JsonlSink, MemoryHandle, MemorySink, NullSink, Sink};
pub use span::{Detail, PhaseRow, Profile, SpanCollector, SpanEvent, SpanGuard};
