//! Adversarial-input hardening for the checkpoint formats: truncations at
//! representative byte offsets and targeted bit flips in the magic,
//! count, and dims fields must all surface as `InvalidData` or
//! `UnexpectedEof` — never a panic, never a multi-gigabyte allocation.
//!
//! These tests run the debug profile, so `shape.iter().product()`-style
//! arithmetic would abort on overflow if it were not checked: surviving
//! the grid proves the parser uses checked arithmetic throughout.

use std::fs;
use std::io::ErrorKind;
use std::path::PathBuf;

use rex_nn::{checkpoint, Mlp, Module};
use rex_tensor::Prng;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rex_ckpt_rob_{name}_{}", std::process::id()))
}

/// A small but structurally complete checkpoint: several entries, ranks
/// 1 and 2, a multi-byte name table.
fn valid_checkpoint_bytes() -> Vec<u8> {
    let mut rng = Prng::new(0xC0FFEE);
    let m = Mlp::new("m", &[6, 5, 3], &mut rng);
    let path = tmp("template");
    checkpoint::save(&path, &m.params()).unwrap();
    let bytes = fs::read(&path).unwrap();
    let _ = fs::remove_file(path);
    bytes
}

fn load_bytes(name: &str, bytes: &[u8]) -> std::io::Result<Vec<(String, rex_tensor::Tensor)>> {
    let path = tmp(name);
    fs::write(&path, bytes).unwrap();
    let result = checkpoint::load_raw(&path);
    let _ = fs::remove_file(path);
    result
}

#[test]
fn truncation_at_every_offset_is_a_clean_error() {
    let good = valid_checkpoint_bytes();
    assert!(load_bytes("full", &good).is_ok());

    // every strict prefix: header cuts, mid-name cuts, mid-dims cuts,
    // mid-payload cuts — the grid covers all region boundaries because it
    // covers every byte
    for len in 0..good.len() {
        let err = load_bytes("trunc", &good[..len]).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                ErrorKind::InvalidData | ErrorKind::UnexpectedEof
            ),
            "prefix of {len} bytes gave unexpected error kind {:?}: {err}",
            err.kind()
        );
    }
}

#[test]
fn flipped_magic_count_and_dims_bytes_are_clean_errors() {
    let good = valid_checkpoint_bytes();
    // header layout: magic[0..8] | count[8..12] | name_len[12..16] |
    // name | ndim | dims… — flip every byte of the first entry's header
    // plus a sample of payload bytes spread through the file
    let mut targets: Vec<usize> = (0..40.min(good.len())).collect();
    targets.extend((40..good.len()).step_by(97));
    for pos in targets {
        for mask in [0x01u8, 0x80] {
            let mut bad = good.clone();
            bad[pos] ^= mask;
            match load_bytes("flip", &bad) {
                // payload-byte flips still parse (f32 data has no
                // structure to violate) — that is fine; what matters is
                // that no flip panics or kills the process
                Ok(_) => {}
                Err(err) => assert!(
                    matches!(
                        err.kind(),
                        ErrorKind::InvalidData | ErrorKind::UnexpectedEof
                    ),
                    "flip at {pos} gave unexpected error kind {:?}: {err}",
                    err.kind()
                ),
            }
        }
    }
}

#[test]
fn huge_claimed_count_does_not_overallocate() {
    // magic + count=u32::MAX and nothing else: the parser must fail fast
    // on the cap or on EOF, not reserve u32::MAX entries
    let mut bytes = b"REXCKPT1".to_vec();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = load_bytes("bigcount", &bytes).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
}

#[test]
fn huge_claimed_tensor_on_truncated_file_does_not_overallocate() {
    // one entry claiming 2^29 elements (within MAX_ELEMENTS) but with no
    // payload: chunked reading must hit EOF without a 2 GiB allocation
    let mut bytes = b"REXCKPT1".to_vec();
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.push(b'w');
    bytes.extend_from_slice(&1u32.to_le_bytes()); // ndim = 1
    bytes.extend_from_slice(&(1u64 << 29).to_le_bytes());
    let err = load_bytes("bigtensor", &bytes).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::UnexpectedEof, "{err}");
}

#[test]
fn overflowing_dims_product_is_invalid_data_not_a_panic() {
    // rank-4 tensor of 2^32 × 2^32 × 2^32 × 2^32 elements: the element
    // count overflows usize; debug builds would abort on unchecked
    // multiplication
    let mut bytes = b"REXCKPT1".to_vec();
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.push(b'w');
    bytes.extend_from_slice(&4u32.to_le_bytes());
    for _ in 0..4 {
        bytes.extend_from_slice(&(1u64 << 32).to_le_bytes());
    }
    let err = load_bytes("overflow", &bytes).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
}

#[test]
fn state_snapshot_truncation_and_flips_are_clean_errors() {
    let sections = vec![
        ("meta".to_owned(), vec![7u8; 24]),
        ("model".to_owned(), vec![1u8; 100]),
    ];
    let good = checkpoint::encode_state(&sections);
    for len in 0..good.len() {
        let err = checkpoint::decode_state(&good[..len]).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                ErrorKind::InvalidData | ErrorKind::UnexpectedEof
            ),
            "state prefix {len} gave {:?}: {err}",
            err.kind()
        );
    }
    for pos in 0..good.len() {
        let mut bad = good.clone();
        bad[pos] ^= 0x10;
        // the checksum trailer makes every flip detectable
        let err = checkpoint::decode_state(&bad).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData, "flip at {pos}: {err}");
    }
}
