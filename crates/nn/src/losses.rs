//! Loss helpers composed from graph primitives.
//!
//! Cross-entropy and BCE-with-logits live directly on
//! [`Graph`](rex_autograd::Graph); this module adds the composite losses the
//! models need.

use rex_autograd::{Graph, NodeId};
use rex_tensor::{Tensor, TensorError};

/// Mean squared error between a prediction node and a constant target,
/// averaged over all elements.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastMismatch`] if shapes differ.
pub fn mse(g: &mut Graph, pred: NodeId, target: &Tensor) -> Result<NodeId, TensorError> {
    let t = g.constant(target.clone());
    let diff = g.sub(pred, t)?;
    let sq = g.mul(diff, diff)?;
    g.mean_all(sq)
}

/// KL divergence of a diagonal Gaussian `N(mu, exp(logvar))` from the
/// standard normal, summed over latent dims and averaged over the batch:
///
/// ```text
/// KL = -1/2 · Σ_d (1 + logvar − mu² − exp(logvar))
/// ```
///
/// `mu`/`logvar` are `[N, L]` nodes.
///
/// # Errors
///
/// Propagates shape mismatches from the underlying ops.
pub fn gaussian_kl(g: &mut Graph, mu: NodeId, logvar: NodeId) -> Result<NodeId, TensorError> {
    let n = g.value(mu).shape()[0] as f32;
    let mu2 = g.mul(mu, mu)?;
    let var = g.exp(logvar);
    let one_plus = g.add_scalar(logvar, 1.0);
    let t1 = g.sub(one_plus, mu2)?;
    let t2 = g.sub(t1, var)?;
    let summed = g.sum_all(t2)?;
    Ok(g.scale(summed, -0.5 / n))
}

/// L2 regularisation term: `0.5 · coef · Σ ‖p‖²` over the given nodes
/// (typically parameter leaves). Used by the ablation benches; the
/// optimizers implement weight decay directly for the main experiments.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops (none in practice).
pub fn l2_penalty(g: &mut Graph, params: &[NodeId], coef: f32) -> Result<NodeId, TensorError> {
    let mut acc: Option<NodeId> = None;
    for &p in params {
        let sq = g.mul(p, p)?;
        let s = g.sum_all(sq)?;
        acc = Some(match acc {
            Some(a) => g.add(a, s)?,
            None => s,
        });
    }
    let total = acc.unwrap_or_else(|| g.constant(Tensor::scalar(0.0)));
    Ok(g.scale(total, 0.5 * coef))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value() {
        let mut g = Graph::new(true);
        let p = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let t = Tensor::from_vec(vec![0.0, 4.0], &[2]).unwrap();
        let loss = mse(&mut g, p, &t).unwrap();
        assert!((g.value(loss).item() - (1.0 + 4.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn kl_zero_for_standard_normal() {
        let mut g = Graph::new(true);
        let mu = g.constant(Tensor::zeros(&[3, 4]));
        let logvar = g.constant(Tensor::zeros(&[3, 4]));
        let kl = gaussian_kl(&mut g, mu, logvar).unwrap();
        assert!(g.value(kl).item().abs() < 1e-6);
    }

    #[test]
    fn kl_positive_otherwise() {
        let mut g = Graph::new(true);
        let mu = g.constant(Tensor::full(&[2, 2], 1.0));
        let logvar = g.constant(Tensor::full(&[2, 2], 0.5));
        let kl = gaussian_kl(&mut g, mu, logvar).unwrap();
        assert!(g.value(kl).item() > 0.0);
    }

    #[test]
    fn l2_penalty_sums_squares() {
        let mut g = Graph::new(true);
        let a = g.constant(Tensor::from_vec(vec![3.0], &[1]).unwrap());
        let b = g.constant(Tensor::from_vec(vec![4.0], &[1]).unwrap());
        let pen = l2_penalty(&mut g, &[a, b], 2.0).unwrap();
        assert!((g.value(pen).item() - 25.0).abs() < 1e-6);
    }
}
