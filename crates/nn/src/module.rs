use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::{Tensor, TensorError};
use std::cell::RefCell;

/// A differentiable component: builds its forward computation onto a
/// caller-supplied [`Graph`] and exposes its trainable parameters.
///
/// Training/eval mode is a property of the graph
/// ([`Graph::training`]), not the module — so a model is immutable during
/// both phases apart from interior-mutable bookkeeping (batch-norm running
/// statistics, dropout RNG state).
pub trait Module {
    /// Appends this module's forward computation for input node `x`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] when `x`'s shape is incompatible with the
    /// module's configuration.
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError>;

    /// All trainable parameters, in a deterministic order.
    fn params(&self) -> Vec<Param>;

    /// Non-trainable state tensors as `(name, cell)` pairs, in a
    /// deterministic order — batch-norm running statistics and the like.
    /// They receive no gradients but shape eval-mode inference, so
    /// training-state snapshots must save and restore them alongside the
    /// parameters. Composite modules concatenate their children's
    /// buffers. Default: none.
    fn buffers(&self) -> Vec<(String, &RefCell<Tensor>)> {
        Vec::new()
    }

    /// Total number of trainable scalars.
    fn num_parameters(&self) -> usize {
        self.params().iter().map(Param::len).sum()
    }
}

/// A pointwise nonlinearity, selectable per layer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// GELU (tanh approximation) — used in the transformer.
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no activation).
    Identity,
}

impl Activation {
    /// Applies the activation to node `x`.
    pub fn apply(self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::Relu => g.relu(x),
            Activation::LeakyRelu(a) => g.leaky_relu(x, a),
            Activation::Gelu => g.gelu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_tensor::Tensor;

    #[test]
    fn activations_apply_expected_functions() {
        let mut g = Graph::new(false);
        let x = g.constant(Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap());
        let r = Activation::Relu.apply(&mut g, x);
        assert_eq!(g.value(r).data(), &[0.0, 0.0, 2.0]);
        let l = Activation::LeakyRelu(0.5).apply(&mut g, x);
        assert_eq!(g.value(l).data(), &[-0.5, 0.0, 2.0]);
        let i = Activation::Identity.apply(&mut g, x);
        assert_eq!(i, x);
    }
}
