//! # rex-nn — neural-network layers, models, and losses
//!
//! Everything the REX paper's evaluation trains, implemented from scratch on
//! top of [`rex_autograd`]:
//!
//! * **Layers** — [`Linear`], [`Conv2d`], [`BatchNorm`], [`LayerNorm`],
//!   [`Dropout`], [`Embedding`], [`MultiHeadAttention`], composable through
//!   the [`Module`] trait.
//! * **Models** — one per experimental setting of the paper (§4, Table 3):
//!   [`MicroResNet`] (RN20-CIFAR10 / RN50-ImageNet analogues),
//!   [`MicroWideResNet`] (WRN-STL10), [`MicroVgg`] (VGG16-CIFAR100),
//!   [`Vae`] (VAE-MNIST), [`TinyDetector`] (YOLO-VOC),
//!   [`TinyTransformer`] (BERT-GLUE), plus a plain [`Mlp`].
//! * **Losses** — cross-entropy (via the graph), [`losses::mse`],
//!   VAE ELBO ([`Vae::elbo`]), and the multi-term detection loss
//!   ([`TinyDetector::loss`]).
//!
//! All models follow the same convention: `forward(&self, g, x) -> NodeId`
//! builds onto a caller-supplied [`Graph`](rex_autograd::Graph) (training vs
//! eval mode is a property of the graph), and `params()` exposes every
//! trainable [`Param`](rex_autograd::Param) for the optimizer.

#![warn(missing_docs)]

mod attention;
pub mod checkpoint;
pub mod export;
mod layers;
pub mod losses;
mod models;
mod module;
mod sequential;

pub use attention::MultiHeadAttention;
pub use layers::{BatchNorm, Conv2d, Dropout, Embedding, GroupNorm, LayerNorm, Linear};
pub use models::detector::{DetectionTargets, TinyDetector};
pub use models::mlp::Mlp;
pub use models::resnet::{MicroResNet, MicroWideResNet};
pub use models::transformer::{TinyTransformer, TransformerConfig};
pub use models::vae::Vae;
pub use models::vgg::MicroVgg;
pub use module::{Activation, Module};
pub use sequential::Sequential;
