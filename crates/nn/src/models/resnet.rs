//! Micro residual networks — the CPU-scale analogues of ResNet-20,
//! ResNet-50, and Wide-ResNet-16-8 used by the paper's image-classification
//! settings (see DESIGN.md §2 for the substitution rationale).

use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::conv::Window;
use rex_tensor::{Prng, TensorError};

use crate::layers::{BatchNorm, Conv2d, Linear};
use crate::module::Module;

/// One pre-activation-free basic residual block:
/// `relu(bn2(conv2(relu(bn1(conv1 x)))) + shortcut(x))`.
#[derive(Debug)]
struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm,
    conv2: Conv2d,
    bn2: BatchNorm,
    /// 1×1 strided projection when shape changes, else identity.
    shortcut: Option<(Conv2d, BatchNorm)>,
}

impl BasicBlock {
    fn new(name: &str, in_ch: usize, out_ch: usize, stride: usize, rng: &mut Prng) -> Self {
        let w1 = Window {
            kernel: 3,
            stride,
            padding: 1,
        };
        let w2 = Window::same(3);
        let shortcut = if stride != 1 || in_ch != out_ch {
            let wp = Window {
                kernel: 1,
                stride,
                padding: 0,
            };
            Some((
                Conv2d::without_bias(&format!("{name}.proj"), in_ch, out_ch, wp, rng),
                BatchNorm::new(&format!("{name}.proj_bn"), out_ch),
            ))
        } else {
            None
        };
        BasicBlock {
            conv1: Conv2d::without_bias(&format!("{name}.conv1"), in_ch, out_ch, w1, rng),
            bn1: BatchNorm::new(&format!("{name}.bn1"), out_ch),
            conv2: Conv2d::without_bias(&format!("{name}.conv2"), out_ch, out_ch, w2, rng),
            bn2: BatchNorm::new(&format!("{name}.bn2"), out_ch),
            shortcut,
        }
    }
}

impl Module for BasicBlock {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let mut h = self.conv1.forward(g, x)?;
        h = self.bn1.forward(g, h)?;
        h = g.relu(h);
        h = self.conv2.forward(g, h)?;
        h = self.bn2.forward(g, h)?;
        let skip = match &self.shortcut {
            Some((conv, bn)) => {
                let p = conv.forward(g, x)?;
                bn.forward(g, p)?
            }
            None => x,
        };
        let sum = g.add(h, skip)?;
        Ok(g.relu(sum))
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.conv1.params();
        ps.extend(self.bn1.params());
        ps.extend(self.conv2.params());
        ps.extend(self.bn2.params());
        if let Some((conv, bn)) = &self.shortcut {
            ps.extend(conv.params());
            ps.extend(bn.params());
        }
        ps
    }

    fn buffers(&self) -> Vec<(String, &std::cell::RefCell<rex_tensor::Tensor>)> {
        let mut bs = self.bn1.buffers();
        bs.extend(self.bn2.buffers());
        if let Some((_, bn)) = &self.shortcut {
            bs.extend(bn.buffers());
        }
        bs
    }
}

/// A three-stage residual classifier: stem conv → stages of
/// [`BasicBlock`]s at widths `w, 2w, 4w` (stride 2 between stages) →
/// global average pool → linear head.
///
/// `MicroResNet::rn20_analog` stands in for ResNet-20/CIFAR-10 and
/// `MicroResNet::rn50_analog` for ResNet-50/ImageNet in the reproduction's
/// scaled-down experiments.
#[derive(Debug)]
pub struct MicroResNet {
    stem: Conv2d,
    stem_bn: BatchNorm,
    blocks: Vec<BasicBlock>,
    head: Linear,
}

impl MicroResNet {
    /// Fully-configurable constructor.
    ///
    /// # Panics
    ///
    /// Panics if `base_width == 0` or any stage has zero blocks.
    pub fn new(
        name: &str,
        in_channels: usize,
        base_width: usize,
        blocks_per_stage: [usize; 3],
        num_classes: usize,
        rng: &mut Prng,
    ) -> Self {
        assert!(base_width > 0, "base width must be positive");
        assert!(
            blocks_per_stage.iter().all(|&b| b > 0),
            "every stage needs at least one block"
        );
        let stem = Conv2d::without_bias(
            &format!("{name}.stem"),
            in_channels,
            base_width,
            Window::same(3),
            rng,
        );
        let stem_bn = BatchNorm::new(&format!("{name}.stem_bn"), base_width);
        let mut blocks = Vec::new();
        let mut in_ch = base_width;
        for (stage, &n) in blocks_per_stage.iter().enumerate() {
            let out_ch = base_width << stage;
            for b in 0..n {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                blocks.push(BasicBlock::new(
                    &format!("{name}.s{stage}b{b}"),
                    in_ch,
                    out_ch,
                    stride,
                    rng,
                ));
                in_ch = out_ch;
            }
        }
        let head = Linear::new(&format!("{name}.head"), in_ch, num_classes, rng);
        MicroResNet {
            stem,
            stem_bn,
            blocks,
            head,
        }
    }

    /// The RN20-CIFAR10 analogue: width 8, one block per stage.
    pub fn rn20_analog(num_classes: usize, seed: u64) -> Self {
        let mut rng = Prng::new(seed);
        MicroResNet::new("rn20", 3, 8, [1, 1, 1], num_classes, &mut rng)
    }

    /// The RN38-CIFAR10 analogue (deeper than the RN20 analogue at the
    /// same width) — the second model of the paper's Table 2.
    pub fn rn38_analog(num_classes: usize, seed: u64) -> Self {
        let mut rng = Prng::new(seed);
        MicroResNet::new("rn38", 3, 8, [2, 2, 2], num_classes, &mut rng)
    }

    /// A deeper/wider variant standing in for ResNet-50 on the synthetic
    /// ImageNet analogue.
    pub fn rn50_analog(num_classes: usize, seed: u64) -> Self {
        let mut rng = Prng::new(seed);
        MicroResNet::new("rn50", 3, 12, [2, 2, 2], num_classes, &mut rng)
    }

    /// Number of residual blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl Module for MicroResNet {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let mut h = self.stem.forward(g, x)?;
        h = self.stem_bn.forward(g, h)?;
        h = g.relu(h);
        for block in &self.blocks {
            h = block.forward(g, h)?;
        }
        let pooled = g.global_avgpool(h)?;
        self.head.forward(g, pooled)
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.stem.params();
        ps.extend(self.stem_bn.params());
        for b in &self.blocks {
            ps.extend(b.params());
        }
        ps.extend(self.head.params());
        ps
    }

    fn buffers(&self) -> Vec<(String, &std::cell::RefCell<rex_tensor::Tensor>)> {
        let mut bs = self.stem_bn.buffers();
        for b in &self.blocks {
            bs.extend(b.buffers());
        }
        bs
    }
}

/// Wide residual variant: a [`MicroResNet`] whose base width is multiplied
/// by a widen factor — the WRN-16-8/STL-10 analogue.
#[derive(Debug)]
pub struct MicroWideResNet {
    inner: MicroResNet,
    widen: usize,
}

impl MicroWideResNet {
    /// Builds a wide micro ResNet (base width × `widen`, one block per
    /// stage).
    ///
    /// # Panics
    ///
    /// Panics if `widen == 0`.
    pub fn new(num_classes: usize, widen: usize, seed: u64) -> Self {
        assert!(widen > 0, "widen factor must be positive");
        let mut rng = Prng::new(seed);
        MicroWideResNet {
            inner: MicroResNet::new("wrn", 3, 4 * widen, [1, 1, 1], num_classes, &mut rng),
            widen,
        }
    }

    /// The widen factor.
    pub fn widen_factor(&self) -> usize {
        self.widen
    }
}

impl Module for MicroWideResNet {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        self.inner.forward(g, x)
    }

    fn params(&self) -> Vec<Param> {
        self.inner.params()
    }

    fn buffers(&self) -> Vec<(String, &std::cell::RefCell<rex_tensor::Tensor>)> {
        self.inner.buffers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_tensor::Tensor;

    #[test]
    fn rn20_forward_shape() {
        let m = MicroResNet::rn20_analog(10, 0);
        let mut g = Graph::new(false);
        let x = g.constant(Tensor::zeros(&[2, 3, 16, 16]));
        let y = m.forward(&mut g, x).unwrap();
        assert_eq!(g.value(y).shape(), &[2, 10]);
    }

    #[test]
    fn strided_stages_halve_resolution_twice() {
        let m = MicroResNet::rn20_analog(10, 0);
        assert_eq!(m.num_blocks(), 3);
        // 16x16 input -> 16 -> 8 -> 4; pooled head accepts any spatial size.
        let mut g = Graph::new(false);
        let x = g.constant(Tensor::zeros(&[1, 3, 16, 16]));
        assert!(m.forward(&mut g, x).is_ok());
    }

    #[test]
    fn wide_variant_has_more_parameters() {
        let narrow = MicroWideResNet::new(10, 1, 0);
        let wide = MicroWideResNet::new(10, 4, 0);
        assert!(wide.num_parameters() > 4 * narrow.num_parameters());
        assert_eq!(wide.widen_factor(), 4);
    }

    #[test]
    fn one_sgd_step_reduces_loss_on_fixed_batch() {
        let mut rng = Prng::new(3);
        let m = MicroResNet::rn20_analog(4, 1);
        let x = rng.normal_tensor(&[8, 3, 8, 8], 0.0, 1.0);
        let targets: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..8 {
            for p in m.params() {
                p.zero_grad();
            }
            let mut g = Graph::new(true);
            let xn = g.constant(x.clone());
            let logits = m.forward(&mut g, xn).unwrap();
            let loss = g.cross_entropy(logits, &targets).unwrap();
            let lv = g.value(loss).item();
            if step == 0 {
                first = lv;
            }
            last = lv;
            g.backward(loss).unwrap();
            for p in m.params() {
                let grad = p.grad();
                p.value_mut().axpy(-0.1, &grad);
            }
        }
        assert!(last < first, "loss should drop: {first} -> {last}");
    }
}
