//! Variational autoencoder — the image-generation setting (VAE-MNIST
//! analogue). The paper reports the generalization *loss* (negative ELBO),
//! which is exactly what [`Vae::elbo`] produces.

use std::cell::RefCell;

use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::{Prng, Tensor, TensorError};

use crate::layers::Linear;
use crate::losses::gaussian_kl;
use crate::module::Module;

/// A dense VAE with a diagonal-Gaussian latent and Bernoulli likelihood:
///
/// * encoder `x → relu → (μ, log σ²)`
/// * reparameterised latent `z = μ + σ·ε`, `ε ~ N(0, I)`
/// * decoder `z → relu → logits`, reconstruction scored with
///   numerically-stable BCE-with-logits
/// * loss = per-sample reconstruction (summed over pixels) + KL.
#[derive(Debug)]
pub struct Vae {
    enc: Linear,
    mu_head: Linear,
    logvar_head: Linear,
    dec1: Linear,
    dec2: Linear,
    rng: RefCell<Prng>,
    input_dim: usize,
    latent_dim: usize,
}

impl Vae {
    /// New VAE for flattened inputs of `input_dim` pixels in `[0, 1]`.
    pub fn new(input_dim: usize, hidden: usize, latent: usize, seed: u64) -> Self {
        let mut rng = Prng::new(seed);
        Vae {
            enc: Linear::new("vae.enc", input_dim, hidden, &mut rng),
            mu_head: Linear::new("vae.mu", hidden, latent, &mut rng),
            logvar_head: Linear::new("vae.logvar", hidden, latent, &mut rng),
            dec1: Linear::new("vae.dec1", latent, hidden, &mut rng),
            dec2: Linear::new("vae.dec2", hidden, input_dim, &mut rng),
            rng: RefCell::new(Prng::new(seed ^ 0x5EED_BEEF)),
            input_dim,
            latent_dim: latent,
        }
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Input dimensionality (flattened pixels).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Builds the negative ELBO for a batch `x: [N, D]` of pixels in
    /// `[0, 1]` and returns the scalar loss node.
    ///
    /// In training mode the latent is sampled via the reparameterisation
    /// trick; in eval mode `z = μ` (the standard deterministic evaluation),
    /// making validation losses noise-free.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `x` is not `[N, input_dim]`.
    pub fn elbo(&self, g: &mut Graph, x: &Tensor) -> Result<NodeId, TensorError> {
        if x.ndim() != 2 || x.shape()[1] != self.input_dim {
            return Err(TensorError::RankMismatch {
                expected: "2-D [N, input_dim] batch",
                got: x.shape().to_vec(),
            });
        }
        let n = x.shape()[0];
        let xn = g.constant(x.clone());
        let h = self.enc.forward(g, xn)?;
        let h = g.relu(h);
        let mu = self.mu_head.forward(g, h)?;
        let logvar = self.logvar_head.forward(g, h)?;

        let z = if g.training() {
            let eps = self
                .rng
                .borrow_mut()
                .normal_tensor(&[n, self.latent_dim], 0.0, 1.0);
            let epsn = g.constant(eps);
            let half_logvar = g.scale(logvar, 0.5);
            let sigma = g.exp(half_logvar);
            let noise = g.mul(sigma, epsn)?;
            g.add(mu, noise)?
        } else {
            mu
        };

        let d = self.dec1.forward(g, z)?;
        let d = g.relu(d);
        let logits = self.dec2.forward(g, d)?;

        // BCE-with-logits is a mean over all N*D elements; scale by D to get
        // the per-sample pixel *sum* the VAE literature (and the paper's
        // Table 7) reports.
        let bce_mean = g.bce_with_logits(logits, x)?;
        let recon = g.scale(bce_mean, self.input_dim as f32);
        let kl = gaussian_kl(g, mu, logvar)?;
        g.add(recon, kl)
    }

    /// Deterministic reconstruction (eval path): encode to `μ`, decode, and
    /// squash through a sigmoid. Used by the image-generation example.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `x` is not `[N, input_dim]`.
    pub fn reconstruct(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let mut g = Graph::new(false);
        let xn = g.constant(x.clone());
        let h = self.enc.forward(&mut g, xn)?;
        let h = g.relu(h);
        let mu = self.mu_head.forward(&mut g, h)?;
        let d = self.dec1.forward(&mut g, mu)?;
        let d = g.relu(d);
        let logits = self.dec2.forward(&mut g, d)?;
        let out = g.sigmoid(logits);
        Ok(g.value(out).clone())
    }

    /// Decodes latent samples `z: [N, latent]` into pixel probabilities —
    /// generation from the prior.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `z` is not `[N, latent_dim]`.
    pub fn generate(&self, z: &Tensor) -> Result<Tensor, TensorError> {
        if z.ndim() != 2 || z.shape()[1] != self.latent_dim {
            return Err(TensorError::RankMismatch {
                expected: "2-D [N, latent_dim] batch",
                got: z.shape().to_vec(),
            });
        }
        let mut g = Graph::new(false);
        let zn = g.constant(z.clone());
        let d = self.dec1.forward(&mut g, zn)?;
        let d = g.relu(d);
        let logits = self.dec2.forward(&mut g, d)?;
        let out = g.sigmoid(logits);
        Ok(g.value(out).clone())
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<Param> {
        let mut ps = self.enc.params();
        ps.extend(self.mu_head.params());
        ps.extend(self.logvar_head.params());
        ps.extend(self.dec1.params());
        ps.extend(self.dec2.params());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elbo_is_finite_scalar() {
        let vae = Vae::new(16, 32, 4, 0);
        let mut rng = Prng::new(1);
        let x = rng.uniform_tensor(&[3, 16], 0.0, 1.0);
        let mut g = Graph::new(true);
        let loss = vae.elbo(&mut g, &x).unwrap();
        let v = g.value(loss).item();
        assert!(v.is_finite() && v > 0.0, "loss {v}");
    }

    #[test]
    fn eval_elbo_deterministic_train_stochastic() {
        let vae = Vae::new(16, 32, 4, 0);
        let mut rng = Prng::new(2);
        let x = rng.uniform_tensor(&[2, 16], 0.0, 1.0);
        let eval_loss = |vae: &Vae| {
            let mut g = Graph::new(false);
            let l = vae.elbo(&mut g, &x).unwrap();
            g.value(l).item()
        };
        assert_eq!(eval_loss(&vae), eval_loss(&vae));
        let train_loss = |vae: &Vae| {
            let mut g = Graph::new(true);
            let l = vae.elbo(&mut g, &x).unwrap();
            g.value(l).item()
        };
        // reparameterisation noise makes consecutive train losses differ
        assert_ne!(train_loss(&vae), train_loss(&vae));
    }

    #[test]
    fn training_reduces_elbo() {
        let vae = Vae::new(16, 32, 4, 3);
        let mut rng = Prng::new(4);
        // a fixed "dataset" of two patterns
        let x = Tensor::from_vec(
            (0..32)
                .map(|i| if (i / 4) % 2 == 0 { 1.0 } else { 0.0 })
                .collect(),
            &[2, 16],
        )
        .unwrap();
        let _ = &mut rng;
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..40 {
            for p in vae.params() {
                p.zero_grad();
            }
            let mut g = Graph::new(true);
            let loss = vae.elbo(&mut g, &x).unwrap();
            let lv = g.value(loss).item();
            if step == 0 {
                first = lv;
            }
            last = lv;
            g.backward(loss).unwrap();
            for p in vae.params() {
                let grad = p.grad();
                p.value_mut().axpy(-0.02, &grad);
            }
        }
        assert!(last < first, "ELBO should drop: {first} -> {last}");
    }

    #[test]
    fn reconstruct_and_generate_shapes() {
        let vae = Vae::new(16, 8, 4, 0);
        let mut rng = Prng::new(5);
        let x = rng.uniform_tensor(&[3, 16], 0.0, 1.0);
        let r = vae.reconstruct(&x).unwrap();
        assert_eq!(r.shape(), &[3, 16]);
        assert!(r.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let z = rng.normal_tensor(&[2, 4], 0.0, 1.0);
        assert_eq!(vae.generate(&z).unwrap().shape(), &[2, 16]);
        assert!(vae.generate(&x).is_err());
    }

    #[test]
    fn param_count_matches_architecture() {
        let vae = Vae::new(10, 6, 2, 0);
        let count: usize = vae.params().iter().map(|p| p.len()).sum();
        let expected = (10 * 6 + 6) + 2 * (6 * 2 + 2) + (2 * 6 + 6) + (6 * 10 + 10);
        assert_eq!(count, expected);
    }
}
