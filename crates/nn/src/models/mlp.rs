//! A plain multi-layer perceptron — the quickstart model and the baseline
//! used by many unit/property tests.

use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::{Prng, TensorError};

use crate::layers::Linear;
use crate::module::{Activation, Module};

/// A fully-connected network with a fixed activation between layers.
///
/// ```
/// use rex_nn::{Mlp, Module};
/// use rex_autograd::Graph;
/// use rex_tensor::{Prng, Tensor};
///
/// let mut rng = Prng::new(0);
/// let mlp = Mlp::new("mlp", &[4, 16, 3], &mut rng);
/// let mut g = Graph::new(false);
/// let x = g.constant(Tensor::zeros(&[2, 4]));
/// let logits = mlp.forward(&mut g, x)?;
/// assert_eq!(g.value(logits).shape(), &[2, 3]);
/// # Ok::<(), rex_tensor::TensorError>(())
/// ```
#[derive(Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes (`[in, hidden…, out]`) and
    /// ReLU activations.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(name: &str, sizes: &[usize], rng: &mut Prng) -> Self {
        Self::with_activation(name, sizes, Activation::Relu, rng)
    }

    /// Builds an MLP with an explicit activation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn with_activation(
        name: &str,
        sizes: &[usize],
        activation: Activation,
        rng: &mut Prng,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "MLP needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(&format!("{name}.fc{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl Module for Mlp {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, h)?;
            if i + 1 < self.layers.len() {
                h = self.activation.apply(g, h);
            }
        }
        Ok(h)
    }

    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(Linear::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_tensor::Tensor;

    #[test]
    fn depth_and_param_count() {
        let mut rng = Prng::new(1);
        let mlp = Mlp::new("m", &[4, 8, 2], &mut rng);
        assert_eq!(mlp.depth(), 2);
        assert_eq!(mlp.num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn can_overfit_tiny_dataset() {
        // Sanity: a couple of manual SGD steps reduce the loss.
        let mut rng = Prng::new(2);
        let mlp = Mlp::new("m", &[2, 16, 2], &mut rng);
        let x = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[4, 2]).unwrap();
        let targets = [0usize, 0, 1, 1];
        let mut losses = Vec::new();
        for _ in 0..60 {
            for p in mlp.params() {
                p.zero_grad();
            }
            let mut g = Graph::new(true);
            let xn = g.constant(x.clone());
            let logits = mlp.forward(&mut g, xn).unwrap();
            let loss = g.cross_entropy(logits, &targets).unwrap();
            losses.push(g.value(loss).item());
            g.backward(loss).unwrap();
            for p in mlp.params() {
                let grad = p.grad();
                p.value_mut().axpy(-0.5, &grad);
            }
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not halve: {:?} -> {:?}",
            losses[0],
            losses.last().unwrap()
        );
    }
}
