//! Single-shot grid detector — the YOLO-VOC analogue.
//!
//! A convolutional backbone downsamples the image 8×; a 1×1 head predicts,
//! for every grid cell: an objectness logit, four box parameters
//! `(tx, ty, tw, th)`, and class logits. The loss combines BCE objectness,
//! cross-entropy classification on positive cells, and MSE box regression
//! on positive cells — the same multi-term structure as YOLOv3, reduced to
//! one anchor per cell.

use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::conv::Window;
use rex_tensor::ops::sigmoid_scalar;
use rex_tensor::{Prng, Tensor, TensorError};

use crate::layers::{BatchNorm, Conv2d};
use crate::module::Module;

/// Ground-truth targets in grid form, ready for [`TinyDetector::loss`].
#[derive(Debug, Clone)]
pub struct DetectionTargets {
    /// Objectness grid `[N, S, S]` with 1.0 in cells containing an object
    /// centre.
    pub objectness: Tensor,
    /// Box targets `[N, 4, S, S]` — `(tx, ty, w, h)` in cell-relative /
    /// image-relative units; only meaningful where `objectness == 1`.
    pub boxes: Tensor,
    /// Class index per cell, row-major over `N·S·S`; `None` for background
    /// cells.
    pub classes: Vec<Option<usize>>,
}

impl DetectionTargets {
    /// Validates the pieces and assembles the target struct.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the tensor shapes or the class-vector
    /// length are inconsistent.
    pub fn new(
        objectness: Tensor,
        boxes: Tensor,
        classes: Vec<Option<usize>>,
    ) -> Result<Self, TensorError> {
        if objectness.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                expected: "objectness [N,S,S]",
                got: objectness.shape().to_vec(),
            });
        }
        let (n, s) = (objectness.shape()[0], objectness.shape()[1]);
        if boxes.shape() != [n, 4, s, s] {
            return Err(TensorError::RankMismatch {
                expected: "boxes [N,4,S,S] matching objectness",
                got: boxes.shape().to_vec(),
            });
        }
        if classes.len() != n * s * s {
            return Err(TensorError::ShapeDataMismatch {
                shape: vec![n, s, s],
                data_len: classes.len(),
            });
        }
        Ok(DetectionTargets {
            objectness,
            boxes,
            classes,
        })
    }

    /// Number of positive (object-containing) cells.
    pub fn num_positives(&self) -> usize {
        self.classes.iter().filter(|c| c.is_some()).count()
    }
}

/// A raw detection decoded from the head output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawDetection {
    /// Confidence = objectness probability × class probability.
    pub score: f32,
    /// Predicted class index.
    pub class: usize,
    /// Box centre x/y and width/height, all in `[0, 1]` image coordinates.
    pub cxcywh: [f32; 4],
}

/// The YOLO-analogue single-shot detector.
#[derive(Debug)]
pub struct TinyDetector {
    backbone: Vec<(Conv2d, BatchNorm)>,
    obj_head: Conv2d,
    box_head: Conv2d,
    cls_head: Conv2d,
    num_classes: usize,
    grid: usize,
}

impl TinyDetector {
    /// Builds a detector for `input_size`×`input_size` RGB images
    /// (`input_size` divisible by 8; grid is `input_size/8`).
    ///
    /// # Panics
    ///
    /// Panics if `input_size` is not divisible by 8 or `num_classes == 0`.
    pub fn new(num_classes: usize, input_size: usize, seed: u64) -> Self {
        assert!(
            input_size.is_multiple_of(8),
            "input size must be divisible by 8"
        );
        assert!(num_classes > 0, "need at least one class");
        let mut rng = Prng::new(seed);
        let widths = [3usize, 8, 16, 32];
        let down = Window {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let backbone = (0..3)
            .map(|i| {
                (
                    Conv2d::without_bias(
                        &format!("det.b{i}"),
                        widths[i],
                        widths[i + 1],
                        down,
                        &mut rng,
                    ),
                    BatchNorm::new(&format!("det.bn{i}"), widths[i + 1]),
                )
            })
            .collect();
        let head_win = Window {
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        TinyDetector {
            backbone,
            obj_head: Conv2d::new("det.obj", 32, 1, head_win, &mut rng),
            box_head: Conv2d::new("det.box", 32, 4, head_win, &mut rng),
            cls_head: Conv2d::new("det.cls", 32, num_classes, head_win, &mut rng),
            num_classes,
            grid: input_size / 8,
        }
    }

    /// Grid size (cells per side).
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of object classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn features(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let mut h = x;
        for (conv, bn) in &self.backbone {
            h = conv.forward(g, h)?;
            h = bn.forward(g, h)?;
            h = g.leaky_relu(h, 0.1);
        }
        Ok(h)
    }

    /// Full detection loss for a batch: BCE objectness over all cells +
    /// cross-entropy and box MSE over positive cells (normalised by the
    /// positive count).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on any shape inconsistency between input,
    /// grid, and targets.
    pub fn loss(
        &self,
        g: &mut Graph,
        x: NodeId,
        targets: &DetectionTargets,
    ) -> Result<NodeId, TensorError> {
        let s = self.grid;
        let n = g.value(x).shape()[0];
        let feats = self.features(g, x)?;

        // Objectness: BCE over every cell.
        let obj_logits = self.obj_head.forward(g, feats)?; // [N,1,S,S]
        let obj_flat = g.reshape(obj_logits, &[n, s * s])?;
        let obj_target = targets.objectness.reshape(&[n, s * s])?;
        let obj_loss = g.bce_with_logits(obj_flat, &obj_target)?;

        let num_pos = targets.num_positives();
        if num_pos == 0 {
            // Background-only batch: objectness is the whole signal.
            return Ok(obj_loss);
        }
        let inv_pos = 1.0 / num_pos as f32;

        // Boxes: sigmoid-squashed predictions, MSE masked to positive cells.
        let box_logits = self.box_head.forward(g, feats)?; // [N,4,S,S]
        let box_pred = g.sigmoid(box_logits);
        let box_t = g.constant(targets.boxes.clone());
        let diff = g.sub(box_pred, box_t)?;
        let sq = g.mul(diff, diff)?;
        let mask = g.constant(targets.objectness.reshape(&[n, 1, s, s])?);
        let masked = g.mul(sq, mask)?;
        let box_sum = g.sum_all(masked)?;
        let box_loss = g.scale(box_sum, inv_pos / 4.0);

        // Classes: CE on positive cells via a one-hot mask.
        let cls_logits = self.cls_head.forward(g, feats)?; // [N,C,S,S]
        let cls_3d = g.reshape(cls_logits, &[n, self.num_classes, s * s])?;
        let cls_t = g.transpose_last2(cls_3d)?; // [N, S*S, C]
        let cls_rows = g.reshape(cls_t, &[n * s * s, self.num_classes])?;
        let log_probs = g.log_softmax(cls_rows)?;
        let mut onehot = Tensor::zeros(&[n * s * s, self.num_classes]);
        for (cell, class) in targets.classes.iter().enumerate() {
            if let Some(c) = class {
                if *c >= self.num_classes {
                    return Err(TensorError::AxisOutOfRange {
                        axis: *c,
                        ndim: self.num_classes,
                    });
                }
                onehot.data_mut()[cell * self.num_classes + c] = 1.0;
            }
        }
        let oh = g.constant(onehot);
        let picked = g.mul(log_probs, oh)?;
        let cls_sum = g.sum_all(picked)?;
        let cls_loss = g.scale(cls_sum, -inv_pos);

        // Weighted combination (objectness dominates, as in YOLO practice).
        let obj_w = g.scale(obj_loss, 2.0);
        let partial = g.add(obj_w, box_loss)?;
        g.add(partial, cls_loss)
    }

    /// Decodes the head outputs for a batch of images into per-image
    /// detections (one candidate per cell; the caller thresholds/ranks).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `images` has the wrong shape.
    pub fn decode(&self, images: &Tensor) -> Result<Vec<Vec<RawDetection>>, TensorError> {
        let s = self.grid;
        let n = images.shape()[0];
        let mut g = Graph::new(false);
        let x = g.constant(images.clone());
        let feats = self.features(&mut g, x)?;
        let obj = self.obj_head.forward(&mut g, feats)?;
        let boxes = self.box_head.forward(&mut g, feats)?;
        let cls = self.cls_head.forward(&mut g, feats)?;
        let (obj_v, box_v, cls_v) = (
            g.value(obj).clone(),
            g.value(boxes).clone(),
            g.value(cls).clone(),
        );

        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut dets = Vec::with_capacity(s * s);
            for cy in 0..s {
                for cx in 0..s {
                    let p_obj = sigmoid_scalar(obj_v.at(&[i, 0, cy, cx]));
                    // class argmax + softmax prob
                    let mut logits = Vec::with_capacity(self.num_classes);
                    for c in 0..self.num_classes {
                        logits.push(cls_v.at(&[i, c, cy, cx]));
                    }
                    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
                    let denom: f32 = exps.iter().sum();
                    let (best, best_e) = exps
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                        .expect("nonempty classes");
                    let p_cls = best_e / denom;
                    let tx = sigmoid_scalar(box_v.at(&[i, 0, cy, cx]));
                    let ty = sigmoid_scalar(box_v.at(&[i, 1, cy, cx]));
                    let w = sigmoid_scalar(box_v.at(&[i, 2, cy, cx]));
                    let h = sigmoid_scalar(box_v.at(&[i, 3, cy, cx]));
                    dets.push(RawDetection {
                        score: p_obj * p_cls,
                        class: best,
                        cxcywh: [
                            (cx as f32 + tx) / s as f32,
                            (cy as f32 + ty) / s as f32,
                            w,
                            h,
                        ],
                    });
                }
            }
            out.push(dets);
        }
        Ok(out)
    }
}

impl Module for TinyDetector {
    /// Forward to the objectness logits (the primary head); use
    /// [`TinyDetector::loss`]/[`TinyDetector::decode`] for training and
    /// inference.
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let feats = self.features(g, x)?;
        self.obj_head.forward(g, feats)
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = Vec::new();
        for (conv, bn) in &self.backbone {
            ps.extend(conv.params());
            ps.extend(bn.params());
        }
        ps.extend(self.obj_head.params());
        ps.extend(self.box_head.params());
        ps.extend(self.cls_head.params());
        ps
    }

    fn buffers(&self) -> Vec<(String, &std::cell::RefCell<rex_tensor::Tensor>)> {
        self.backbone
            .iter()
            .flat_map(|(_, bn)| bn.buffers())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_targets(n: usize, s: usize) -> DetectionTargets {
        let mut obj = Tensor::zeros(&[n, s, s]);
        let mut boxes = Tensor::zeros(&[n, 4, s, s]);
        let mut classes = vec![None; n * s * s];
        for i in 0..n {
            obj.set(&[i, 1, 1], 1.0);
            boxes.set(&[i, 0, 1, 1], 0.5);
            boxes.set(&[i, 1, 1, 1], 0.5);
            boxes.set(&[i, 2, 1, 1], 0.3);
            boxes.set(&[i, 3, 1, 1], 0.3);
            classes[i * s * s + s + 1] = Some(i % 2);
        }
        DetectionTargets::new(obj, boxes, classes).unwrap()
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let det = TinyDetector::new(3, 24, 0);
        assert_eq!(det.grid(), 3);
        let mut rng = Prng::new(1);
        let images = rng.normal_tensor(&[2, 3, 24, 24], 0.0, 1.0);
        let targets = toy_targets(2, 3);
        let mut g = Graph::new(true);
        let x = g.constant(images);
        let loss = det.loss(&mut g, x, &targets).unwrap();
        let v = g.value(loss).item();
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn background_only_batch_uses_objectness_only() {
        let det = TinyDetector::new(3, 24, 0);
        let mut rng = Prng::new(2);
        let images = rng.normal_tensor(&[1, 3, 24, 24], 0.0, 1.0);
        let targets = DetectionTargets::new(
            Tensor::zeros(&[1, 3, 3]),
            Tensor::zeros(&[1, 4, 3, 3]),
            vec![None; 9],
        )
        .unwrap();
        let mut g = Graph::new(true);
        let x = g.constant(images);
        let loss = det.loss(&mut g, x, &targets).unwrap();
        assert!(g.value(loss).item().is_finite());
    }

    #[test]
    fn training_reduces_detection_loss() {
        let det = TinyDetector::new(2, 24, 3);
        let mut rng = Prng::new(4);
        let images = rng.normal_tensor(&[2, 3, 24, 24], 0.0, 1.0);
        let targets = toy_targets(2, 3);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..10 {
            for p in det.params() {
                p.zero_grad();
            }
            let mut g = Graph::new(true);
            let x = g.constant(images.clone());
            let loss = det.loss(&mut g, x, &targets).unwrap();
            let lv = g.value(loss).item();
            if step == 0 {
                first = lv;
            }
            last = lv;
            g.backward(loss).unwrap();
            for p in det.params() {
                let grad = p.grad();
                p.value_mut().axpy(-0.05, &grad);
            }
        }
        assert!(
            last < first,
            "detection loss should drop: {first} -> {last}"
        );
    }

    #[test]
    fn decode_emits_one_candidate_per_cell() {
        let det = TinyDetector::new(3, 24, 0);
        let mut rng = Prng::new(5);
        let images = rng.normal_tensor(&[2, 3, 24, 24], 0.0, 1.0);
        let dets = det.decode(&images).unwrap();
        assert_eq!(dets.len(), 2);
        assert_eq!(dets[0].len(), 9);
        for d in &dets[0] {
            assert!((0.0..=1.0).contains(&d.score));
            for v in d.cxcywh {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn targets_validate_shapes() {
        assert!(DetectionTargets::new(
            Tensor::zeros(&[1, 3, 3]),
            Tensor::zeros(&[1, 4, 3, 3]),
            vec![None; 8], // wrong length
        )
        .is_err());
        assert!(DetectionTargets::new(
            Tensor::zeros(&[1, 3, 3]),
            Tensor::zeros(&[1, 3, 3, 3]), // wrong box channels
            vec![None; 9],
        )
        .is_err());
    }
}
