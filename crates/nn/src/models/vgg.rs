//! Micro-VGG: the plain (residual-free) CNN analogue of VGG-16 used by the
//! paper's VGG16-CIFAR100 setting.

use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::conv::Window;
use rex_tensor::{Prng, TensorError};

use crate::layers::{Conv2d, Dropout, Linear};
use crate::module::Module;

/// A VGG-style stack: three stages of `conv-relu-conv-relu-maxpool` (no
/// residual connections, no batch norm — matching the plain-CNN code path
/// the paper's VGG-16 setting exercises) followed by a two-layer classifier
/// with dropout.
#[derive(Debug)]
pub struct MicroVgg {
    convs: Vec<Conv2d>,
    fc1: Linear,
    dropout: Dropout,
    fc2: Linear,
    /// Spatial size expected at input (square images).
    input_size: usize,
    /// Flattened feature count entering the classifier.
    flat_features: usize,
}

impl MicroVgg {
    /// Builds the standard micro-VGG for square `input_size`×`input_size`
    /// RGB images.
    ///
    /// # Panics
    ///
    /// Panics if `input_size < 8` (three 2× poolings must leave at least
    /// one pixel).
    pub fn new(num_classes: usize, input_size: usize, seed: u64) -> Self {
        assert!(
            input_size >= 8,
            "input size {input_size} must be at least 8"
        );
        let mut rng = Prng::new(seed);
        let widths = [3usize, 8, 16, 32];
        let mut convs = Vec::new();
        for stage in 0..3 {
            let (ci, co) = (widths[stage], widths[stage + 1]);
            convs.push(Conv2d::new(
                &format!("vgg.s{stage}c0"),
                ci,
                co,
                Window::same(3),
                &mut rng,
            ));
            convs.push(Conv2d::new(
                &format!("vgg.s{stage}c1"),
                co,
                co,
                Window::same(3),
                &mut rng,
            ));
        }
        let final_channels = widths[3];
        let pool = Window {
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        let mut spatial = input_size;
        for _ in 0..3 {
            spatial = pool.out_size(spatial).expect("input size >= 8");
        }
        let flat = final_channels * spatial * spatial;
        MicroVgg {
            convs,
            fc1: Linear::new("vgg.fc1", flat, 64, &mut rng),
            dropout: Dropout::new(0.5, seed ^ 0xD80F_0FF5),
            fc2: Linear::new("vgg.fc2", 64, num_classes, &mut rng),
            input_size,
            flat_features: flat,
        }
    }

    /// The expected square input resolution.
    pub fn input_size(&self) -> usize {
        self.input_size
    }
}

impl Module for MicroVgg {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let pool = Window {
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        let mut h = x;
        for (i, conv) in self.convs.iter().enumerate() {
            h = conv.forward(g, h)?;
            h = g.relu(h);
            if i % 2 == 1 {
                h = g.maxpool2d(h, pool)?;
            }
        }
        let shape = g.value(h).shape().to_vec();
        let n = shape[0];
        let hflat = g.reshape(h, &[n, self.flat_features])?;
        let mut c = self.fc1.forward(g, hflat)?;
        c = g.relu(c);
        c = self.dropout.forward(g, c)?;
        self.fc2.forward(g, c)
    }

    fn params(&self) -> Vec<Param> {
        let mut ps: Vec<Param> = self.convs.iter().flat_map(Conv2d::params).collect();
        ps.extend(self.fc1.params());
        ps.extend(self.fc2.params());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_tensor::Tensor;

    #[test]
    fn forward_shape_cifar_like() {
        let m = MicroVgg::new(100, 16, 0);
        let mut g = Graph::new(false);
        let x = g.constant(Tensor::zeros(&[2, 3, 16, 16]));
        let y = m.forward(&mut g, x).unwrap();
        assert_eq!(g.value(y).shape(), &[2, 100]);
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn rejects_bad_input_size() {
        let _ = MicroVgg::new(10, 4, 0);
    }

    #[test]
    fn forward_works_for_non_multiple_of_eight() {
        let m = MicroVgg::new(10, 12, 0);
        let mut g = Graph::new(false);
        let x = g.constant(Tensor::zeros(&[2, 3, 12, 12]));
        let y = m.forward(&mut g, x).unwrap();
        assert_eq!(g.value(y).shape(), &[2, 10]);
    }

    #[test]
    fn has_six_conv_layers() {
        let m = MicroVgg::new(10, 16, 0);
        // 6 convs * 2 params + 2 fcs * 2 params
        assert_eq!(m.params().len(), 16);
    }

    #[test]
    fn dropout_only_active_in_training() {
        let m = MicroVgg::new(10, 16, 7);
        let mut rng = Prng::new(9);
        let x = rng.normal_tensor(&[1, 3, 16, 16], 0.0, 1.0);
        let run = |training: bool| {
            let mut g = Graph::new(training);
            let xn = g.constant(x.clone());
            let y = m.forward(&mut g, xn).unwrap();
            g.value(y).clone()
        };
        // eval is deterministic
        assert_eq!(run(false), run(false));
        // train differs from eval (dropout mask)
        assert_ne!(run(true), run(false));
    }
}
