//! Model zoo: one architecture per experimental setting of the paper.

pub mod detector;
pub mod mlp;
pub mod resnet;
pub mod transformer;
pub mod vae;
pub mod vgg;
