//! Tiny pre-LN transformer encoder — the BERT analogue for the synthetic
//! GLUE fine-tuning experiments (Tables 10–11 of the paper).

use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::{Prng, TensorError};

use crate::attention::MultiHeadAttention;
use crate::layers::{Embedding, LayerNorm, Linear};
use crate::module::Module;

/// Architecture hyperparameters of a [`TinyTransformer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Vocabulary size (including special tokens).
    pub vocab: usize,
    /// Model (embedding) dimension.
    pub dim: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Number of encoder blocks.
    pub depth: usize,
    /// Fixed sequence length.
    pub seq_len: usize,
    /// Feed-forward expansion factor.
    pub ff_mult: usize,
}

impl Default for TransformerConfig {
    /// A BERT-in-miniature: 4 layers would be overkill for the synthetic
    /// tasks, so the default is 2 blocks of dim 32.
    fn default() -> Self {
        TransformerConfig {
            vocab: 64,
            dim: 32,
            heads: 4,
            depth: 2,
            seq_len: 16,
            ff_mult: 2,
        }
    }
}

#[derive(Debug)]
struct Block {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
}

impl Block {
    fn new(name: &str, cfg: &TransformerConfig, rng: &mut Prng) -> Self {
        Block {
            ln1: LayerNorm::new(&format!("{name}.ln1"), cfg.dim),
            attn: MultiHeadAttention::new(&format!("{name}.attn"), cfg.dim, cfg.heads, rng),
            ln2: LayerNorm::new(&format!("{name}.ln2"), cfg.dim),
            ff1: Linear::xavier(&format!("{name}.ff1"), cfg.dim, cfg.dim * cfg.ff_mult, rng),
            ff2: Linear::xavier(&format!("{name}.ff2"), cfg.dim * cfg.ff_mult, cfg.dim, rng),
        }
    }

    fn forward(
        &self,
        g: &mut Graph,
        x: NodeId,
        b: usize,
        t: usize,
        d: usize,
    ) -> Result<NodeId, TensorError> {
        // Pre-LN attention with residual.
        let normed = self.ln1.forward(g, x)?;
        let attn = self.attn.forward(g, normed)?;
        let x = g.add(x, attn)?;
        // Pre-LN feed-forward with residual.
        let normed = self.ln2.forward(g, x)?;
        let flat = g.reshape(normed, &[b * t, d])?;
        let h = self.ff1.forward(g, flat)?;
        let h = g.gelu(h);
        let h = self.ff2.forward(g, h)?;
        let h3 = g.reshape(h, &[b, t, d])?;
        g.add(x, h3)
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.ln1.params();
        ps.extend(self.attn.params());
        ps.extend(self.ln2.params());
        ps.extend(self.ff1.params());
        ps.extend(self.ff2.params());
        ps
    }
}

/// A small pre-LN transformer encoder with token + learned positional
/// embeddings, a masked-token prediction head (pre-training) and a
/// CLS-pooled classification path (fine-tuning).
///
/// Token index 0 is reserved as the `[CLS]` position by the synthetic GLUE
/// data generator; [`TinyTransformer::classify`] pools there.
#[derive(Debug)]
pub struct TinyTransformer {
    cfg: TransformerConfig,
    tok: Embedding,
    pos: Param,
    blocks: Vec<Block>,
    ln_f: LayerNorm,
    lm_head: Linear,
}

impl TinyTransformer {
    /// Builds a transformer from its config.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads` (from the attention
    /// layer) or any config field is zero.
    pub fn new(cfg: TransformerConfig, seed: u64) -> Self {
        assert!(
            cfg.vocab > 0 && cfg.dim > 0 && cfg.depth > 0 && cfg.seq_len > 0 && cfg.ff_mult > 0,
            "all transformer config fields must be positive: {cfg:?}"
        );
        let mut rng = Prng::new(seed);
        let tok = Embedding::new("tf.tok", cfg.vocab, cfg.dim, &mut rng);
        let pos = Param::new(
            "tf.pos",
            rng.normal_tensor(&[cfg.seq_len, cfg.dim], 0.0, 0.02),
        );
        let blocks = (0..cfg.depth)
            .map(|i| Block::new(&format!("tf.block{i}"), &cfg, &mut rng))
            .collect();
        let ln_f = LayerNorm::new("tf.ln_f", cfg.dim);
        let lm_head = Linear::xavier("tf.lm_head", cfg.dim, cfg.vocab, &mut rng);
        TinyTransformer {
            cfg,
            tok,
            pos,
            blocks,
            ln_f,
            lm_head,
        }
    }

    /// The architecture config.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Encodes a batch of `b` sequences (flattened token ids, length
    /// `b·seq_len`) into contextual representations `[b, T, D]`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `tokens.len() != b·seq_len` or any token
    /// is out of vocabulary.
    pub fn encode(&self, g: &mut Graph, tokens: &[usize], b: usize) -> Result<NodeId, TensorError> {
        let (t, d) = (self.cfg.seq_len, self.cfg.dim);
        if tokens.len() != b * t {
            return Err(TensorError::ShapeDataMismatch {
                shape: vec![b, t],
                data_len: tokens.len(),
            });
        }
        let emb = self.tok.lookup(g, tokens)?; // [b*t, d]
        let emb3 = g.reshape(emb, &[b, t, d])?;
        let pos = g.param(&self.pos); // [t, d] broadcasts over batch
        let mut h = g.add(emb3, pos)?;
        for block in &self.blocks {
            h = block.forward(g, h, b, t, d)?;
        }
        self.ln_f.forward(g, h)
    }

    /// Masked-token logits for every position: `[b·T, vocab]`. Used by the
    /// synthetic pre-training task.
    ///
    /// # Errors
    ///
    /// As [`TinyTransformer::encode`].
    pub fn lm_logits(
        &self,
        g: &mut Graph,
        tokens: &[usize],
        b: usize,
    ) -> Result<NodeId, TensorError> {
        let h = self.encode(g, tokens, b)?;
        let flat = g.reshape(h, &[b * self.cfg.seq_len, self.cfg.dim])?;
        self.lm_head.forward(g, flat)
    }

    /// Classification logits from the CLS (position 0) representation,
    /// through a caller-owned task head.
    ///
    /// # Errors
    ///
    /// As [`TinyTransformer::encode`], plus head shape errors.
    pub fn classify(
        &self,
        g: &mut Graph,
        tokens: &[usize],
        b: usize,
        head: &Linear,
    ) -> Result<NodeId, TensorError> {
        let h = self.encode(g, tokens, b)?;
        let cls = g.select_time(h, 0)?;
        head.forward(g, cls)
    }

    /// Encoder parameters (embeddings, blocks, final LN) **plus** the LM
    /// head — the set updated during pre-training.
    pub fn params(&self) -> Vec<Param> {
        let mut ps = self.tok.params();
        ps.push(self.pos.clone());
        for blk in &self.blocks {
            ps.extend(blk.params());
        }
        ps.extend(self.ln_f.params());
        ps.extend(self.lm_head.params());
        ps
    }

    /// Encoder-only parameters (without the LM head) — the set shared with
    /// fine-tuning, where a fresh task head is added.
    pub fn encoder_params(&self) -> Vec<Param> {
        let mut ps = self.tok.params();
        ps.push(self.pos.clone());
        for blk in &self.blocks {
            ps.extend(blk.params());
        }
        ps.extend(self.ln_f.params());
        ps
    }

    /// Deep copy of all weights into a new transformer — used to fine-tune
    /// the same pre-trained checkpoint independently for each GLUE task and
    /// budget, exactly as the paper does.
    pub fn clone_weights(&self, seed: u64) -> TinyTransformer {
        let fresh = TinyTransformer::new(self.cfg, seed);
        let src = self.params();
        let dst = fresh.params();
        for (s, d) in src.iter().zip(&dst) {
            *d.value_mut() = s.value().clone();
        }
        fresh
    }

    /// Snapshot of the flattened pixel values of every parameter, used by
    /// tests to detect training updates.
    pub fn checksum(&self) -> f64 {
        self.params()
            .iter()
            .map(|p| p.value().data().iter().map(|&v| v as f64).sum::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TinyTransformer {
        TinyTransformer::new(
            TransformerConfig {
                vocab: 12,
                dim: 8,
                heads: 2,
                depth: 1,
                seq_len: 4,
                ff_mult: 2,
            },
            0,
        )
    }

    #[test]
    fn encode_shape() {
        let tf = tiny();
        let mut g = Graph::new(false);
        let tokens = vec![0usize, 1, 2, 3, 4, 5, 6, 7]; // b=2
        let h = tf.encode(&mut g, &tokens, 2).unwrap();
        assert_eq!(g.value(h).shape(), &[2, 4, 8]);
    }

    #[test]
    fn lm_logits_shape() {
        let tf = tiny();
        let mut g = Graph::new(false);
        let tokens = vec![1usize; 4];
        let l = tf.lm_logits(&mut g, &tokens, 1).unwrap();
        assert_eq!(g.value(l).shape(), &[4, 12]);
    }

    #[test]
    fn classify_pools_cls() {
        let tf = tiny();
        let mut rng = Prng::new(1);
        let head = Linear::new("head", 8, 3, &mut rng);
        let mut g = Graph::new(false);
        let tokens = vec![2usize; 8];
        let logits = tf.classify(&mut g, &tokens, 2, &head).unwrap();
        assert_eq!(g.value(logits).shape(), &[2, 3]);
    }

    #[test]
    fn wrong_token_count_errors() {
        let tf = tiny();
        let mut g = Graph::new(false);
        assert!(tf.encode(&mut g, &[1, 2, 3], 1).is_err());
    }

    #[test]
    fn clone_weights_is_deep_and_exact() {
        let tf = tiny();
        let copy = tf.clone_weights(99);
        assert_eq!(tf.checksum(), copy.checksum());
        // mutating the copy must not affect the original
        copy.params()[0].value_mut().data_mut()[0] += 1.0;
        assert_ne!(tf.checksum(), copy.checksum());
    }

    #[test]
    fn lm_training_reduces_loss() {
        let tf = tiny();
        // Trivial language: token i predicts itself.
        let tokens = vec![3usize, 5, 7, 9];
        let targets = tokens.clone();
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..15 {
            for p in tf.params() {
                p.zero_grad();
            }
            let mut g = Graph::new(true);
            let logits = tf.lm_logits(&mut g, &tokens, 1).unwrap();
            let loss = g.cross_entropy(logits, &targets).unwrap();
            let lv = g.value(loss).item();
            if step == 0 {
                first = lv;
            }
            last = lv;
            g.backward(loss).unwrap();
            for p in tf.params() {
                let grad = p.grad();
                p.value_mut().axpy(-0.1, &grad);
            }
        }
        assert!(last < first * 0.8, "LM loss should drop: {first} -> {last}");
    }

    #[test]
    fn encoder_params_excludes_lm_head() {
        let tf = tiny();
        assert_eq!(tf.params().len(), tf.encoder_params().len() + 2);
    }
}
