//! [`Sequential`] — chain arbitrary modules, optionally interleaved with
//! pointwise activations, into one [`Module`].

use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::TensorError;

use crate::module::{Activation, Module};

enum Stage {
    Layer(Box<dyn Module>),
    Activation(Activation),
}

/// An ordered chain of modules and activations.
///
/// ```
/// use rex_nn::{Activation, Linear, Module, Sequential};
/// use rex_autograd::Graph;
/// use rex_tensor::{Prng, Tensor};
///
/// let mut rng = Prng::new(0);
/// let net = Sequential::new()
///     .layer(Linear::new("fc1", 4, 8, &mut rng))
///     .activation(Activation::Relu)
///     .layer(Linear::new("fc2", 8, 2, &mut rng));
/// let mut g = Graph::new(false);
/// let x = g.constant(Tensor::zeros(&[3, 4]));
/// let y = net.forward(&mut g, x)?;
/// assert_eq!(g.value(y).shape(), &[3, 2]);
/// # Ok::<(), rex_tensor::TensorError>(())
/// ```
#[derive(Default)]
pub struct Sequential {
    stages: Vec<Stage>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} stages)", self.stages.len())
    }
}

impl Sequential {
    /// An empty chain (the identity module).
    pub fn new() -> Self {
        Sequential { stages: Vec::new() }
    }

    /// Appends a module.
    #[must_use]
    pub fn layer(mut self, module: impl Module + 'static) -> Self {
        self.stages.push(Stage::Layer(Box::new(module)));
        self
    }

    /// Appends a pointwise activation.
    #[must_use]
    pub fn activation(mut self, activation: Activation) -> Self {
        self.stages.push(Stage::Activation(activation));
        self
    }

    /// Number of stages (layers + activations).
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let mut h = x;
        for stage in &self.stages {
            h = match stage {
                Stage::Layer(m) => m.forward(g, h)?,
                Stage::Activation(a) => a.apply(g, h),
            };
        }
        Ok(h)
    }

    fn params(&self) -> Vec<Param> {
        self.stages
            .iter()
            .flat_map(|s| match s {
                Stage::Layer(m) => m.params(),
                Stage::Activation(_) => Vec::new(),
            })
            .collect()
    }

    fn buffers(&self) -> Vec<(String, &std::cell::RefCell<rex_tensor::Tensor>)> {
        self.stages
            .iter()
            .flat_map(|s| match s {
                Stage::Layer(m) => m.buffers(),
                Stage::Activation(_) => Vec::new(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm, Linear};
    use rex_tensor::{Prng, Tensor};

    #[test]
    fn empty_chain_is_identity() {
        let net = Sequential::new();
        assert!(net.is_empty());
        let mut g = Graph::new(false);
        let x = g.constant(Tensor::ones(&[2, 2]));
        let y = net.forward(&mut g, x).unwrap();
        assert_eq!(y, x);
        assert!(net.params().is_empty());
    }

    #[test]
    fn collects_params_in_order() {
        let mut rng = Prng::new(1);
        let net = Sequential::new()
            .layer(Linear::new("a", 4, 4, &mut rng))
            .activation(Activation::Relu)
            .layer(BatchNorm::new("bn", 4))
            .layer(Linear::new("b", 4, 2, &mut rng));
        assert_eq!(net.len(), 4);
        let names: Vec<String> = net.params().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["a.weight", "a.bias", "bn.gamma", "bn.beta", "b.weight", "b.bias"]
        );
    }

    #[test]
    fn trains_like_a_hand_rolled_mlp() {
        let mut rng = Prng::new(2);
        let net = Sequential::new()
            .layer(Linear::new("a", 2, 16, &mut rng))
            .activation(Activation::Tanh)
            .layer(Linear::new("b", 16, 2, &mut rng));
        let x = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[4, 2]).unwrap();
        let targets = [0usize, 0, 1, 1];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..40 {
            for p in net.params() {
                p.zero_grad();
            }
            let mut g = Graph::new(true);
            let xn = g.constant(x.clone());
            let logits = net.forward(&mut g, xn).unwrap();
            let loss = g.cross_entropy(logits, &targets).unwrap();
            let lv = g.value(loss).item();
            if step == 0 {
                first = lv;
            }
            last = lv;
            g.backward(loss).unwrap();
            for p in net.params() {
                let grad = p.grad();
                p.value_mut().axpy(-0.5, &grad);
            }
        }
        assert!(last < first * 0.5, "{first} -> {last}");
    }
}
