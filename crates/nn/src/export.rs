//! REXGGUF — a GGUF-flavoured single-file model export format.
//!
//! Training snapshots (`REXSTATE1`) are resume-oriented: they carry
//! optimizer moments, RNG streams, and trace cursors, and their tensor
//! payloads sit wherever the section container puts them. This module is
//! the *inference-oriented* counterpart: one mmap-friendly file holding
//! only the model tensors, each payload aligned to [`ALIGN`] bytes so a
//! reader can map the file and point SIMD kernels straight at the data —
//! no copy, no decode pass for the f32/f16 cases, and block-quantized
//! [`Q8_0`](DType::Q80) payloads laid out exactly as the quantized GEMM
//! microkernel consumes them (all block scales, then all quants).
//!
//! ## Layout
//!
//! ```text
//! magic    b"REXGGUF\0"
//! u32      version (= 1)
//! u32      tensor count
//! u32      metadata count
//! meta     count × (u32 klen, key, u32 vlen, value)      UTF-8 strings
//! index    count × (u32 nlen, name, u8 dtype tag, u32 ndim,
//!                   ndim × u64 dims, u64 offset, u64 nbytes)
//! pad      zero bytes to the next 32-byte boundary
//! data     payloads, each starting at offset (relative to the start of
//!          the data section, itself 32-byte aligned from byte 0)
//! ```
//!
//! All integers are little-endian. Tensor `offset`s are relative to the
//! data section and always multiples of [`ALIGN`]; inter-payload gaps are
//! zero-filled. Dtype tags: 0 = f32, 1 = f16, 2 = bf16, 3 = q8_0.
//!
//! ## Quantization policy
//!
//! [`write_export`] narrows every tensor to the requested `quant` format
//! with one exception: under `q8_0`, tensors with fewer than two
//! dimensions (biases, norm scales/shifts) stay `f32`. They are a
//! negligible fraction of the bytes and disproportionately sensitive to
//! quantization error — the same policy mainstream GGUF exporters use.

use std::io::{self, Read, Write};
use std::path::Path;

use rex_tensor::storage::Storage;
use rex_tensor::{DType, Tensor};

/// File magic, 8 bytes at offset zero.
pub const MAGIC: &[u8; 8] = b"REXGGUF\0";
/// Current format version.
pub const VERSION: u32 = 1;
/// Payload alignment in bytes. 32 covers every vector width the SIMD
/// backend dispatches (AVX-512 included) so mapped payloads can feed
/// aligned loads directly.
pub const ALIGN: usize = 32;

/// Hard cap on tensor/metadata counts and name/value lengths while
/// parsing, so a corrupt header cannot drive huge allocations.
const SANE_MAX: usize = 1 << 20;

/// One entry of the tensor index.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportEntry {
    /// Tensor name (the snapshot's parameter name).
    pub name: String,
    /// Storage format of the payload.
    pub dtype: DType,
    /// Logical shape.
    pub dims: Vec<usize>,
    /// Payload start, relative to the data section; multiple of [`ALIGN`].
    pub offset: u64,
    /// Exact payload length in bytes.
    pub nbytes: u64,
}

impl ExportEntry {
    /// Logical element count (product of `dims`).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A parsed REXGGUF file: header, metadata, index, and the raw data
/// section held in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportFile {
    /// Format version of the file read.
    pub version: u32,
    /// Key/value metadata in file order (e.g. `source`, `dtype`,
    /// `backend`, `simd_level`).
    pub meta: Vec<(String, String)>,
    /// Tensor index in file order.
    pub tensors: Vec<ExportEntry>,
    /// The data section (everything after the aligned header).
    data: Vec<u8>,
}

fn tag_of(dtype: DType) -> u8 {
    match dtype {
        DType::F32 => 0,
        DType::F16 => 1,
        DType::Bf16 => 2,
        DType::Q80 => 3,
    }
}

fn dtype_of(tag: u8) -> Option<DType> {
    Some(match tag {
        0 => DType::F32,
        1 => DType::F16,
        2 => DType::Bf16,
        3 => DType::Q80,
        _ => return None,
    })
}

/// The storage format a tensor of `shape` gets under the requested
/// export `quant` (sub-2-D tensors stay f32 under `q8_0`; see the module
/// docs).
pub fn storage_dtype_for(quant: DType, shape: &[usize]) -> DType {
    if quant == DType::Q80 && shape.len() < 2 {
        DType::F32
    } else {
        quant
    }
}

/// Serializes `entries` into the REXGGUF format, narrowing payloads to
/// `quant` (per [`storage_dtype_for`]). `meta` is written verbatim, in
/// order. Returns the total bytes written.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_export(
    w: &mut impl Write,
    entries: &[(String, Tensor)],
    quant: DType,
    meta: &[(String, String)],
) -> io::Result<u64> {
    // Narrow every payload first so the index offsets are exact.
    let payloads: Vec<Vec<u8>> = entries
        .iter()
        .map(|(_, t)| {
            Storage::from_f32(storage_dtype_for(quant, t.shape()), t.data()).to_le_bytes()
        })
        .collect();

    let mut header = Vec::new();
    header.extend_from_slice(MAGIC);
    put_u32(&mut header, VERSION);
    put_u32(&mut header, entries.len() as u32);
    put_u32(&mut header, meta.len() as u32);
    for (k, v) in meta {
        put_str(&mut header, k);
        put_str(&mut header, v);
    }
    let mut offset = 0u64;
    for ((name, t), payload) in entries.iter().zip(&payloads) {
        put_str(&mut header, name);
        header.push(tag_of(storage_dtype_for(quant, t.shape())));
        put_u32(&mut header, t.shape().len() as u32);
        for &d in t.shape() {
            header.extend_from_slice(&(d as u64).to_le_bytes());
        }
        header.extend_from_slice(&offset.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        offset = align_up(offset + payload.len() as u64);
    }
    // Pad the header to the data-section boundary, then emit payloads at
    // their aligned offsets.
    let data_start = align_up(header.len() as u64);
    header.resize(data_start as usize, 0);
    w.write_all(&header)?;
    let mut written = 0u64;
    for payload in &payloads {
        w.write_all(payload)?;
        written += payload.len() as u64;
        let aligned = align_up(written);
        w.write_all(&vec![0u8; (aligned - written) as usize])?;
        written = aligned;
    }
    Ok(data_start + written)
}

/// Writes `entries` to `path` (truncating) and returns the file size.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_to_path(
    path: &Path,
    entries: &[(String, Tensor)],
    quant: DType,
    meta: &[(String, String)],
) -> io::Result<u64> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    let n = write_export(&mut f, entries, quant, meta)?;
    f.flush()?;
    Ok(n)
}

impl ExportFile {
    /// Parses a REXGGUF image from memory.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, unknown version or dtype tag,
    /// malformed strings, or an index pointing outside the data section.
    pub fn parse(bytes: &[u8]) -> io::Result<ExportFile> {
        let mut r = bytes;
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a REXGGUF file (bad magic)"));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(bad(&format!(
                "unsupported REXGGUF version {version} (expected {VERSION})"
            )));
        }
        let n_tensors = read_u32(&mut r)? as usize;
        let n_meta = read_u32(&mut r)? as usize;
        if n_tensors > SANE_MAX || n_meta > SANE_MAX {
            return Err(bad("implausible header counts"));
        }
        let mut meta = Vec::with_capacity(n_meta);
        for _ in 0..n_meta {
            let k = read_str(&mut r)?;
            let v = read_str(&mut r)?;
            meta.push((k, v));
        }
        let mut tensors = Vec::with_capacity(n_tensors);
        for _ in 0..n_tensors {
            let name = read_str(&mut r)?;
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            let dtype = dtype_of(tag[0])
                .ok_or_else(|| bad(&format!("unknown dtype tag {} for {name:?}", tag[0])))?;
            let ndim = read_u32(&mut r)? as usize;
            if ndim > 8 {
                return Err(bad(&format!("implausible ndim {ndim} for {name:?}")));
            }
            let mut dims = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                dims.push(read_u64(&mut r)? as usize);
            }
            let offset = read_u64(&mut r)?;
            let nbytes = read_u64(&mut r)?;
            tensors.push(ExportEntry {
                name,
                dtype,
                dims,
                offset,
                nbytes,
            });
        }
        let consumed = bytes.len() - r.len();
        let data_start = align_up(consumed as u64) as usize;
        if data_start > bytes.len() {
            return Err(bad("file truncated before the data section"));
        }
        let data = bytes[data_start..].to_vec();
        for e in &tensors {
            if e.offset % ALIGN as u64 != 0 {
                return Err(bad(&format!("misaligned payload for {:?}", e.name)));
            }
            let end = e
                .offset
                .checked_add(e.nbytes)
                .ok_or_else(|| bad("offset overflow"))?;
            if end as usize > data.len() {
                return Err(bad(&format!(
                    "payload of {:?} extends past the end of the file",
                    e.name
                )));
            }
            if e.nbytes as usize != e.dtype.nbytes(e.len()) {
                return Err(bad(&format!(
                    "payload size of {:?} does not match its dtype and shape",
                    e.name
                )));
            }
        }
        Ok(ExportFile {
            version,
            meta,
            tensors,
            data,
        })
    }

    /// Reads and parses `path`.
    ///
    /// # Errors
    ///
    /// Filesystem errors, plus everything [`parse`](Self::parse) rejects.
    pub fn read(path: &Path) -> io::Result<ExportFile> {
        ExportFile::parse(&std::fs::read(path)?)
    }

    /// Looks up a metadata value by key (first match).
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a tensor entry by name.
    pub fn entry(&self, name: &str) -> Option<&ExportEntry> {
        self.tensors.iter().find(|e| e.name == name)
    }

    /// The raw (still-encoded) payload bytes of an entry.
    pub fn payload(&self, entry: &ExportEntry) -> &[u8] {
        &self.data[entry.offset as usize..(entry.offset + entry.nbytes) as usize]
    }

    /// Decodes an entry's payload into its [`Storage`] form.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the payload length disagrees with the entry
    /// (cannot happen on a file accepted by [`parse`](Self::parse)).
    pub fn storage(&self, entry: &ExportEntry) -> io::Result<Storage> {
        Storage::from_le_bytes(entry.dtype, entry.len(), self.payload(entry))
            .ok_or_else(|| bad(&format!("corrupt payload for {:?}", entry.name)))
    }

    /// Decodes an entry into an f32 [`Tensor`] (widening / dequantizing).
    ///
    /// # Errors
    ///
    /// As [`storage`](Self::storage), plus an invalid shape.
    pub fn tensor(&self, entry: &ExportEntry) -> io::Result<Tensor> {
        Tensor::from_vec(self.storage(entry)?.to_f32(), &entry.dims)
            .map_err(|e| bad(&format!("bad shape for {:?}: {e}", entry.name)))
    }
}

fn align_up(n: u64) -> u64 {
    n.div_ceil(ALIGN as u64) * ALIGN as u64
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > SANE_MAX {
        return Err(bad("implausible string length"));
    }
    let mut b = vec![0u8; len];
    r.read_exact(&mut b)?;
    String::from_utf8(b).map_err(|_| bad("non-UTF-8 string"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_tensor::Prng;

    fn sample_entries() -> Vec<(String, Tensor)> {
        let mut rng = Prng::new(0xE4);
        vec![
            (
                "layer0.weight".to_owned(),
                rng.normal_tensor(&[24, 144], 0.0, 0.3),
            ),
            ("layer0.bias".to_owned(), rng.normal_tensor(&[24], 0.0, 0.1)),
            (
                "layer1.weight".to_owned(),
                rng.normal_tensor(&[10, 24], 0.0, 0.3),
            ),
            ("layer1.bias".to_owned(), rng.normal_tensor(&[10], 0.0, 0.1)),
        ]
    }

    fn roundtrip(quant: DType) -> (Vec<(String, Tensor)>, ExportFile, u64) {
        let entries = sample_entries();
        let meta = vec![
            ("source".to_owned(), "unit-test".to_owned()),
            ("quant".to_owned(), quant.name().to_owned()),
        ];
        let mut buf = Vec::new();
        let n = write_export(&mut buf, &entries, quant, &meta).unwrap();
        assert_eq!(n as usize, buf.len());
        let file = ExportFile::parse(&buf).unwrap();
        (entries, file, n)
    }

    #[test]
    fn f32_export_round_trips_exactly() {
        let (entries, file, _) = roundtrip(DType::F32);
        assert_eq!(file.version, VERSION);
        assert_eq!(file.meta_value("source"), Some("unit-test"));
        assert_eq!(file.tensors.len(), entries.len());
        for (name, t) in &entries {
            let e = file.entry(name).unwrap();
            assert_eq!(e.dtype, DType::F32);
            assert_eq!(e.dims, t.shape());
            assert_eq!(e.offset % ALIGN as u64, 0);
            assert_eq!(file.tensor(e).unwrap().data(), t.data());
        }
    }

    #[test]
    fn q8_0_keeps_one_dim_tensors_f32_and_bounds_error() {
        let (entries, file, q_size) = roundtrip(DType::Q80);
        for (name, t) in &entries {
            let e = file.entry(name).unwrap();
            if t.shape().len() < 2 {
                assert_eq!(e.dtype, DType::F32, "{name} should stay f32");
                assert_eq!(file.tensor(e).unwrap().data(), t.data());
            } else {
                assert_eq!(e.dtype, DType::Q80);
                let back = file.tensor(e).unwrap();
                let max_abs = t.data().iter().fold(0f32, |m, x| m.max(x.abs()));
                // per-block bound is scale/2 ≤ max|block|/254; the global
                // max is a safe (loose) version of it
                let bound = max_abs / 254.0 + 1e-6;
                for (a, b) in t.data().iter().zip(back.data()) {
                    assert!((a - b).abs() <= bound, "{name}: {a} vs {b}");
                }
            }
        }
        let (_, _, f_size) = roundtrip(DType::F32);
        assert!(
            (q_size as f64) < 0.45 * f_size as f64,
            "q8_0 file ({q_size} B) should be well under half the f32 file ({f_size} B)"
        );
    }

    #[test]
    fn f16_export_halves_payload_bytes() {
        let (entries, file, _) = roundtrip(DType::F16);
        for (name, t) in &entries {
            let e = file.entry(name).unwrap();
            assert_eq!(e.dtype, DType::F16);
            assert_eq!(e.nbytes as usize, 2 * t.data().len());
        }
    }

    #[test]
    fn corrupt_files_are_rejected_with_invalid_data() {
        let (_, _, _) = roundtrip(DType::F32);
        let mut buf = Vec::new();
        write_export(&mut buf, &sample_entries(), DType::F32, &[]).unwrap();

        // bad magic
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xFF;
        assert!(ExportFile::parse(&bad_magic).is_err());

        // bad version
        let mut bad_version = buf.clone();
        bad_version[8] = 99;
        assert!(ExportFile::parse(&bad_version).is_err());

        // truncated data section (cut past the trailing alignment pad,
        // into the final payload)
        let short = &buf[..buf.len() - 64];
        let err = ExportFile::parse(short).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // empty input
        assert!(ExportFile::parse(&[]).is_err());
    }

    #[test]
    fn empty_model_exports_and_parses() {
        let mut buf = Vec::new();
        write_export(&mut buf, &[], DType::F32, &[]).unwrap();
        let file = ExportFile::parse(&buf).unwrap();
        assert!(file.tensors.is_empty() && file.meta.is_empty());
    }
}
