//! Parameter checkpointing: a small self-describing binary format for
//! saving and restoring model weights.
//!
//! The BERT-GLUE experiment pre-trains one transformer checkpoint and
//! fine-tunes it many times; persisting that checkpoint lets the harness
//! (and downstream users) skip re-pre-training. The format is
//! little-endian, versioned, and name-addressed:
//!
//! ```text
//! magic "REXCKPT1" | u32 count | repeat: u32 name_len | name (utf-8)
//!                  | u32 ndim  | u64 dims…            | f32 data…
//! ```

use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use rex_autograd::Param;
use rex_tensor::Tensor;

const MAGIC: &[u8; 8] = b"REXCKPT1";

/// Saves parameters (name, shape, values) to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(path: &Path, params: &[Param]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let name = p.name();
        let value = p.value();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(value.ndim() as u32).to_le_bytes())?;
        for &d in value.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads all `(name, tensor)` entries from a checkpoint.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic/um-parseable file, or propagates
/// I/O errors.
pub fn load_raw(path: &Path) -> io::Result<Vec<(String, Tensor)>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a REXCKPT1 checkpoint",
        ));
    }
    let count = read_u32(&mut r)? as usize;
    // sanity caps: reject corrupt headers before attempting allocation
    const MAX_ENTRIES: usize = 1 << 20;
    const MAX_NAME: usize = 1 << 12;
    const MAX_ELEMENTS: usize = 1 << 30;
    if count > MAX_ENTRIES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible entry count {count} in checkpoint"),
        ));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > MAX_NAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("implausible name length {name_len} in checkpoint"),
            ));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let ndim = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            shape.push(u64::from_le_bytes(b) as usize);
        }
        let n: usize = shape.iter().product();
        if n > MAX_ELEMENTS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("implausible tensor size {n} in checkpoint"),
            ));
        }
        let mut data = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        let tensor = Tensor::from_vec(data, &shape)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        out.push((name, tensor));
    }
    Ok(out)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Restores values into `params`, matching entries by name.
///
/// Every parameter must find a checkpoint entry with its exact name and
/// shape; extra checkpoint entries are ignored (so a full-model checkpoint
/// can initialise a sub-model).
///
/// # Errors
///
/// Returns `InvalidData` when a parameter has no matching entry or the
/// shapes disagree.
pub fn load_into(path: &Path, params: &[Param]) -> io::Result<()> {
    let entries = load_raw(path)?;
    for p in params {
        let name = p.name();
        let entry = entries.iter().find(|(n, _)| *n == name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint has no entry named {name:?}"),
            )
        })?;
        if entry.1.shape() != p.value().shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shape mismatch for {name:?}: checkpoint {:?} vs parameter {:?}",
                    entry.1.shape(),
                    p.value().shape()
                ),
            ));
        }
        *p.value_mut() = entry.1.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp::Mlp;
    use crate::module::Module;
    use rex_tensor::Prng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rex_ckpt_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_values_and_names() {
        let mut rng = Prng::new(1);
        let m = Mlp::new("m", &[4, 8, 2], &mut rng);
        let path = tmp("roundtrip");
        save(&path, &m.params()).unwrap();

        let raw = load_raw(&path).unwrap();
        assert_eq!(raw.len(), 4); // 2 layers x (weight + bias)
        assert!(raw.iter().any(|(n, _)| n == "m.fc0.weight"));

        // load into a differently-initialised clone
        let mut rng2 = Prng::new(2);
        let m2 = Mlp::new("m", &[4, 8, 2], &mut rng2);
        assert_ne!(*m.params()[0].value(), *m2.params()[0].value());
        load_into(&path, &m2.params()).unwrap();
        for (a, b) in m.params().iter().zip(m2.params().iter()) {
            assert_eq!(*a.value(), *b.value());
        }
        let _ = fs::remove_file(path);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("badmagic");
        fs::write(&path, b"NOTACKPT____").unwrap();
        assert!(load_raw(&path).is_err());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn missing_entry_is_an_error() {
        let mut rng = Prng::new(3);
        let small = Mlp::new("a", &[2, 2], &mut rng);
        let path = tmp("missing");
        save(&path, &small.params()).unwrap();
        let other = Mlp::new("b", &[2, 2], &mut rng);
        let err = load_into(&path, &other.params()).unwrap_err();
        assert!(err.to_string().contains("no entry"), "{err}");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut rng = Prng::new(4);
        let m = Mlp::new("m", &[2, 3], &mut rng);
        let path = tmp("shape");
        save(&path, &m.params()).unwrap();
        let wider = Mlp::new("m", &[2, 4], &mut rng);
        let err = load_into(&path, &wider.params()).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn extra_checkpoint_entries_are_ignored() {
        let mut rng = Prng::new(5);
        let full = Mlp::new("m", &[4, 8, 2], &mut rng);
        let path = tmp("extra");
        save(&path, &full.params()).unwrap();
        // a "sub-model" holding only the first layer's params
        let sub = &full.params()[..2];
        load_into(&path, sub).unwrap();
        let _ = fs::remove_file(path);
    }
}
