//! Parameter checkpointing: a small self-describing binary format for
//! saving and restoring model weights, plus the `REXSTATE1` section
//! container used by full training-state snapshots.
//!
//! The BERT-GLUE experiment pre-trains one transformer checkpoint and
//! fine-tunes it many times; persisting that checkpoint lets the harness
//! (and downstream users) skip re-pre-training. The weight format is
//! little-endian, versioned, and name-addressed:
//!
//! ```text
//! magic "REXCKPT1" | u32 count | repeat: u32 name_len | name (utf-8)
//!                  | u32 ndim  | u64 dims…            | f32 data…
//! ```
//!
//! The full-state container reuses the same entry encoding inside opaque
//! named sections (see DESIGN.md §12 for the byte-layout table):
//!
//! ```text
//! magic "REXSTATE1" | u32 section_count
//!                   | repeat: u32 name_len | name (utf-8)
//!                   |         u64 byte_len | bytes…
//!                   | u64 fnv1a64(all preceding bytes)
//! ```
//!
//! Both formats are written through [`rex_faults::atomic_write`], so a
//! crash mid-save leaves the previous file intact rather than a torn one.

use std::fs::{self, File};
use std::io::{self, BufReader, Read};
use std::path::Path;

use rex_autograd::Param;
use rex_tensor::dtype::{bf16_bits_to_f32, f16_bits_to_f32, f32_to_bf16_bits, f32_to_f16_bits};
use rex_tensor::{DType, Tensor};

const MAGIC: &[u8; 8] = b"REXCKPT1";
/// Magic of the full training-state container.
pub const STATE_MAGIC: &[u8; 9] = b"REXSTATE1";

// sanity caps: reject corrupt headers before attempting allocation
const MAX_ENTRIES: usize = 1 << 20;
const MAX_NAME: usize = 1 << 12;
const MAX_ELEMENTS: usize = 1 << 30;
const MAX_SECTIONS: usize = 64;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Saves parameters (name, shape, values) to `path`, atomically: the
/// bytes land in a same-directory temp file which is fsynced and renamed
/// over the target, so a crash mid-save never corrupts an existing copy.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(path: &Path, params: &[Param]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        push_entry(&mut buf, &p.name(), &p.value());
    }
    rex_faults::atomic_write("ckpt", path, &buf)
}

fn push_entry(buf: &mut Vec<u8>, name: &str, value: &Tensor) {
    buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
    buf.extend_from_slice(name.as_bytes());
    buf.extend_from_slice(&(value.ndim() as u32).to_le_bytes());
    for &d in value.shape() {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in value.data() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes `(name, tensor)` entries in the checkpoint entry format
/// (`u32 count` followed by the entries, no magic) — the payload of the
/// model/optimizer sections inside a `REXSTATE1` snapshot.
pub fn encode_entries(entries: &[(String, Tensor)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, value) in entries {
        push_entry(&mut buf, name, value);
    }
    buf
}

/// Decodes a byte slice produced by [`encode_entries`].
///
/// # Errors
///
/// Returns `InvalidData`/`UnexpectedEof` on malformed input, including
/// trailing garbage after the last entry.
pub fn decode_entries(bytes: &[u8]) -> io::Result<Vec<(String, Tensor)>> {
    decode_entries_dtype(bytes, DType::F32)
}

/// [`encode_entries`] with a storage precision. `F32` produces bytes
/// identical to the legacy codec (so default-precision snapshots are
/// unchanged); `F16`/`Bf16` store one little-endian `u16` per element —
/// half the payload. Values are expected to already be rounded to
/// `dtype` (the optimizer's storage-rounding step guarantees this), so
/// the narrowing here is lossless for live training state.
///
/// # Panics
///
/// Panics if `dtype` is not trainable (`q8_0` has no training codec).
pub fn encode_entries_dtype(entries: &[(String, Tensor)], dtype: DType) -> Vec<u8> {
    assert!(dtype.trainable(), "{dtype} is not a trainable dtype");
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, value) in entries {
        match dtype {
            DType::F32 => push_entry(&mut buf, name, value),
            DType::F16 => push_entry_half(&mut buf, name, value, f32_to_f16_bits),
            DType::Bf16 => push_entry_half(&mut buf, name, value, f32_to_bf16_bits),
            DType::Q80 => unreachable!("rejected above"),
        }
    }
    buf
}

/// Decodes a byte slice produced by [`encode_entries_dtype`] with the
/// same `dtype`.
///
/// # Errors
///
/// Returns `InvalidData`/`UnexpectedEof` on malformed input, including
/// trailing garbage after the last entry.
///
/// # Panics
///
/// Panics if `dtype` is not trainable (`q8_0` has no training codec).
pub fn decode_entries_dtype(bytes: &[u8], dtype: DType) -> io::Result<Vec<(String, Tensor)>> {
    assert!(dtype.trainable(), "{dtype} is not a trainable dtype");
    let mut r = bytes;
    let count = read_u32(&mut r)? as usize;
    let entries = match dtype {
        DType::F32 => read_entries_with(&mut r, count, 4, |c| {
            f32::from_le_bytes(c.try_into().unwrap())
        })?,
        DType::F16 => read_entries_with(&mut r, count, 2, |c| {
            f16_bits_to_f32(u16::from_le_bytes(c.try_into().unwrap()))
        })?,
        DType::Bf16 => read_entries_with(&mut r, count, 2, |c| {
            bf16_bits_to_f32(u16::from_le_bytes(c.try_into().unwrap()))
        })?,
        DType::Q80 => unreachable!("rejected above"),
    };
    if !r.is_empty() {
        return Err(invalid(format!(
            "{} trailing bytes after the last checkpoint entry",
            r.len()
        )));
    }
    Ok(entries)
}

fn push_entry_half(buf: &mut Vec<u8>, name: &str, value: &Tensor, to_bits: fn(f32) -> u16) {
    buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
    buf.extend_from_slice(name.as_bytes());
    buf.extend_from_slice(&(value.ndim() as u32).to_le_bytes());
    for &d in value.shape() {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in value.data() {
        buf.extend_from_slice(&to_bits(v).to_le_bytes());
    }
}

/// Reads all `(name, tensor)` entries from a checkpoint.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic/un-parseable file, or propagates
/// I/O errors.
pub fn load_raw(path: &Path) -> io::Result<Vec<(String, Tensor)>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("not a REXCKPT1 checkpoint"));
    }
    let count = read_u32(&mut r)? as usize;
    read_entries(&mut r, count)
}

fn read_entries(r: &mut impl Read, count: usize) -> io::Result<Vec<(String, Tensor)>> {
    read_entries_with(r, count, 4, |c| f32::from_le_bytes(c.try_into().unwrap()))
}

fn read_entries_with(
    r: &mut impl Read,
    count: usize,
    elem_bytes: usize,
    decode: impl Fn(&[u8]) -> f32,
) -> io::Result<Vec<(String, Tensor)>> {
    if count > MAX_ENTRIES {
        return Err(invalid(format!(
            "implausible entry count {count} in checkpoint"
        )));
    }
    // cap the pre-allocation: a corrupt count must not reserve gigabytes
    let mut out = Vec::with_capacity(count.min(1 << 10));
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        if name_len > MAX_NAME {
            return Err(invalid(format!(
                "implausible name length {name_len} in checkpoint"
            )));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes).map_err(|e| invalid(e.to_string()))?;
        let ndim = read_u32(r)? as usize;
        if ndim > 8 {
            return Err(invalid(format!("implausible rank {ndim} in checkpoint")));
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            let dim = usize::try_from(u64::from_le_bytes(b))
                .map_err(|_| invalid("checkpoint dimension exceeds the address space"))?;
            shape.push(dim);
        }
        // overflow-checked element count: adversarial dims must error, not
        // wrap (release) or panic (debug)
        let n = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| invalid("checkpoint tensor size overflows"))?;
        if n > MAX_ELEMENTS {
            return Err(invalid(format!(
                "implausible tensor size {n} in checkpoint"
            )));
        }
        // read in bounded chunks so a huge claimed size on a truncated
        // file fails with UnexpectedEof before allocating the full claim
        let mut data = Vec::new();
        let mut remaining = n;
        let mut buf = [0u8; 4 * 4096];
        while remaining > 0 {
            let take = remaining.min(4096);
            r.read_exact(&mut buf[..elem_bytes * take])?;
            data.extend(
                buf[..elem_bytes * take]
                    .chunks_exact(elem_bytes)
                    .map(&decode),
            );
            remaining -= take;
        }
        let tensor = Tensor::from_vec(data, &shape).map_err(|e| invalid(e.to_string()))?;
        out.push((name, tensor));
    }
    Ok(out)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// What [`load_into`] found but did not use: checkpoint entries whose
/// names match no parameter. A non-empty list usually means a renamed or
/// typo'd parameter, so callers should surface it.
#[must_use = "unused checkpoint entries usually indicate a renamed or typo'd parameter"]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Names present in the checkpoint but absent from the model.
    pub unused: Vec<String>,
}

impl LoadReport {
    /// True when every checkpoint entry was consumed by some parameter.
    pub fn is_clean(&self) -> bool {
        self.unused.is_empty()
    }
}

/// Restores values into `params`, matching entries by name.
///
/// Every parameter must find a checkpoint entry with its exact name and
/// shape. Extra checkpoint entries do not fail the load (so a full-model
/// checkpoint can initialise a sub-model) but are reported in the
/// returned [`LoadReport`] for typo detection.
///
/// # Errors
///
/// Returns `InvalidData` when a parameter has no matching entry or the
/// shapes disagree.
pub fn load_into(path: &Path, params: &[Param]) -> io::Result<LoadReport> {
    let entries = load_raw(path)?;
    restore_params(&entries, params).map_err(invalid)?;
    let unused = entries
        .iter()
        .map(|(n, _)| n)
        .filter(|n| !params.iter().any(|p| p.name() == **n))
        .cloned()
        .collect();
    Ok(LoadReport { unused })
}

/// Assigns `entries` into `params` by exact name and shape; the core of
/// [`load_into`], shared with the full-state resume path.
///
/// # Errors
///
/// Describes the first missing entry or shape mismatch.
pub fn restore_params(entries: &[(String, Tensor)], params: &[Param]) -> Result<(), String> {
    for p in params {
        let name = p.name();
        let entry = entries
            .iter()
            .find(|(n, _)| *n == name)
            .ok_or_else(|| format!("checkpoint has no entry named {name:?}"))?;
        if entry.1.shape() != p.value().shape() {
            return Err(format!(
                "shape mismatch for {name:?}: checkpoint {:?} vs parameter {:?}",
                entry.1.shape(),
                p.value().shape()
            ));
        }
        *p.value_mut() = entry.1.clone();
    }
    Ok(())
}

/// Writes named opaque sections as a `REXSTATE1` container, atomically
/// (see [`rex_faults::atomic_write`]; the write label is `"state"`).
///
/// # Errors
///
/// Propagates filesystem errors (and injected ones).
pub fn save_state(path: &Path, sections: &[(String, Vec<u8>)]) -> io::Result<()> {
    rex_faults::atomic_write("state", path, &encode_state(sections))
}

/// Encodes sections in the `REXSTATE1` layout, checksum trailer included.
pub fn encode_state(sections: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(STATE_MAGIC);
    buf.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (name, bytes) in sections {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        buf.extend_from_slice(bytes);
    }
    let sum = fnv1a64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Reads a `REXSTATE1` container back into its named sections, verifying
/// the trailing checksum first so any torn or bit-flipped file is
/// rejected wholesale.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic, checksum mismatch, or
/// structural corruption; `UnexpectedEof` for truncation.
pub fn load_state(path: &Path) -> io::Result<Vec<(String, Vec<u8>)>> {
    let bytes = fs::read(path)?;
    decode_state(&bytes)
}

/// [`load_state`] over an in-memory buffer.
///
/// # Errors
///
/// See [`load_state`].
pub fn decode_state(bytes: &[u8]) -> io::Result<Vec<(String, Vec<u8>)>> {
    let eof = || io::Error::new(io::ErrorKind::UnexpectedEof, "truncated REXSTATE1 snapshot");
    let min = STATE_MAGIC.len() + 4 + 8;
    if bytes.len() < min {
        return Err(eof());
    }
    if &bytes[..STATE_MAGIC.len()] != STATE_MAGIC {
        return Err(invalid("not a REXSTATE1 snapshot"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(invalid(format!(
            "REXSTATE1 checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    let mut r = &body[STATE_MAGIC.len()..];
    let count = read_u32(&mut r)? as usize;
    if count > MAX_SECTIONS {
        return Err(invalid(format!("implausible section count {count}")));
    }
    let mut sections = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > MAX_NAME {
            return Err(invalid(format!(
                "implausible section name length {name_len}"
            )));
        }
        if r.len() < name_len {
            return Err(eof());
        }
        let (name_bytes, rest) = r.split_at(name_len);
        let name = String::from_utf8(name_bytes.to_vec()).map_err(|e| invalid(e.to_string()))?;
        r = rest;
        if r.len() < 8 {
            return Err(eof());
        }
        let (len_bytes, rest) = r.split_at(8);
        let len = usize::try_from(u64::from_le_bytes(len_bytes.try_into().unwrap()))
            .map_err(|_| invalid("section length exceeds the address space"))?;
        r = rest;
        if r.len() < len {
            return Err(eof());
        }
        let (payload, rest) = r.split_at(len);
        sections.push((name, payload.to_vec()));
        r = rest;
    }
    if !r.is_empty() {
        return Err(invalid(format!(
            "{} trailing bytes after the last section",
            r.len()
        )));
    }
    Ok(sections)
}

/// FNV-1a 64-bit over `bytes` — the snapshot's integrity check. Not
/// cryptographic; it exists to reject torn/bit-flipped files, and the
/// atomic-rename protocol makes genuinely torn files unreachable anyway.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp::Mlp;
    use crate::module::Module;
    use rex_tensor::Prng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rex_ckpt_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_values_and_names() {
        let mut rng = Prng::new(1);
        let m = Mlp::new("m", &[4, 8, 2], &mut rng);
        let path = tmp("roundtrip");
        save(&path, &m.params()).unwrap();

        let raw = load_raw(&path).unwrap();
        assert_eq!(raw.len(), 4); // 2 layers x (weight + bias)
        assert!(raw.iter().any(|(n, _)| n == "m.fc0.weight"));

        // load into a differently-initialised clone
        let mut rng2 = Prng::new(2);
        let m2 = Mlp::new("m", &[4, 8, 2], &mut rng2);
        assert_ne!(*m.params()[0].value(), *m2.params()[0].value());
        let report = load_into(&path, &m2.params()).unwrap();
        assert!(report.is_clean(), "{report:?}");
        for (a, b) in m.params().iter().zip(m2.params().iter()) {
            assert_eq!(*a.value(), *b.value());
        }
        let _ = fs::remove_file(path);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("badmagic");
        fs::write(&path, b"NOTACKPT____").unwrap();
        assert!(load_raw(&path).is_err());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn missing_entry_is_an_error() {
        let mut rng = Prng::new(3);
        let small = Mlp::new("a", &[2, 2], &mut rng);
        let path = tmp("missing");
        save(&path, &small.params()).unwrap();
        let other = Mlp::new("b", &[2, 2], &mut rng);
        let err = load_into(&path, &other.params()).unwrap_err();
        assert!(err.to_string().contains("no entry"), "{err}");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut rng = Prng::new(4);
        let m = Mlp::new("m", &[2, 3], &mut rng);
        let path = tmp("shape");
        save(&path, &m.params()).unwrap();
        let wider = Mlp::new("m", &[2, 4], &mut rng);
        let err = load_into(&path, &wider.params()).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn extra_checkpoint_entries_are_reported_not_fatal() {
        let mut rng = Prng::new(5);
        let full = Mlp::new("m", &[4, 8, 2], &mut rng);
        let path = tmp("extra");
        save(&path, &full.params()).unwrap();
        // a "sub-model" holding only the first layer's params
        let sub = &full.params()[..2];
        let report = load_into(&path, sub).unwrap();
        assert_eq!(report.unused.len(), 2, "{report:?}");
        assert!(report.unused.iter().any(|n| n == "m.fc1.weight"));
        assert!(!report.is_clean());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn entry_codec_roundtrips_and_rejects_trailing_bytes() {
        let entries = vec![
            (
                "a".to_owned(),
                Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
            ),
            ("b".to_owned(), Tensor::from_vec(vec![5.0], &[1]).unwrap()),
        ];
        let bytes = encode_entries(&entries);
        assert_eq!(decode_entries(&bytes).unwrap(), entries);

        let mut padded = bytes.clone();
        padded.push(0);
        let err = decode_entries(&padded).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn half_entry_codec_roundtrips_rounded_values_exactly() {
        for dtype in [DType::F16, DType::Bf16] {
            // values already rounded to the storage dtype, as the
            // optimizer guarantees for live training state
            let vals: Vec<f32> = [0.0, -1.5, 3.0e-5, 271.25, -6.1e4]
                .iter()
                .map(|&v| dtype.round_val(v))
                .collect();
            let entries = vec![("w".to_owned(), Tensor::from_vec(vals, &[5]).unwrap())];
            let bytes = encode_entries_dtype(&entries, dtype);
            let f32_bytes = encode_entries_dtype(&entries, DType::F32);
            // same header, half the payload
            assert_eq!(bytes.len(), f32_bytes.len() - 2 * 5);
            assert_eq!(decode_entries_dtype(&bytes, dtype).unwrap(), entries);

            let mut padded = bytes.clone();
            padded.push(0);
            assert!(decode_entries_dtype(&padded, dtype).is_err());
        }
    }

    #[test]
    fn f32_entry_codec_is_byte_identical_to_legacy() {
        let entries = vec![(
            "a".to_owned(),
            Tensor::from_vec(vec![1.0, -2.5, 3.25], &[3]).unwrap(),
        )];
        assert_eq!(
            encode_entries_dtype(&entries, DType::F32),
            encode_entries(&entries)
        );
    }

    #[test]
    fn state_container_roundtrips() {
        let sections = vec![
            ("meta".to_owned(), b"hello".to_vec()),
            ("empty".to_owned(), Vec::new()),
            ("model".to_owned(), vec![0u8; 1000]),
        ];
        let path = tmp("state_rt");
        save_state(&path, &sections).unwrap();
        assert_eq!(load_state(&path).unwrap(), sections);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn state_container_rejects_corruption() {
        let sections = vec![("meta".to_owned(), b"payload bytes".to_vec())];
        let good = encode_state(&sections);

        // every single-byte flip must be caught by the checksum (or the
        // magic check), never silently accepted
        for pos in 0..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            let err = decode_state(&bad).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "flip at {pos} gave {err}"
            );
        }
        // truncation at every prefix length errors rather than panicking
        for len in 0..good.len() {
            assert!(decode_state(&good[..len]).is_err(), "prefix {len} accepted");
        }
    }
}
