//! Core trainable layers.

use std::cell::RefCell;

use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::conv::Window;
use rex_tensor::{Prng, Tensor, TensorError};

use crate::module::Module;

/// A fully-connected layer: `y = x W + b` with `x: [N, in]`,
/// `W: [in, out]`.
///
/// Weights are Kaiming-normal initialised (fan-in), biases zero.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
}

impl Linear {
    /// New layer with bias.
    pub fn new(name: &str, in_features: usize, out_features: usize, rng: &mut Prng) -> Self {
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                rng.kaiming_tensor(&[in_features, out_features], in_features),
            ),
            bias: Some(Param::new(
                format!("{name}.bias"),
                Tensor::zeros(&[out_features]),
            )),
        }
    }

    /// New layer without bias (e.g. before a norm layer).
    pub fn without_bias(
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut Prng,
    ) -> Self {
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                rng.kaiming_tensor(&[in_features, out_features], in_features),
            ),
            bias: None,
        }
    }

    /// New layer with Xavier-uniform init (for attention/tanh stacks).
    pub fn xavier(name: &str, in_features: usize, out_features: usize, rng: &mut Prng) -> Self {
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                rng.xavier_tensor(&[in_features, out_features], in_features, out_features),
            ),
            bias: Some(Param::new(
                format!("{name}.bias"),
                Tensor::zeros(&[out_features]),
            )),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value().shape()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value().shape()[1]
    }
}

impl Module for Linear {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let w = g.param(&self.weight);
        let y = g.matmul(x, w)?;
        match &self.bias {
            Some(b) => {
                let bn = g.param(b);
                g.add(y, bn)
            }
            None => Ok(y),
        }
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

/// A 2-D convolution layer (`[N,C,H,W] → [N,O,OH,OW]`).
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    win: Window,
}

impl Conv2d {
    /// New conv layer with bias; Kaiming init over `C·K·K` fan-in.
    pub fn new(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        win: Window,
        rng: &mut Prng,
    ) -> Self {
        let fan_in = in_channels * win.kernel * win.kernel;
        Conv2d {
            weight: Param::new(
                format!("{name}.weight"),
                rng.kaiming_tensor(&[out_channels, in_channels, win.kernel, win.kernel], fan_in),
            ),
            bias: Some(Param::new(
                format!("{name}.bias"),
                Tensor::zeros(&[out_channels]),
            )),
            win,
        }
    }

    /// New conv layer without bias (standard before batch norm).
    pub fn without_bias(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        win: Window,
        rng: &mut Prng,
    ) -> Self {
        let mut c = Conv2d::new(name, in_channels, out_channels, win, rng);
        c.bias = None;
        c
    }

    /// The layer's window geometry.
    pub fn window(&self) -> Window {
        self.win
    }
}

impl Module for Conv2d {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let w = g.param(&self.weight);
        let b = self.bias.as_ref().map(|b| g.param(b));
        g.conv2d(x, w, b, self.win)
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

/// Batch normalisation over the channel axis of `[N,C]` or `[N,C,H,W]`
/// inputs, with running statistics for evaluation mode.
///
/// In training mode ([`Graph::training`] is true) batch statistics are used
/// and the running estimates updated in place (momentum 0.1, PyTorch
/// convention); in eval mode the running estimates are used.
#[derive(Debug)]
pub struct BatchNorm {
    gamma: Param,
    beta: Param,
    running_mean: RefCell<Tensor>,
    running_var: RefCell<Tensor>,
    momentum: f32,
    eps: f32,
}

impl BatchNorm {
    /// New batch norm over `channels`.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[channels])),
            running_mean: RefCell::new(Tensor::zeros(&[channels])),
            running_var: RefCell::new(Tensor::ones(&[channels])),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Snapshot of the running mean (for tests/diagnostics).
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.borrow().clone()
    }

    /// Snapshot of the running variance.
    pub fn running_var(&self) -> Tensor {
        self.running_var.borrow().clone()
    }
}

impl Module for BatchNorm {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        if g.training() {
            let (y, mean, var) = g.batch_norm_train(x, gamma, beta, self.eps)?;
            let mut rm = self.running_mean.borrow_mut();
            let mut rv = self.running_var.borrow_mut();
            for i in 0..rm.len() {
                rm.data_mut()[i] =
                    (1.0 - self.momentum) * rm.data()[i] + self.momentum * mean.data()[i];
                rv.data_mut()[i] =
                    (1.0 - self.momentum) * rv.data()[i] + self.momentum * var.data()[i];
            }
            Ok(y)
        } else {
            g.batch_norm_eval(
                x,
                gamma,
                beta,
                &self.running_mean.borrow(),
                &self.running_var.borrow(),
                self.eps,
            )
        }
    }

    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn buffers(&self) -> Vec<(String, &RefCell<Tensor>)> {
        let gamma = self.gamma.name();
        let base = gamma.strip_suffix(".gamma").unwrap_or(&gamma);
        vec![
            (format!("{base}.running_mean"), &self.running_mean),
            (format!("{base}.running_var"), &self.running_var),
        ]
    }
}

/// Layer normalisation over the last axis, with learnable affine.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
}

impl LayerNorm {
    /// New layer norm over a last axis of size `dim`.
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }
}

impl Module for LayerNorm {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }

    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Inverted dropout: in training mode, zeroes each element with probability
/// `p` and scales survivors by `1/(1−p)`; identity in eval mode.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: RefCell<Prng>,
}

impl Dropout {
    /// New dropout with drop probability `p` and its own RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0,1), got {p}"
        );
        Dropout {
            p,
            rng: RefCell::new(Prng::new(seed)),
        }
    }
}

impl Module for Dropout {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        if !g.training() || self.p == 0.0 {
            return Ok(x);
        }
        let shape = g.value(x).shape().to_vec();
        let keep = 1.0 - self.p;
        let inv = 1.0 / keep;
        let mut rng = self.rng.borrow_mut();
        let mask_data: Vec<f32> = (0..shape.iter().product())
            .map(|_| if rng.bernoulli(keep) { inv } else { 0.0 })
            .collect();
        drop(rng);
        let mask = g.constant(Tensor::from_vec(mask_data, &shape)?);
        g.mul(x, mask)
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

/// Token embedding table `[vocab, dim]`, Xavier-initialised.
///
/// Unlike the other layers, the forward pass takes token *indices* rather
/// than a graph node; use [`Embedding::lookup`].
#[derive(Debug)]
pub struct Embedding {
    weight: Param,
}

impl Embedding {
    /// New embedding table.
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut Prng) -> Self {
        Embedding {
            weight: Param::new(
                format!("{name}.weight"),
                rng.normal_tensor(&[vocab, dim], 0.0, 0.02),
            ),
        }
    }

    /// Looks up `indices`, producing `[len, dim]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for out-of-vocabulary
    /// indices.
    pub fn lookup(&self, g: &mut Graph, indices: &[usize]) -> Result<NodeId, TensorError> {
        let w = g.param(&self.weight);
        g.embedding(w, indices)
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.weight.value().shape()[1]
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.weight.value().shape()[0]
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<Param> {
        vec![self.weight.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_params() {
        let mut rng = Prng::new(1);
        let l = Linear::new("fc", 4, 3, &mut rng);
        assert_eq!(l.in_features(), 4);
        assert_eq!(l.out_features(), 3);
        assert_eq!(l.num_parameters(), 4 * 3 + 3);
        let mut g = Graph::new(false);
        let x = g.constant(Tensor::ones(&[2, 4]));
        let y = l.forward(&mut g, x).unwrap();
        assert_eq!(g.value(y).shape(), &[2, 3]);
    }

    #[test]
    fn conv_layer_preserves_spatial_with_same_padding() {
        let mut rng = Prng::new(2);
        let c = Conv2d::new("conv", 3, 8, Window::same(3), &mut rng);
        let mut g = Graph::new(false);
        let x = g.constant(Tensor::zeros(&[2, 3, 8, 8]));
        let y = c.forward(&mut g, x).unwrap();
        assert_eq!(g.value(y).shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn batch_norm_exposes_named_buffer_cells() {
        let bn = BatchNorm::new("stem.bn", 2);
        let bufs = bn.buffers();
        let names: Vec<&str> = bufs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["stem.bn.running_mean", "stem.bn.running_var"]);
        // writing through the cell is visible to the layer (restore path)
        *bufs[0].1.borrow_mut() = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(bn.running_mean().data(), &[3.0, 4.0]);
        // layers without non-trainable state report none
        let mut rng = Prng::new(3);
        assert!(Linear::new("l", 2, 2, &mut rng).buffers().is_empty());
    }

    #[test]
    fn batch_norm_updates_running_stats_in_training_only() {
        let bn = BatchNorm::new("bn", 2);
        let x = Tensor::from_vec(vec![10.0, 0.0, 12.0, 0.0, 14.0, 0.0], &[3, 2]).unwrap();
        let before = bn.running_mean();
        {
            let mut g = Graph::new(false);
            let xn = g.constant(x.clone());
            bn.forward(&mut g, xn).unwrap();
        }
        assert_eq!(bn.running_mean(), before, "eval must not touch stats");
        {
            let mut g = Graph::new(true);
            let xn = g.constant(x);
            bn.forward(&mut g, xn).unwrap();
        }
        // channel 0 batch mean is 12 -> running mean = 0.9*0 + 0.1*12 = 1.2
        assert!((bn.running_mean().data()[0] - 1.2).abs() < 1e-5);
    }

    #[test]
    fn dropout_identity_in_eval_and_scaling_in_train() {
        let d = Dropout::new(0.5, 99);
        let x = Tensor::ones(&[1000]);
        let mut ge = Graph::new(false);
        let xe = ge.constant(x.clone());
        let ye = d.forward(&mut ge, xe).unwrap();
        assert_eq!(ye, xe);

        let mut gt = Graph::new(true);
        let xt = gt.constant(x);
        let yt = d.forward(&mut gt, xt).unwrap();
        let out = gt.value(yt);
        // survivors are scaled to 2.0; overall mean stays ~1
        let mean = out.mean();
        assert!((mean - 1.0).abs() < 0.15, "dropout mean {mean}");
        assert!(out
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn embedding_lookup_shape() {
        let mut rng = Prng::new(3);
        let e = Embedding::new("tok", 10, 4, &mut rng);
        let mut g = Graph::new(false);
        let out = e.lookup(&mut g, &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(g.value(out).shape(), &[6, 4]);
        assert!(e.lookup(&mut g, &[10]).is_err());
    }

    #[test]
    fn layer_norm_output_rows_standardised() {
        let ln = LayerNorm::new("ln", 4);
        let mut g = Graph::new(true);
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap());
        let y = ln.forward(&mut g, x).unwrap();
        let v = g.value(y);
        let mean: f32 = v.data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }
}

/// Group normalisation (Wu & He): channels are split into groups and
/// normalised over (channels-in-group × H × W) per sample, with a
/// per-channel learnable affine. Batch-size independent — the norm of
/// choice when batches are tiny, which budgeted training often forces.
///
/// Implemented as a composition of the graph's layer-norm (with constant
/// affine) over a grouped reshape, followed by the per-channel affine via
/// broadcasting.
#[derive(Debug)]
pub struct GroupNorm {
    gamma: Param,
    beta: Param,
    groups: usize,
    channels: usize,
    eps: f32,
}

impl GroupNorm {
    /// New group norm over `channels` split into `groups`.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero or does not divide `channels`.
    pub fn new(name: &str, channels: usize, groups: usize) -> Self {
        assert!(
            groups > 0 && channels.is_multiple_of(groups),
            "channels {channels} must be divisible by groups {groups}"
        );
        GroupNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[channels, 1, 1])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[channels, 1, 1])),
            groups,
            channels,
            eps: 1e-5,
        }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }
}

impl Module for GroupNorm {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let shape = g.value(x).shape().to_vec();
        if shape.len() != 4 || shape[1] != self.channels {
            return Err(TensorError::RankMismatch {
                expected: "4-D [N,C,H,W] input matching configured channels",
                got: shape,
            });
        }
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let group_size = c / self.groups * h * w;
        // normalise each (sample, group) row with a constant affine
        let rows = g.reshape(x, &[n * self.groups, group_size])?;
        let ones = g.constant(Tensor::ones(&[group_size]));
        let zeros = g.constant(Tensor::zeros(&[group_size]));
        let normed = g.layer_norm(rows, ones, zeros, self.eps)?;
        let back = g.reshape(normed, &[n, c, h, w])?;
        // per-channel affine via broadcasting [C,1,1] over [N,C,H,W]
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        let scaled = g.mul(back, gamma)?;
        g.add(scaled, beta)
    }

    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod group_norm_tests {
    use super::*;
    use rex_autograd::gradcheck::check_gradients;

    #[test]
    fn normalises_per_group() {
        let gn = GroupNorm::new("gn", 4, 2);
        assert_eq!(gn.groups(), 2);
        let mut rng = Prng::new(1);
        let x = rng.normal_tensor(&[2, 4, 3, 3], 2.0, 3.0);
        let mut g = Graph::new(true);
        let xn = g.constant(x);
        let y = gn.forward(&mut g, xn).unwrap();
        let v = g.value(y);
        // each (sample, group) block should have ~zero mean
        for s in 0..2 {
            for grp in 0..2 {
                let mut sum = 0.0f32;
                for ch in (grp * 2)..(grp * 2 + 2) {
                    for p in 0..9 {
                        sum += v.data()[((s * 4 + ch) * 9) + p];
                    }
                }
                assert!((sum / 18.0).abs() < 1e-4, "group mean {}", sum / 18.0);
            }
        }
    }

    #[test]
    fn rejects_mismatched_channels() {
        let gn = GroupNorm::new("gn", 4, 2);
        let mut g = Graph::new(true);
        let x = g.constant(Tensor::zeros(&[1, 6, 2, 2]));
        assert!(gn.forward(&mut g, x).is_err());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_groups() {
        let _ = GroupNorm::new("gn", 5, 2);
    }

    #[test]
    fn gradcheck_through_group_norm() {
        let gn = GroupNorm::new("gn", 2, 1);
        let mut rng = Prng::new(2);
        let x = Param::new("x", rng.normal_tensor(&[2, 2, 2, 2], 0.0, 1.0));
        let mut params = vec![x.clone()];
        params.extend(gn.params());
        check_gradients(
            &params,
            |g| {
                let xn = g.param(&x);
                let y = gn.forward(g, xn)?;
                let t = g.tanh(y);
                let sq = g.mul(t, t)?;
                g.mean_all(sq)
            },
            1e-2,
            5e-2,
        )
        .unwrap();
    }
}
