//! Multi-head self-attention (the transformer's core block).

use rex_autograd::{Graph, NodeId, Param};
use rex_tensor::{Prng, TensorError};

use crate::layers::Linear;
use crate::module::Module;

/// Multi-head scaled-dot-product self-attention over `[B, T, D]` inputs.
///
/// The classic formulation: Q/K/V linear projections, per-head attention
/// `softmax(QKᵀ/√d_h)·V`, head concatenation, and an output projection.
/// No attention masking is applied — the REX reproduction's synthetic GLUE
/// tasks use fixed-length sequences (a simplification documented in
/// DESIGN.md).
#[derive(Debug)]
pub struct MultiHeadAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    out: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// New attention block with `heads` heads over model dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(name: &str, dim: usize, heads: usize, rng: &mut Prng) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "model dim {dim} must be divisible by heads {heads}"
        );
        MultiHeadAttention {
            q: Linear::xavier(&format!("{name}.q"), dim, dim, rng),
            k: Linear::xavier(&format!("{name}.k"), dim, dim, rng),
            v: Linear::xavier(&format!("{name}.v"), dim, dim, rng),
            out: Linear::xavier(&format!("{name}.out"), dim, dim, rng),
            heads,
            dim,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Projects `[B*T, D]` activations into per-head layout `[B*H, T, Dh]`.
    fn split_heads(
        &self,
        g: &mut Graph,
        x2d: NodeId,
        b: usize,
        t: usize,
    ) -> Result<NodeId, TensorError> {
        let dh = self.dim / self.heads;
        let x4 = g.reshape(x2d, &[b, t, self.heads, dh])?;
        let perm = g.permute_0213(x4)?; // [B, H, T, Dh]
        g.reshape(perm, &[b * self.heads, t, dh])
    }
}

impl Module for MultiHeadAttention {
    fn forward(&self, g: &mut Graph, x: NodeId) -> Result<NodeId, TensorError> {
        let shape = g.value(x).shape().to_vec();
        if shape.len() != 3 || shape[2] != self.dim {
            return Err(TensorError::RankMismatch {
                expected: "3-D [B,T,D] input matching model dim",
                got: shape,
            });
        }
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        let dh = d / self.heads;

        let x2d = g.reshape(x, &[b * t, d])?;
        let q2 = self.q.forward(g, x2d)?;
        let k2 = self.k.forward(g, x2d)?;
        let v2 = self.v.forward(g, x2d)?;

        let qh = self.split_heads(g, q2, b, t)?;
        let kh = self.split_heads(g, k2, b, t)?;
        let vh = self.split_heads(g, v2, b, t)?;

        let kt = g.transpose_last2(kh)?; // [B*H, Dh, T]
                                         // matmul3 runs per-head products in place on the batch slices —
                                         // no per-head copies through batch_slice
        let scores = g.matmul3(qh, kt)?; // [B*H, T, T]
        let scaled = g.scale(scores, 1.0 / (dh as f32).sqrt());

        let flat = g.reshape(scaled, &[b * self.heads * t, t])?;
        let attn = g.softmax(flat)?;
        let attn3 = g.reshape(attn, &[b * self.heads, t, t])?;

        let ctx = g.matmul3(attn3, vh)?; // [B*H, T, Dh]
        let ctx4 = g.reshape(ctx, &[b, self.heads, t, dh])?;
        let merged = g.permute_0213(ctx4)?; // [B, T, H, Dh]
        let merged2 = g.reshape(merged, &[b * t, d])?;
        let out = self.out.forward(g, merged2)?;
        g.reshape(out, &[b, t, d])
    }

    fn params(&self) -> Vec<Param> {
        let mut ps = self.q.params();
        ps.extend(self.k.params());
        ps.extend(self.v.params());
        ps.extend(self.out.params());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_autograd::gradcheck::check_gradients;
    use rex_tensor::Tensor;

    #[test]
    fn forward_preserves_shape() {
        let mut rng = Prng::new(5);
        let mha = MultiHeadAttention::new("attn", 8, 2, &mut rng);
        let mut g = Graph::new(false);
        let x = g.constant(rng.normal_tensor(&[3, 4, 8], 0.0, 1.0));
        let y = mha.forward(&mut g, x).unwrap();
        assert_eq!(g.value(y).shape(), &[3, 4, 8]);
    }

    #[test]
    fn rejects_wrong_model_dim() {
        let mut rng = Prng::new(6);
        let mha = MultiHeadAttention::new("attn", 8, 2, &mut rng);
        let mut g = Graph::new(false);
        let x = g.constant(Tensor::zeros(&[2, 4, 6]));
        assert!(mha.forward(&mut g, x).is_err());
    }

    #[test]
    fn has_four_projection_weight_matrices() {
        let mut rng = Prng::new(7);
        let mha = MultiHeadAttention::new("attn", 8, 2, &mut rng);
        // 4 weights + 4 biases
        assert_eq!(mha.params().len(), 8);
        assert_eq!(mha.num_parameters(), 4 * (8 * 8 + 8));
    }

    #[test]
    fn gradcheck_through_attention() {
        let mut rng = Prng::new(8);
        let mha = MultiHeadAttention::new("attn", 4, 2, &mut rng);
        let x = rng.normal_tensor(&[1, 3, 4], 0.0, 0.5);
        check_gradients(
            &mha.params(),
            |g| {
                let xn = g.constant(x.clone());
                let y = mha.forward(g, xn)?;
                let t = g.tanh(y);
                let sq = g.mul(t, t)?;
                g.mean_all(sq)
            },
            1e-2,
            5e-2,
        )
        .unwrap();
    }
}
