//! Deterministic fault injection and crash-safe file I/O.
//!
//! Two jobs, deliberately in one zero-dependency crate because they meet
//! at the same choke point (every durable write in the workspace goes
//! through [`atomic_write`]):
//!
//! 1. **Crash consistency.** [`atomic_write`] writes a sibling temp file,
//!    fsyncs it, atomically renames it over the target, and fsyncs the
//!    parent directory. A kill at any instant leaves the old file or the
//!    new file on disk — never a torn mixture.
//! 2. **Fault injection.** A [`FaultPlan`] — parsed from the `REX_FAULTS`
//!    environment variable or installed for a scope with [`with_plan`] —
//!    describes a deterministic failure: kill the process at optimizer
//!    step *N*, fail the *N*-th labelled write with an I/O error, kill
//!    before/half-way-through/after a labelled write, or poison a loss or
//!    gradient with NaN at a chosen step. The training loop and the write
//!    helper consult the plan at fixed points, so the same plan against
//!    the same seed reproduces the same failure bit-for-bit.
//!
//! # Fault spec grammar
//!
//! `REX_FAULTS` is a comma-separated list of clauses:
//!
//! ```text
//! kill-at-step=N                 exit(86) after optimizer step N completes
//! nan-loss-at-step=N[:K]        poison the batch loss at step N (at most K times; default unlimited)
//! nan-grad-at-step=N[:P[:K]]    poison parameter P's gradient at step N
//! io-err-on-write=LABEL:N       fail the N-th (1-based) write with label LABEL
//! kill-on-write=LABEL:N:STAGE   exit(86) around the N-th labelled write;
//!                               STAGE is pre (before the temp file exists),
//!                               mid (half the temp file written), or
//!                               post (after the atomic rename)
//! slow-io-on-write=LABEL:N:MS   sleep MS milliseconds before the N-th
//!                               labelled write begins (N=0: before every
//!                               write with that label) — a deterministic
//!                               stand-in for a slow disk, so timeout and
//!                               slow-backend tests need no real clock luck
//! corrupt-on-write=LABEL:N:KIND deterministically damage the N-th labelled
//!                               write *after* it lands: KIND is bit (flip
//!                               one bit in the middle of the file) or
//!                               truncate (cut the file to half its bytes).
//!                               Models silent media corruption of an
//!                               otherwise-successful durable write, so
//!                               checkpoint-lineage fallback can be tested
//!                               without hand-editing files
//! ```
//!
//! Injection is intentionally *not* random: faults are addressed by step
//! or write ordinal so a test can state exactly what failure it proves
//! recovery from.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

/// Exit code used by injected kills, distinct from panic (101) and from
/// ordinary error exits so tests can tell an injected crash from a bug.
pub const KILL_EXIT_CODE: i32 = 86;

/// When, relative to the durable-write protocol, a `kill-on-write` fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStage {
    /// Before the temp file is created: the old target must survive.
    Pre,
    /// After half the temp file's bytes are written: the old target must
    /// survive and the orphaned temp file must be harmless.
    Mid,
    /// After the atomic rename: the new target must be complete.
    Post,
}

/// How a `corrupt-on-write` fault damages the bytes that landed on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Flip one bit in the middle of the file (checksum mismatch).
    BitFlip,
    /// Cut the file to half its length (decode hits unexpected EOF).
    Truncate,
}

/// A deterministic fault plan. All fields default to "no fault".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Kill the process once this optimizer step has completed.
    pub kill_at_step: Option<u64>,
    /// Poison the batch loss with NaN at this step; `.1` caps how many
    /// times it fires (`u32::MAX` = every visit to the step id).
    pub nan_loss_at_step: Option<(u64, u32)>,
    /// Poison parameter `.1`'s gradient with NaN at step `.0`, at most
    /// `.2` times.
    pub nan_grad_at_step: Option<(u64, usize, u32)>,
    /// Fail the `.1`-th (1-based) write carrying label `.0`.
    pub io_err_on_write: Option<(String, u64)>,
    /// Kill around the `.2` stage of the `.1`-th write labelled `.0`.
    pub kill_on_write: Option<(String, u64, WriteStage)>,
    /// Sleep `.2` milliseconds before the `.1`-th write labelled `.0`
    /// starts (ordinal 0 delays every write with the label).
    pub slow_io_on_write: Option<(String, u64, u64)>,
    /// Damage the `.1`-th write labelled `.0` after it has atomically
    /// landed, per `.2` — the write itself reports success.
    pub corrupt_on_write: Option<(String, u64, CorruptKind)>,
}

impl FaultPlan {
    /// Parses the `REX_FAULTS` clause grammar (see the crate docs).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} is missing '='"))?;
            match key {
                "kill-at-step" => plan.kill_at_step = Some(parse_num(value, clause)?),
                "nan-loss-at-step" => {
                    let mut parts = value.split(':');
                    let step = parse_num(parts.next().unwrap_or(""), clause)?;
                    let times = match parts.next() {
                        Some(k) => parse_num(k, clause)? as u32,
                        None => u32::MAX,
                    };
                    check_done(parts.next(), clause)?;
                    plan.nan_loss_at_step = Some((step, times));
                }
                "nan-grad-at-step" => {
                    let mut parts = value.split(':');
                    let step = parse_num(parts.next().unwrap_or(""), clause)?;
                    let param = match parts.next() {
                        Some(p) => parse_num(p, clause)? as usize,
                        None => 0,
                    };
                    let times = match parts.next() {
                        Some(k) => parse_num(k, clause)? as u32,
                        None => u32::MAX,
                    };
                    check_done(parts.next(), clause)?;
                    plan.nan_grad_at_step = Some((step, param, times));
                }
                "io-err-on-write" => {
                    let (label, nth) = value
                        .rsplit_once(':')
                        .ok_or_else(|| format!("fault clause {clause:?} needs LABEL:N"))?;
                    plan.io_err_on_write = Some((label.to_owned(), parse_num(nth, clause)?));
                }
                "kill-on-write" => {
                    let mut parts = value.split(':');
                    let label = parts
                        .next()
                        .filter(|l| !l.is_empty())
                        .ok_or_else(|| format!("fault clause {clause:?} needs LABEL:N:STAGE"))?;
                    let nth = parse_num(parts.next().unwrap_or(""), clause)?;
                    let stage = match parts.next() {
                        Some("pre") => WriteStage::Pre,
                        Some("mid") => WriteStage::Mid,
                        Some("post") => WriteStage::Post,
                        other => {
                            return Err(format!(
                                "fault clause {clause:?}: stage {other:?} is not pre|mid|post"
                            ))
                        }
                    };
                    check_done(parts.next(), clause)?;
                    plan.kill_on_write = Some((label.to_owned(), nth, stage));
                }
                "slow-io-on-write" => {
                    let mut parts = value.split(':');
                    let label = parts
                        .next()
                        .filter(|l| !l.is_empty())
                        .ok_or_else(|| format!("fault clause {clause:?} needs LABEL:N:MS"))?;
                    let nth = parse_num(parts.next().unwrap_or(""), clause)?;
                    let ms = parse_num(
                        parts
                            .next()
                            .ok_or_else(|| format!("fault clause {clause:?} needs LABEL:N:MS"))?,
                        clause,
                    )?;
                    check_done(parts.next(), clause)?;
                    plan.slow_io_on_write = Some((label.to_owned(), nth, ms));
                }
                "corrupt-on-write" => {
                    let mut parts = value.split(':');
                    let label = parts
                        .next()
                        .filter(|l| !l.is_empty())
                        .ok_or_else(|| format!("fault clause {clause:?} needs LABEL:N:KIND"))?;
                    let nth = parse_num(parts.next().unwrap_or(""), clause)?;
                    let kind = match parts.next() {
                        Some("bit") => CorruptKind::BitFlip,
                        Some("truncate") => CorruptKind::Truncate,
                        other => {
                            return Err(format!(
                                "fault clause {clause:?}: kind {other:?} is not bit|truncate"
                            ))
                        }
                    };
                    check_done(parts.next(), clause)?;
                    plan.corrupt_on_write = Some((label.to_owned(), nth, kind));
                }
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        Ok(plan)
    }
}

fn parse_num(s: &str, clause: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("fault clause {clause:?}: {s:?} is not an integer"))
}

fn check_done(rest: Option<&str>, clause: &str) -> Result<(), String> {
    match rest {
        None => Ok(()),
        Some(extra) => Err(format!("fault clause {clause:?}: trailing {extra:?}")),
    }
}

/// Mutable injection bookkeeping: per-label write ordinals plus
/// fire-counters for the NaN faults.
#[derive(Default)]
struct Counters {
    writes: BTreeMap<String, u64>,
    nan_loss_fired: u32,
    nan_grad_fired: u32,
}

struct Registry {
    scoped: Option<FaultPlan>,
    counters: Counters,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            scoped: None,
            counters: Counters::default(),
        })
    })
}

fn env_plan() -> &'static FaultPlan {
    static ENV_PLAN: OnceLock<FaultPlan> = OnceLock::new();
    ENV_PLAN.get_or_init(|| match std::env::var("REX_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("REX_FAULTS={spec:?} does not parse: {e}")),
        _ => FaultPlan::default(),
    })
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Serialises scoped-plan users (fault tests) so concurrent tests cannot
/// see each other's plans.
fn scope_lock() -> &'static Mutex<()> {
    static SCOPE: OnceLock<Mutex<()>> = OnceLock::new();
    SCOPE.get_or_init(|| Mutex::new(()))
}

/// Runs `f` with `plan` installed as the active fault plan, resetting all
/// injection counters on entry and removing the plan on exit (even on
/// panic). Callers are serialised by a global lock, so concurrently
/// running fault tests cannot observe each other's plans.
pub fn with_plan<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> T {
    let _serial = scope_lock().lock().unwrap_or_else(|e| e.into_inner());
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            let mut reg = lock();
            reg.scoped = None;
            reg.counters = Counters::default();
        }
    }
    {
        let mut reg = lock();
        reg.scoped = Some(plan);
        reg.counters = Counters::default();
    }
    let _reset = Reset;
    f()
}

fn active_plan() -> FaultPlan {
    let reg = lock();
    match &reg.scoped {
        Some(p) => p.clone(),
        None => env_plan().clone(),
    }
}

/// Called by the training loop after optimizer step `completed_step`
/// finishes (checkpointing included): kills the process when the plan
/// says so. A no-op without a matching plan.
pub fn crash_point(completed_step: u64) {
    if active_plan().kill_at_step == Some(completed_step) {
        eprintln!("rex-faults: injected kill after step {completed_step}");
        let _ = io::stderr().flush();
        std::process::exit(KILL_EXIT_CODE);
    }
}

/// A crash point for *append* streams — buffered line-oriented writers
/// like the JSONL trace, whose per-line appends never go through
/// [`atomic_write`]. Bumps `label`'s write ordinal (appends and atomic
/// rewrites of the same label share one counter) and evaluates
/// `kill-on-write`: `pre` dies before any byte of this append lands,
/// `mid` flushes the first *half* of `bytes` straight to `file` — a torn
/// trailing line with no newline — and dies, `post` flushes the full
/// line plus its newline and dies. A no-op without a matching plan;
/// the other write faults (I/O error, slow-io, corruption) do not apply
/// to appends, whose callers drop write errors by design.
pub fn append_crash_point(label: &str, file: Option<&File>, bytes: &[u8]) {
    let ordinal = bump_write(label);
    let plan = active_plan();
    let Some((l, n, stage)) = plan.kill_on_write.clone() else {
        return;
    };
    if l != label || n != ordinal {
        return;
    }
    if let Some(mut f) = file {
        let half = bytes.len() / 2;
        let landed: &[u8] = match stage {
            WriteStage::Pre => &[],
            WriteStage::Mid => &bytes[..half],
            WriteStage::Post => bytes,
        };
        let _ = f.write_all(landed);
        if stage == WriteStage::Post {
            let _ = f.write_all(b"\n");
        }
        let _ = f.sync_all();
    }
    injected_kill(label, ordinal, stage);
}

/// Whether the batch loss of optimizer step `step` should be poisoned
/// with NaN. Honours the plan's fire-count cap.
pub fn poison_loss(step: u64) -> bool {
    let plan = active_plan();
    let Some((at, times)) = plan.nan_loss_at_step else {
        return false;
    };
    if at != step {
        return false;
    }
    let mut reg = lock();
    if reg.counters.nan_loss_fired >= times {
        return false;
    }
    reg.counters.nan_loss_fired += 1;
    true
}

/// Which parameter's gradient (by index) to poison with NaN at optimizer
/// step `step`, if any. Honours the plan's fire-count cap.
pub fn poison_grad(step: u64) -> Option<usize> {
    let plan = active_plan();
    let (at, param, times) = plan.nan_grad_at_step?;
    if at != step {
        return None;
    }
    let mut reg = lock();
    if reg.counters.nan_grad_fired >= times {
        return None;
    }
    reg.counters.nan_grad_fired += 1;
    Some(param)
}

/// Resets all injection counters (per-label write ordinals and NaN fire
/// counts). Only needed by tests that drive the env-configured plan
/// through several runs in one process.
pub fn reset_counters() {
    lock().counters = Counters::default();
}

fn bump_write(label: &str) -> u64 {
    let mut reg = lock();
    let n = reg.counters.writes.entry(label.to_owned()).or_insert(0);
    *n += 1;
    *n
}

fn injected_kill(label: &str, nth: u64, stage: WriteStage) -> ! {
    eprintln!("rex-faults: injected kill at {stage:?} of write {label}:{nth}");
    let _ = io::stderr().flush();
    std::process::exit(KILL_EXIT_CODE);
}

/// Writes `bytes` to `path` crash-consistently: temp file in the same
/// directory, fsync, atomic rename over the target, fsync of the parent
/// directory. A crash at any instant leaves the previous file (if any) or
/// the complete new one.
///
/// `label` names the write stream for fault injection (`"state"` for
/// training-state snapshots, `"ckpt"` for weight checkpoints, `"trace"`
/// for telemetry rewrites, …); the active [`FaultPlan`] may fail or kill
/// the N-th write of a given label.
///
/// # Errors
///
/// Propagates filesystem errors (and injected ones).
pub fn atomic_write(label: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let ordinal = bump_write(label);
    let plan = active_plan();
    if let Some((l, n, ms)) = &plan.slow_io_on_write {
        if l == label && (*n == 0 || *n == ordinal) {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
        }
    }
    if let Some((l, n)) = &plan.io_err_on_write {
        if l == label && *n == ordinal {
            return Err(io::Error::other(format!(
                "injected I/O error on write {label}:{ordinal}"
            )));
        }
    }
    let kill = plan
        .kill_on_write
        .as_ref()
        .filter(|(l, n, _)| l == label && *n == ordinal)
        .map(|(_, _, stage)| *stage);
    if kill == Some(WriteStage::Pre) {
        injected_kill(label, ordinal, WriteStage::Pre);
    }
    let corrupt = plan
        .corrupt_on_write
        .as_ref()
        .filter(|(l, n, _)| l == label && *n == ordinal)
        .map(|(_, _, kind)| *kind);

    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)?;
    }
    let tmp = temp_sibling(path);
    let result = write_temp_and_rename(&tmp, path, bytes, kill, corrupt);
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Damages the landed target in place: the atomic-write protocol completed
/// (the caller saw success), then the media silently went bad.
fn apply_corruption(path: &Path, kind: CorruptKind) {
    let Ok(bytes) = fs::read(path) else { return };
    if bytes.is_empty() {
        return;
    }
    match kind {
        CorruptKind::BitFlip => {
            let mut damaged = bytes;
            let mid = damaged.len() / 2;
            damaged[mid] ^= 0x40;
            let _ = fs::write(path, damaged);
        }
        CorruptKind::Truncate => {
            let keep = bytes.len() / 2;
            let _ = fs::write(path, &bytes[..keep]);
        }
    }
    eprintln!(
        "rex-faults: injected {kind:?} corruption of {}",
        path.display()
    );
}

fn write_temp_and_rename(
    tmp: &Path,
    path: &Path,
    bytes: &[u8],
    kill: Option<WriteStage>,
    corrupt: Option<CorruptKind>,
) -> io::Result<()> {
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(tmp)?;
    if kill == Some(WriteStage::Mid) {
        // model a crash half-way through the payload: flush what a real
        // interrupted writer could plausibly have gotten to disk, then die
        f.write_all(&bytes[..bytes.len() / 2])?;
        let _ = f.sync_all();
        injected_kill("", 0, WriteStage::Mid);
    }
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(tmp, path)?;
    fsync_dir(path);
    if let Some(kind) = corrupt {
        // corruption lands before a post-kill fires, so a plan pairing the
        // two models "the last checkpoint before the crash was poisoned"
        apply_corruption(path, kind);
    }
    if kill == Some(WriteStage::Post) {
        injected_kill("", 0, WriteStage::Post);
    }
    Ok(())
}

/// Best-effort fsync of `path`'s parent directory so the rename itself is
/// durable. Ignored on filesystems that refuse directory handles.
fn fsync_dir(path: &Path) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Unique temp sibling: same directory (required for an atomic rename),
/// dot-prefixed, pid- and ordinal-tagged so concurrent writers never
/// collide.
fn temp_sibling(path: &Path) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let file = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_owned());
    path.with_file_name(format!(".{file}.tmp.{}.{seq}", std::process::id()))
}

/// Best-effort fsync of an open file, for sinks that append in place and
/// want their final flush durable.
pub fn fsync_file(file: &File) {
    let _ = file.sync_all();
}

/// The four fault families a [`ChaosPlan`] schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChaosKind {
    /// Process death: `kill-at-step` or a `kill-on-write` stage.
    Kill,
    /// An injected I/O error failing a labelled write.
    IoErr,
    /// Silent on-disk corruption of a landed write.
    Corrupt,
    /// A deterministic slow-disk delay on labelled writes.
    SlowIo,
}

/// One restart-to-restart window of a chaos soak: the `REX_FAULTS` clauses
/// the daemon under test runs with until the plan's kill brings it down
/// (or, for the final round, until the workload drains cleanly).
#[derive(Debug, Clone)]
pub struct ChaosRound {
    /// The scheduled faults: the family plus the literal clause text.
    pub faults: Vec<(ChaosKind, String)>,
}

impl ChaosRound {
    /// The round's clauses joined into a `REX_FAULTS` value (empty for a
    /// fault-free round).
    pub fn spec(&self) -> String {
        self.faults
            .iter()
            .map(|(_, clause)| clause.as_str())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// How many scheduled faults belong to `kind`.
    pub fn count(&self, kind: ChaosKind) -> usize {
        self.faults.iter().filter(|(k, _)| *k == kind).count()
    }
}

/// A seeded, fully deterministic storm schedule for a multi-job soak.
///
/// Every storm round carries a process kill (so the round terminates with
/// a daemon death) plus a deterministic mix of I/O errors, slow-disk
/// delays, and — on alternating rounds — an on-disk corruption of the very
/// checkpoint written last before the kill (`corrupt-on-write` and
/// `kill-on-write=…:post` aimed at the same ordinal), which forces the
/// poisoned-checkpoint recovery path on restart. The final round is always
/// fault-free so the workload can drain.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Storm rounds followed by one trailing fault-free round.
    pub rounds: Vec<ChaosRound>,
}

/// splitmix64: tiny, seedable, and good enough to decorrelate fault
/// ordinals — the plan must be reproducible from its seed alone.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

impl ChaosPlan {
    /// Builds the deterministic schedule: `storm_rounds` fault rounds and
    /// a trailing clean round. Same seed and count, same plan — always.
    pub fn generate(seed: u64, storm_rounds: usize) -> ChaosPlan {
        let mut rng = Mix(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let mut rounds = Vec::with_capacity(storm_rounds + 1);
        for round in 0..storm_rounds {
            let mut faults = Vec::new();
            if round % 2 == 0 {
                // step-boundary kill with an I/O error earlier in the round
                let kill_step = rng.range(4, 12);
                let io_ordinal = rng.range(1, 5);
                faults.push((ChaosKind::Kill, format!("kill-at-step={kill_step}")));
                faults.push((
                    ChaosKind::IoErr,
                    format!("io-err-on-write=state:{io_ordinal}"),
                ));
            } else {
                // poison the final checkpoint: corrupt the N-th state
                // write, then die immediately after it lands
                let ordinal = rng.range(6, 14);
                let kind = if rng.next().is_multiple_of(2) {
                    "bit"
                } else {
                    "truncate"
                };
                faults.push((
                    ChaosKind::Corrupt,
                    format!("corrupt-on-write=state:{ordinal}:{kind}"),
                ));
                faults.push((
                    ChaosKind::Kill,
                    format!("kill-on-write=state:{ordinal}:post"),
                ));
            }
            let lag_ms = rng.range(2, 8);
            faults.push((
                ChaosKind::SlowIo,
                format!("slow-io-on-write=state:0:{lag_ms}"),
            ));
            rounds.push(ChaosRound { faults });
        }
        rounds.push(ChaosRound { faults: Vec::new() });
        ChaosPlan { seed, rounds }
    }

    /// Total scheduled faults of `kind` across all rounds.
    pub fn count(&self, kind: ChaosKind) -> usize {
        self.rounds.iter().map(|r| r.count(kind)).sum()
    }

    /// Total scheduled faults across all rounds.
    pub fn total_faults(&self) -> usize {
        self.rounds.iter().map(|r| r.faults.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rex_faults_{name}_{}", std::process::id()))
    }

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "kill-at-step=12, nan-loss-at-step=3:1, nan-grad-at-step=5:2:1, \
             io-err-on-write=state:2, kill-on-write=ckpt:1:mid",
        )
        .unwrap();
        assert_eq!(plan.kill_at_step, Some(12));
        assert_eq!(plan.nan_loss_at_step, Some((3, 1)));
        assert_eq!(plan.nan_grad_at_step, Some((5, 2, 1)));
        assert_eq!(plan.io_err_on_write, Some(("state".to_owned(), 2)));
        assert_eq!(
            plan.kill_on_write,
            Some(("ckpt".to_owned(), 1, WriteStage::Mid))
        );
    }

    #[test]
    fn parse_slow_io_grammar() {
        let plan = FaultPlan::parse("slow-io-on-write=trace:3:250").unwrap();
        assert_eq!(plan.slow_io_on_write, Some(("trace".to_owned(), 3, 250)));
        let every = FaultPlan::parse("slow-io-on-write=state:0:10").unwrap();
        assert_eq!(every.slow_io_on_write, Some(("state".to_owned(), 0, 10)));
        for bad in [
            "slow-io-on-write=state",
            "slow-io-on-write=state:1",
            "slow-io-on-write=:1:5",
            "slow-io-on-write=state:1:5:9",
            "slow-io-on-write=state:x:5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn slow_io_delays_the_addressed_write_only() {
        let path = tmp("slow");
        let plan = FaultPlan::parse("slow-io-on-write=lag:2:60").unwrap();
        with_plan(plan, || {
            let t0 = std::time::Instant::now();
            atomic_write("lag", &path, b"one").unwrap();
            let first = t0.elapsed();
            assert!(first < std::time::Duration::from_millis(50), "{first:?}");

            let t1 = std::time::Instant::now();
            atomic_write("lag", &path, b"two").unwrap();
            let second = t1.elapsed();
            assert!(second >= std::time::Duration::from_millis(60), "{second:?}");
            // other labels are never delayed
            let t2 = std::time::Instant::now();
            atomic_write("fast", &path, b"three").unwrap();
            assert!(t2.elapsed() < std::time::Duration::from_millis(50));
        });
        assert_eq!(fs::read(&path).unwrap(), b"three");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn slow_io_ordinal_zero_delays_every_labelled_write() {
        let path = tmp("slow_all");
        let plan = FaultPlan::parse("slow-io-on-write=lag:0:25").unwrap();
        with_plan(plan, || {
            for _ in 0..2 {
                let t = std::time::Instant::now();
                atomic_write("lag", &path, b"x").unwrap();
                assert!(t.elapsed() >= std::time::Duration::from_millis(25));
            }
        });
        let _ = fs::remove_file(path);
    }

    #[test]
    fn parse_defaults_and_errors() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(
            FaultPlan::parse("nan-loss-at-step=7")
                .unwrap()
                .nan_loss_at_step,
            Some((7, u32::MAX))
        );
        assert_eq!(
            FaultPlan::parse("nan-grad-at-step=4")
                .unwrap()
                .nan_grad_at_step,
            Some((4, 0, u32::MAX))
        );
        for bad in [
            "kill-at-step",
            "kill-at-step=x",
            "explode=1",
            "kill-on-write=state:1:sideways",
            "nan-loss-at-step=1:2:3",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn atomic_write_replaces_and_creates() {
        let path = tmp("aw");
        atomic_write("test", &path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write("test", &path, b"second, longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn injected_io_error_fires_on_the_right_ordinal_and_preserves_target() {
        let path = tmp("ioerr");
        let plan = FaultPlan::parse("io-err-on-write=flaky:2").unwrap();
        with_plan(plan, || {
            atomic_write("flaky", &path, b"one").unwrap();
            let err = atomic_write("flaky", &path, b"two").unwrap_err();
            assert!(err.to_string().contains("injected"), "{err}");
            // the failed write must not have touched the target
            assert_eq!(fs::read(&path).unwrap(), b"one");
            // other labels are unaffected, and the 3rd flaky write succeeds
            atomic_write("steady", &path, b"three").unwrap();
            atomic_write("flaky", &path, b"four").unwrap();
            assert_eq!(fs::read(&path).unwrap(), b"four");
        });
        let _ = fs::remove_file(path);
    }

    #[test]
    fn nan_faults_respect_step_and_fire_cap() {
        let plan = FaultPlan::parse("nan-loss-at-step=3:2,nan-grad-at-step=4:1:1").unwrap();
        with_plan(plan, || {
            assert!(!poison_loss(2));
            assert!(poison_loss(3));
            assert!(poison_loss(3));
            assert!(!poison_loss(3), "fire cap of 2 exhausted");
            assert_eq!(poison_grad(4), Some(1));
            assert_eq!(poison_grad(4), None, "fire cap of 1 exhausted");
        });
        // outside the scope no plan is active
        assert!(!poison_loss(3));
        assert_eq!(poison_grad(4), None);
    }

    #[test]
    fn parse_corrupt_grammar() {
        let plan = FaultPlan::parse("corrupt-on-write=state:3:bit").unwrap();
        assert_eq!(
            plan.corrupt_on_write,
            Some(("state".to_owned(), 3, CorruptKind::BitFlip))
        );
        let plan = FaultPlan::parse("corrupt-on-write=ckpt:1:truncate").unwrap();
        assert_eq!(
            plan.corrupt_on_write,
            Some(("ckpt".to_owned(), 1, CorruptKind::Truncate))
        );
        for bad in [
            "corrupt-on-write=state",
            "corrupt-on-write=state:1",
            "corrupt-on-write=:1:bit",
            "corrupt-on-write=state:1:shred",
            "corrupt-on-write=state:1:bit:9",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn corrupt_on_write_damages_only_the_addressed_ordinal() {
        let path = tmp("corrupt");
        let payload = vec![0u8; 64];
        let plan = FaultPlan::parse("corrupt-on-write=media:2:bit").unwrap();
        with_plan(plan, || {
            atomic_write("media", &path, &payload).unwrap();
            assert_eq!(fs::read(&path).unwrap(), payload, "ordinal 1 untouched");
            atomic_write("media", &path, &payload).unwrap();
            let damaged = fs::read(&path).unwrap();
            assert_eq!(damaged.len(), 64);
            assert_eq!(damaged[32], 0x40, "one bit flipped mid-file");
            // other labels and later ordinals are unaffected
            atomic_write("media", &path, &payload).unwrap();
            assert_eq!(fs::read(&path).unwrap(), payload);
        });
        let _ = fs::remove_file(&path);

        let path = tmp("corrupt_trunc");
        let plan = FaultPlan::parse("corrupt-on-write=media:1:truncate").unwrap();
        with_plan(plan, || {
            atomic_write("media", &path, &payload).unwrap();
            assert_eq!(fs::read(&path).unwrap().len(), 32, "cut to half");
        });
        let _ = fs::remove_file(path);
    }

    #[test]
    fn chaos_plan_is_deterministic_and_covers_all_kinds() {
        let a = ChaosPlan::generate(42, 8);
        let b = ChaosPlan::generate(42, 8);
        assert_eq!(a.rounds.len(), 9, "8 storm rounds + 1 clean round");
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(ra.faults, rb.faults, "same seed, same schedule");
        }
        let c = ChaosPlan::generate(43, 8);
        assert!(
            a.rounds
                .iter()
                .zip(&c.rounds)
                .any(|(x, y)| x.faults != y.faults),
            "different seeds diverge"
        );
        for kind in [
            ChaosKind::Kill,
            ChaosKind::IoErr,
            ChaosKind::Corrupt,
            ChaosKind::SlowIo,
        ] {
            assert!(a.count(kind) > 0, "{kind:?} never scheduled");
        }
        assert_eq!(a.count(ChaosKind::Kill), 8, "every storm round kills");
        assert!(a.total_faults() >= 20);
        assert!(a.rounds.last().unwrap().faults.is_empty(), "clean drain");
        // every clause the generator emits must parse
        for round in &a.rounds {
            FaultPlan::parse(&round.spec()).unwrap();
        }
    }

    #[test]
    fn no_temp_litter_after_successful_writes() {
        let dir = tmp("litter_dir");
        fs::create_dir_all(&dir).unwrap();
        atomic_write("test", &dir.join("a"), b"x").unwrap();
        atomic_write("test", &dir.join("a"), b"y").unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(dir);
    }
}
