//! Backend parity suite: the SIMD backend must agree with the scalar
//! backend to rounding on every op, and with *itself* bitwise at any
//! thread count.
//!
//! The GEMM grid is a deterministic [`Prng`]-driven fuzz over awkward
//! shapes — odd M/N/K, K smaller than one SIMD lane group (tail-only
//! kernels), batched products whose per-slice strides are not multiples
//! of the micro-tile, and zero-size edges — because those are exactly the
//! shapes where a packed micro-kernel's edge handling goes wrong.
//!
//! Two determinism courts:
//!
//! * **SIMD vs scalar**: ≤ 1e-5·√K relative error (the two backends
//!   reassociate reductions differently, so agreement is to rounding).
//! * **SIMD vs SIMD**: bitwise identity (`to_bits`) across pool sizes
//!   1/2/3/7 — the partition-invariance contract of
//!   [`rex_tensor::backend::ComputeBackend::gemm_rows`].

use rex_tensor::backend::{self, BackendKind};
use rex_tensor::ops::matmul3;
use rex_tensor::{Prng, Tensor};

/// Thread counts exercised by the bitwise-identity court: 1 (serial), 2
/// (even split), 3 and 7 (ragged splits that misalign chunk boundaries
/// with the micro-tile grid).
const THREADS: &[usize] = &[1, 2, 3, 7];

/// Relative tolerance for SIMD-vs-scalar agreement on a reduction of
/// `red` terms.
fn tol_for(red: usize) -> f32 {
    1e-5 * (red as f32).sqrt().max(1.0)
}

fn assert_rel_close(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let bound = tol * (1.0 + x.abs().max(y.abs()));
        assert!(
            (x - y).abs() <= bound,
            "{ctx}: index {i}: {x} vs {y} (|diff| {} > {bound})",
            (x - y).abs()
        );
    }
}

fn assert_bitwise(a: &[f32], b: &[f32], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{ctx}: index {i}: {x:?} vs {y:?} (bitwise mismatch)"
        );
    }
}

/// Awkward GEMM shapes: odd dims, tail-only K, micro-tile remainders,
/// and zero-size edges.
const GEMM_CASES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (7, 3, 5),     // everything odd, smaller than any micro-tile
    (13, 5, 33),   // K < 8: tail-only depth loop
    (6, 7, 16),    // exactly one AVX2 tile wide, odd K
    (97, 61, 127), // odd everything, crosses MC/NR boundaries
    (64, 256, 64), // exactly one KC block
    (65, 257, 95), // one past every block boundary
    (130, 300, 170),
    (0, 5, 7), // zero-size edges: empty output
    (5, 0, 7), // K = 0: pure accumulate of nothing
    (5, 7, 0),
];

/// One deterministic fuzz case per (layout, shape): SIMD matches scalar
/// to rounding, and SIMD is bitwise identical to itself at every pool
/// size in [`THREADS`].
fn check_gemm_case(m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = Prng::new(seed);
    let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
    let at = rng.normal_tensor(&[k, m], 0.0, 1.0);
    let bt = rng.normal_tensor(&[n, k], 0.0, 1.0);

    type GemmFn = fn(&Tensor, &Tensor) -> Tensor;
    let cases: [(&str, &Tensor, &Tensor, GemmFn); 3] = [
        ("nn", &a, &b, |x, y| x.matmul(y).unwrap()),
        ("tn", &at, &b, |x, y| x.matmul_tn(y).unwrap()),
        ("nt", &a, &bt, |x, y| x.matmul_nt(y).unwrap()),
    ];
    for (name, x, y, f) in cases {
        let ctx = format!("gemm_{name} {m}x{k}x{n}");
        let scalar = backend::with_backend(BackendKind::Scalar, || f(x, y));
        let simd1 =
            rex_pool::with_pool_size(1, || backend::with_backend(BackendKind::Simd, || f(x, y)));
        assert_rel_close(simd1.data(), scalar.data(), tol_for(k), &ctx);
        for &t in &THREADS[1..] {
            let simd_t = rex_pool::with_pool_size(t, || {
                backend::with_backend(BackendKind::Simd, || f(x, y))
            });
            assert_bitwise(simd_t.data(), simd1.data(), &format!("{ctx} @{t}T"));
        }
    }
}

#[test]
fn gemm_simd_matches_scalar_and_is_thread_invariant() {
    for (i, &(m, k, n)) in GEMM_CASES.iter().enumerate() {
        check_gemm_case(m, k, n, 0xBAC0 + i as u64);
    }
}

/// Batched matmul: per-slice strides `m·k` / `k·n` are deliberately not
/// multiples of any micro-tile, so every slice starts misaligned with
/// the packing grid.
#[test]
fn batched_gemm_simd_matches_scalar_and_is_thread_invariant() {
    for &(bs, m, k, n) in &[
        (3usize, 7usize, 5usize, 9usize),
        (5, 33, 6, 17),
        (2, 96, 300, 64),
    ] {
        let mut rng = Prng::new((bs * 1009 + m) as u64);
        let a = rng.normal_tensor(&[bs, m, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[bs, k, n], 0.0, 1.0);
        let ctx = format!("matmul3 {bs}x{m}x{k}x{n}");
        let scalar = backend::with_backend(BackendKind::Scalar, || matmul3(&a, &b).unwrap());
        let simd1 = rex_pool::with_pool_size(1, || {
            backend::with_backend(BackendKind::Simd, || matmul3(&a, &b).unwrap())
        });
        assert_rel_close(simd1.data(), scalar.data(), tol_for(k), &ctx);
        for &t in &THREADS[1..] {
            let simd_t = rex_pool::with_pool_size(t, || {
                backend::with_backend(BackendKind::Simd, || matmul3(&a, &b).unwrap())
            });
            assert_bitwise(simd_t.data(), simd1.data(), &format!("{ctx} @{t}T"));
        }
    }
}

/// Elementwise, scalar-broadcast, row-broadcast, activation, and
/// reduction ops: same two courts as the GEMM grid. Sizes straddle
/// `ELEM_PAR_MIN`/`REDUCE_PAR_MIN` so both the serial and sharded paths
/// are exercised.
#[test]
fn elementwise_and_reductions_match_across_backends_and_threads() {
    for &len in &[1usize, 7, 63, 4096, 1 << 15, (1 << 16) + 9] {
        let mut rng = Prng::new(len as u64 ^ 0xE1E);
        let rows = len.div_ceil(64).max(1);
        let x = rng.normal_tensor(&[rows, 64], 0.0, 1.0);
        let y = rng.normal_tensor(&[rows, 64], 0.0, 1.0);
        let bias = rng.normal_tensor(&[64], 0.0, 1.0);

        let run = || {
            let mut acc = y.clone();
            acc.axpy(0.25, &x);
            vec![
                x.add(&y).unwrap().into_vec(),
                x.sub(&y).unwrap().into_vec(),
                x.mul(&y).unwrap().into_vec(),
                x.add(&bias).unwrap().into_vec(), // row broadcast
                x.scale(1.7).into_vec(),
                x.add_scalar(-0.3).into_vec(),
                rex_tensor::ops::relu(&x).into_vec(),
                rex_tensor::ops::softmax_rows(&x).unwrap().into_vec(),
                vec![x.sum(), x.sq_norm(), x.max(), x.min()],
                acc.into_vec(),
            ]
        };

        let scalar = backend::with_backend(BackendKind::Scalar, run);
        let simd1 = rex_pool::with_pool_size(1, || backend::with_backend(BackendKind::Simd, run));
        for (s, v) in scalar.iter().zip(&simd1) {
            // reductions reassociate; everything else is a pure map, but a
            // single rel bound covers both
            assert_rel_close(v, s, tol_for(x.len()), &format!("elementwise len {len}"));
        }
        for &t in &THREADS[1..] {
            let simd_t =
                rex_pool::with_pool_size(t, || backend::with_backend(BackendKind::Simd, run));
            for (a, b) in simd_t.iter().zip(&simd1) {
                assert_bitwise(b, a, &format!("elementwise len {len} @{t}T"));
            }
            // the scalar backend carries the same thread-invariance contract
            let scalar_t =
                rex_pool::with_pool_size(t, || backend::with_backend(BackendKind::Scalar, run));
            for (a, b) in scalar_t.iter().zip(&scalar) {
                assert_bitwise(b, a, &format!("elementwise(scalar) len {len} @{t}T"));
            }
        }
    }
}

/// The override resolution order: a `with_backend` override beats the
/// process default, and nesting restores the outer choice.
#[test]
fn with_backend_override_nests_and_restores() {
    let outer = backend::active().kind();
    backend::with_backend(BackendKind::Scalar, || {
        assert_eq!(backend::active().kind(), BackendKind::Scalar);
        backend::with_backend(BackendKind::Simd, || {
            assert_eq!(backend::active().kind(), BackendKind::Simd);
        });
        assert_eq!(backend::active().kind(), BackendKind::Scalar);
    });
    assert_eq!(backend::active().kind(), outer);
}
