//! Parity suite for the blocked-GEMM kernel layer: every optimised path
//! (matmul NN/TN/NT, batched matmul3, im2col conv2d forward/backward) is
//! checked against the naive reference oracles in [`rex_tensor::reference`]
//! across a grid of shapes that crosses the MC/KC/NC block boundaries.

use rex_tensor::conv::{conv2d_backward, conv2d_forward, Window};
use rex_tensor::ops::{batch_slice, matmul3, matmul3_nt, matmul3_tn};
use rex_tensor::reference;
use rex_tensor::{Prng, Tensor};

/// Tolerance for a reduction of `red` terms: rounding error grows with
/// the reduction depth (≈ √red random-walk), so 1e-5 is scaled by it.
fn tol_for(red: usize) -> f32 {
    1e-5 * (red as f32).sqrt().max(1.0)
}

/// Relative-absolute tolerance: blocked/unrolled kernels reassociate the
/// reduction, so agreement is to rounding, not bitwise.
fn assert_close(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let bound = tol * (1.0 + x.abs().max(y.abs()));
        assert!(
            (x - y).abs() <= bound,
            "{ctx}: index {i}: {x} vs {y} (|diff| {} > {bound})",
            (x - y).abs()
        );
    }
}

/// Shapes straddling the small-path threshold and the MC=64 / KC=256 /
/// NC=256 block boundaries.
const MATMUL_CASES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (3, 5, 7),
    (16, 16, 16),
    (17, 9, 33),
    (64, 64, 64),
    (65, 300, 70),
    (70, 130, 300),
    (130, 257, 259),
];

#[test]
fn matmul_matches_naive_reference() {
    for &(m, k, n) in MATMUL_CASES {
        let mut rng = Prng::new((m * 1000 + k * 10 + n) as u64);
        let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
        let got = a.matmul(&b).unwrap();
        let expect = reference::matmul_naive(m, k, n, a.data(), b.data());
        assert_close(
            got.data(),
            &expect,
            tol_for(k),
            &format!("matmul {m}x{k}x{n}"),
        );
    }
}

#[test]
fn matmul_tn_matches_naive_reference() {
    for &(m, k, n) in MATMUL_CASES {
        let mut rng = Prng::new((m * 31 + k * 7 + n) as u64);
        let a = rng.normal_tensor(&[k, m], 0.0, 1.0);
        let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
        let got = a.matmul_tn(&b).unwrap();
        let at = a.transpose().unwrap();
        let expect = reference::matmul_naive(m, k, n, at.data(), b.data());
        assert_close(
            got.data(),
            &expect,
            tol_for(k),
            &format!("matmul_tn {m}x{k}x{n}"),
        );
    }
}

#[test]
fn matmul_nt_matches_naive_reference() {
    for &(m, k, n) in MATMUL_CASES {
        let mut rng = Prng::new((m * 17 + k * 5 + n) as u64);
        let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[n, k], 0.0, 1.0);
        let got = a.matmul_nt(&b).unwrap();
        let bt = b.transpose().unwrap();
        let expect = reference::matmul_naive(m, k, n, a.data(), bt.data());
        assert_close(
            got.data(),
            &expect,
            tol_for(k),
            &format!("matmul_nt {m}x{k}x{n}"),
        );
    }
}

#[test]
fn matmul3_matches_per_slice_products() {
    for &(bs, m, k, n) in &[
        (1usize, 4usize, 4usize, 4usize),
        (3, 5, 7, 2),
        (8, 33, 17, 65),
    ] {
        let mut rng = Prng::new((bs * 100 + m) as u64);
        let a = rng.normal_tensor(&[bs, m, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[bs, k, n], 0.0, 1.0);
        let got = matmul3(&a, &b).unwrap();
        assert_eq!(got.shape(), &[bs, m, n]);
        for s in 0..bs {
            let am = batch_slice(&a, s, m, k);
            let bm = batch_slice(&b, s, k, n);
            let expect = am.matmul(&bm).unwrap();
            let row = &got.data()[s * m * n..(s + 1) * m * n];
            assert_close(
                row,
                expect.data(),
                tol_for(k),
                &format!("matmul3 slice {s}"),
            );
        }
    }
}

#[test]
fn matmul3_nt_tn_match_per_slice_products() {
    let (bs, m, k, n) = (4usize, 9usize, 13usize, 6usize);
    let mut rng = Prng::new(99);
    let a = rng.normal_tensor(&[bs, m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[bs, k, n], 0.0, 1.0);
    let g = rng.normal_tensor(&[bs, m, n], 0.0, 1.0);

    // dA = G · Bᵀ
    let da = matmul3_nt(&g, &b).unwrap();
    assert_eq!(da.shape(), &[bs, m, k]);
    // dB = Aᵀ · G
    let db = matmul3_tn(&a, &g).unwrap();
    assert_eq!(db.shape(), &[bs, k, n]);

    for s in 0..bs {
        let gm = batch_slice(&g, s, m, n);
        let bm = batch_slice(&b, s, k, n);
        let am = batch_slice(&a, s, m, k);
        let eda = gm.matmul_nt(&bm).unwrap();
        let edb = am.matmul_tn(&gm).unwrap();
        assert_close(
            &da.data()[s * m * k..(s + 1) * m * k],
            eda.data(),
            tol_for(n),
            &format!("matmul3_nt slice {s}"),
        );
        assert_close(
            &db.data()[s * k * n..(s + 1) * k * n],
            edb.data(),
            tol_for(m),
            &format!("matmul3_tn slice {s}"),
        );
    }
}

/// Conv grid crossing (batch, channels, kernel, stride, padding), with
/// the direct six-loop convolution as the oracle.
const CONV_CASES: &[(usize, usize, usize, usize, usize, usize, usize)] = &[
    // (batch, c_in, c_out, h=w, kernel, stride, padding)
    (1, 1, 1, 5, 1, 1, 0),
    (2, 3, 4, 8, 3, 1, 1),
    (1, 2, 3, 7, 3, 2, 0),
    (3, 1, 2, 9, 5, 1, 2),
    (2, 4, 2, 9, 3, 2, 1),
    (4, 3, 16, 8, 3, 1, 1),
];

#[test]
fn conv2d_forward_matches_direct_reference() {
    for &(bs, cin, cout, hw, kernel, stride, padding) in CONV_CASES {
        let ctx = format!("conv fwd b{bs} c{cin}->{cout} {hw}x{hw} k{kernel} s{stride} p{padding}");
        let mut rng = Prng::new((bs * 7 + cin * 3 + kernel) as u64);
        let input = rng.normal_tensor(&[bs, cin, hw, hw], 0.0, 1.0);
        let weight = rng.normal_tensor(&[cout, cin, kernel, kernel], 0.0, 0.5);
        let bias = rng.normal_tensor(&[cout], 0.0, 0.2);
        let win = Window {
            kernel,
            stride,
            padding,
        };
        let (got, _) = conv2d_forward(&input, &weight, Some(&bias), win).unwrap();
        let expect = reference::conv2d_direct(&input, &weight, Some(&bias), win).unwrap();
        assert_eq!(got.shape(), expect.shape(), "{ctx}");
        assert_close(
            got.data(),
            expect.data(),
            tol_for(cin * kernel * kernel),
            &ctx,
        );
    }
}

#[test]
fn conv2d_backward_matches_direct_reference() {
    for &(bs, cin, cout, hw, kernel, stride, padding) in CONV_CASES {
        let ctx = format!("conv bwd b{bs} c{cin}->{cout} {hw}x{hw} k{kernel} s{stride} p{padding}");
        let mut rng = Prng::new((bs * 11 + cout * 5 + stride) as u64);
        let input = rng.normal_tensor(&[bs, cin, hw, hw], 0.0, 1.0);
        let weight = rng.normal_tensor(&[cout, cin, kernel, kernel], 0.0, 0.5);
        let win = Window {
            kernel,
            stride,
            padding,
        };
        let (out, saved) = conv2d_forward(&input, &weight, None, win).unwrap();
        let d_out = rng.normal_tensor(out.shape(), 0.0, 1.0);
        let (di, dw, db) = conv2d_backward(&d_out, &weight, &saved).unwrap();
        let (rdi, rdw, rdb) =
            reference::conv2d_direct_backward(&d_out, &input, &weight, win).unwrap();
        // The col2im scatter and the batch-axis dW/dB folds use compensated
        // accumulation, so the conv backward holds a *pinned* 1e-4 bound
        // even where the √red scaling would allow more drift.
        assert_close(
            di.data(),
            rdi.data(),
            tol_for(cout * kernel * kernel).min(1e-4),
            &format!("{ctx} d_input"),
        );
        // d_weight and d_bias reduce over all batch·OH·OW output positions
        let red_w = d_out.data().len() / cout;
        assert_close(
            dw.data(),
            rdw.data(),
            tol_for(red_w).min(1e-4),
            &format!("{ctx} d_weight"),
        );
        assert_close(
            db.data(),
            rdb.data(),
            tol_for(red_w).min(1e-4),
            &format!("{ctx} d_bias"),
        );
    }
}

/// The branch-free path is what makes the conv lowering valid for inputs
/// containing exact zeros (padding!) mixed with non-finite values; the
/// padded border must still contribute exact zeros, not NaN.
#[test]
fn conv2d_padding_contributes_exact_zero() {
    let input = Tensor::from_vec(vec![1.0; 9], &[1, 1, 3, 3]).unwrap();
    let weight = Tensor::from_vec(vec![1.0; 9], &[1, 1, 3, 3]).unwrap();
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let (out, _) = conv2d_forward(&input, &weight, None, win).unwrap();
    // centre sees all 9 ones; corners see 4
    assert_eq!(out.data()[4], 9.0);
    assert_eq!(out.data()[0], 4.0);
}
