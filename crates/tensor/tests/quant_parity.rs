//! Parity suite for the quantized GEMM dispatch and the f16/bf16
//! conversion kernels.
//!
//! Two contracts are enforced:
//!
//! * **Oracle agreement** — [`kernels::qgemm_nt`] on Q8_0 blocks must
//!   match a dequantize-then-naive-matmul oracle to rounding (both sides
//!   consume the *same* dequantized values, so the only divergence is
//!   summation order).
//! * **Bitwise invariance** — within a backend, results are bitwise
//!   identical at pool sizes 1/2/3/7 (both shard grids depend only on
//!   the shape). Across backends the usual contract applies: scalar's
//!   serial fold and SIMD's lane-grouped fold associate differently, so
//!   they agree to rounding; the pure-bit *conversions*, by contrast,
//!   must agree bitwise everywhere.
//!
//! The shape grid deliberately hits all three `qgemm_nt` dispatch arms:
//! serial (below `PAR_FLOPS`), column-sharded GEMV (`m ≤ 64`, large
//! product), and row-sharded tall (`m > 64`, large product) — plus
//! ragged sizes that misalign with `QK`, the 8-row chunk, and the
//! 64-column chunk.

use rex_tensor::backend::{self, BackendKind};
use rex_tensor::dtype::{dequantize_q8_0, f16_bits_to_f32, quantize_q8_0, QK};
use rex_tensor::{kernels, Prng};

/// Pool sizes for the bitwise-identity court: serial, even split, and
/// two ragged splits.
const THREADS: &[usize] = &[1, 2, 3, 7];

fn assert_bitwise(a: &[f32], b: &[f32], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{ctx}: index {i}: {x:?} vs {y:?} (bitwise mismatch)"
        );
    }
}

/// Shapes covering each dispatch arm of `qgemm_nt`:
/// serial / column-sharded GEMV / row-sharded tall.
const QGEMM_CASES: &[(usize, usize, usize)] = &[
    (3, 40, 5),      // serial: tiny, k not a multiple of QK
    (1, 1024, 1024), // GEMV column shard, n a multiple of the 64-col chunk
    (4, 700, 500),   // GEMV column shard, ragged k/n, m > 1 scatter
    (96, 128, 96),   // tall row shard, m not a multiple of the 8-row chunk
];

#[test]
fn qgemm_matches_dequant_oracle_and_is_invariant() {
    for (case, &(m, k, n)) in QGEMM_CASES.iter().enumerate() {
        let mut rng = Prng::new(0x9E0 + case as u64);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect();

        // quantize row-by-row: qgemm's NT layout restarts the 32-block
        // grid at every row of Bq, so a ragged k must not let blocks
        // straddle row boundaries
        let bpr = k.div_ceil(QK);
        let mut scales = vec![0u16; n * bpr];
        let mut quants = vec![0i8; n * k];
        for j in 0..n {
            quantize_q8_0(
                &b[j * k..(j + 1) * k],
                &mut scales[j * bpr..(j + 1) * bpr],
                &mut quants[j * k..(j + 1) * k],
            );
        }

        let run = || {
            let mut c = vec![0.0f32; m * n];
            kernels::qgemm_nt(m, k, n, &a, &scales, &quants, &mut c);
            c
        };
        let ctx = format!("qgemm_nt {m}x{k}x{n}");

        // oracle: dequantize (row-by-row, matching the layout above),
        // then naive fixed-order matmul over Bᵀ
        let mut bd = vec![0.0f32; n * k];
        for j in 0..n {
            dequantize_q8_0(
                &scales[j * bpr..(j + 1) * bpr],
                &quants[j * k..(j + 1) * k],
                &mut bd[j * k..(j + 1) * k],
            );
        }
        let base = rex_pool::with_pool_size(1, run);
        let tol = 1e-5 * (k as f32).sqrt().max(1.0);
        for i in 0..m {
            for j in 0..n {
                let expect: f32 = (0..k).map(|c| a[i * k + c] * bd[j * k + c]).sum();
                let got = base[i * n + j];
                let bound = tol * (1.0 + got.abs().max(expect.abs()));
                assert!(
                    (got - expect).abs() <= bound,
                    "{ctx}: C[{i},{j}]: {got} vs oracle {expect}"
                );
            }
        }

        // bitwise at any pool size, within each backend
        let scalar1 =
            backend::with_backend(BackendKind::Scalar, || rex_pool::with_pool_size(1, run));
        for &t in &THREADS[1..] {
            let c_t = rex_pool::with_pool_size(t, run);
            assert_bitwise(&c_t, &base, &format!("{ctx} simd @{t}T"));
            let s_t =
                backend::with_backend(BackendKind::Scalar, || rex_pool::with_pool_size(t, run));
            assert_bitwise(&s_t, &scalar1, &format!("{ctx} scalar @{t}T"));
        }

        // across backends: to rounding (folds associate differently)
        for (i, (x, y)) in scalar1.iter().zip(&base).enumerate() {
            let bound = tol * (1.0 + x.abs().max(y.abs()));
            assert!(
                (x - y).abs() <= bound,
                "{ctx} scalar-vs-simd: index {i}: {x} vs {y}"
            );
        }
    }
}

/// Conversion fuzz input: normals at several magnitudes plus every
/// special shape a float can take (signed zero, ±inf, NaN, f32
/// subnormals, values inside the f16-subnormal window, and exact
/// rounding ties).
fn conversion_fixture() -> Vec<f32> {
    let mut rng = Prng::new(0xC0417);
    let mut xs: Vec<f32> = Vec::new();
    for &mag in &[1.0f32, 1e-4, 6e-8, 1e-40, 1e4, 1e38] {
        xs.extend((0..997).map(|_| rng.normal() * mag));
    }
    xs.extend([
        0.0,
        -0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MIN_POSITIVE,           // smallest f32 normal
        f32::from_bits(0x0000_0001), // smallest f32 subnormal
        f32::from_bits(0x3300_0000), // f16 tie-to-zero midpoint (2^-25)
        f32::from_bits(0x3f80_8000), // bf16 tie below an even target
        f32::from_bits(0x3f81_8000), // bf16 tie above an odd target
        65504.0,                     // f16 max
        65520.0,                     // f16 overflow midpoint
    ]);
    xs
}

#[test]
fn conversions_bitwise_identical_across_backends() {
    let xs = conversion_fixture();
    let scalar = backend::for_kind(BackendKind::Scalar);
    let simd = backend::for_kind(BackendKind::Simd);

    // narrow: f32 → f16/bf16 bits must agree exactly
    let mut h_s = vec![0u16; xs.len()];
    let mut h_v = vec![0u16; xs.len()];
    scalar.f32_to_f16_slice(&xs, &mut h_s);
    simd.f32_to_f16_slice(&xs, &mut h_v);
    assert_eq!(h_s, h_v, "f32→f16 bits diverge across backends");

    let mut b_s = vec![0u16; xs.len()];
    let mut b_v = vec![0u16; xs.len()];
    scalar.f32_to_bf16_slice(&xs, &mut b_s);
    simd.f32_to_bf16_slice(&xs, &mut b_v);
    assert_eq!(b_s, b_v, "f32→bf16 bits diverge across backends");

    // widen: every 16-bit pattern (finite and special) must agree bitwise
    let all16: Vec<u16> = (0..=u16::MAX).collect();
    let mut w_s = vec![0.0f32; all16.len()];
    let mut w_v = vec![0.0f32; all16.len()];
    scalar.f16_to_f32_slice(&all16, &mut w_s);
    simd.f16_to_f32_slice(&all16, &mut w_v);
    for (i, (x, y)) in w_s.iter().zip(&w_v).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "f16→f32 bits {i:#06x}: {x:?} vs {y:?}"
        );
    }
    // and match the reference bit function
    for (i, &h) in all16.iter().enumerate() {
        let r = f16_bits_to_f32(h);
        assert!(
            r.to_bits() == w_s[i].to_bits() || (r.is_nan() && w_s[i].is_nan()),
            "f16→f32 {h:#06x}: slice {:?} vs scalar fn {r:?}",
            w_s[i]
        );
    }

    scalar.bf16_to_f32_slice(&all16, &mut w_s);
    simd.bf16_to_f32_slice(&all16, &mut w_v);
    for (i, (x, y)) in w_s.iter().zip(&w_v).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "bf16→f32 bits {i:#06x}: {x:?} vs {y:?}"
        );
    }
}
