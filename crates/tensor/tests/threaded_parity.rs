//! Parity of the row-sharded (multi-threaded) GEMM dispatch against the
//! naive oracle. Lives in its own test binary so `REX_NUM_THREADS` can be
//! set before the kernel layer's `OnceLock` caches the thread count —
//! which also means this file must stay a single `#[test]`.

use rex_tensor::conv::{conv2d_backward, conv2d_forward, Window};
use rex_tensor::reference;
use rex_tensor::{kernels, Prng};

#[test]
fn threaded_gemm_matches_reference() {
    std::env::set_var("REX_NUM_THREADS", "4");
    assert_eq!(kernels::num_threads(), 4);

    // large enough to clear PAR_FLOPS so the scoped-thread shard runs
    let (m, k, n) = (192, 160, 140);
    let mut rng = Prng::new(41);
    let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
    let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
    let got = a.matmul(&b).unwrap();
    let expect = reference::matmul_naive(m, k, n, a.data(), b.data());
    for (i, (x, y)) in got.data().iter().zip(&expect).enumerate() {
        let bound = 1e-5 * (1.0 + x.abs().max(y.abs()));
        assert!((x - y).abs() <= bound, "index {i}: {x} vs {y}");
    }

    // conv forward + backward through the same threaded dispatch
    let input = rng.normal_tensor(&[8, 3, 16, 16], 0.0, 1.0);
    let weight = rng.normal_tensor(&[8, 3, 3, 3], 0.0, 0.5);
    let win = Window {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let (out, saved) = conv2d_forward(&input, &weight, None, win).unwrap();
    let expect = reference::conv2d_direct(&input, &weight, None, win).unwrap();
    for (x, y) in out.data().iter().zip(expect.data()) {
        assert!((x - y).abs() <= 1e-5 * (1.0 + x.abs().max(y.abs())));
    }

    let d_out = rng.normal_tensor(out.shape(), 0.0, 1.0);
    let (di, dw, _) = conv2d_backward(&d_out, &weight, &saved).unwrap();
    let (rdi, rdw, _) = reference::conv2d_direct_backward(&d_out, &input, &weight, win).unwrap();
    for (x, y) in di.data().iter().zip(rdi.data()) {
        assert!((x - y).abs() <= 1e-5 * (1.0 + x.abs().max(y.abs())));
    }
    for (x, y) in dw.data().iter().zip(rdw.data()) {
        assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())));
    }
}
