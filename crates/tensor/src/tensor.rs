use crate::backend::ComputeBackend;
use crate::shape::broadcast_strides;
use crate::{broadcast_shapes, TensorError};

/// Minimum element count before elementwise ops shard onto the thread
/// pool. Elementwise sharding is bitwise-invisible (each output element
/// depends only on its own inputs), so this is purely a cost threshold.
const ELEM_PAR_MIN: usize = 1 << 16;

/// Chunk length for sharded elementwise ops.
const ELEM_CHUNK: usize = 1 << 13;

/// Minimum element count before whole-tensor reductions switch from the
/// historical serial fold to the deterministic fixed-chunk tree. The
/// switch changes float grouping, so the threshold is part of the
/// numerical contract: it is compared against *length only* (never thread
/// count), keeping results bitwise identical across pool sizes, and it is
/// set above the largest tensor whose reduction feeds the pinned golden
/// traces.
const REDUCE_PAR_MIN: usize = 1 << 15;

/// Chunk length for the deterministic reduction tree.
const REDUCE_CHUNK: usize = 1 << 13;

/// Dispatch key routing [`Tensor::add`]/[`Tensor::sub`]/[`Tensor::mul`]/
/// [`Tensor::div`] onto the corresponding [`ComputeBackend`] slice kernel.
#[derive(Clone, Copy)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    #[inline]
    fn apply(self, be: &dyn ComputeBackend, a: &[f32], b: &[f32], out: &mut [f32]) {
        match self {
            BinOp::Add => be.add_slices(a, b, out),
            BinOp::Sub => be.sub_slices(a, b, out),
            BinOp::Mul => be.mul_slices(a, b, out),
            BinOp::Div => be.div_slices(a, b, out),
        }
    }
}

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single data type flowing through the whole REX stack:
/// model parameters, activations, gradients, and dataset batches. Storage is
/// always contiguous, which keeps every op simple and cache-friendly; views
/// are deliberately not supported (ops allocate their outputs).
///
/// A scalar is represented as shape `[]` with exactly one element.
///
/// ```
/// use rex_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3])?;
/// assert_eq!(t.sum(), 6.0);
/// # Ok::<(), rex_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Default for Tensor {
    /// The scalar zero tensor.
    fn default() -> Self {
        Tensor::zeros(&[])
    }
}

impl Tensor {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the shape's element
    /// count differs from `data.len()`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                data_len: data.len(),
            });
        }
        Ok(Tensor {
            data,
            shape: shape.to_vec(),
        })
    }

    /// A tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: vec![],
        }
    }

    /// A tensor shaped like `other`, filled with zeros.
    pub fn zeros_like(other: &Tensor) -> Self {
        Tensor::zeros(other.shape())
    }

    /// The identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Evenly spaced values: `start, start+step, ...` for `n` elements.
    pub fn arange(start: f32, step: f32, n: usize) -> Self {
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Tensor {
            data,
            shape: vec![n],
        }
    }

    // ---------------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes (0 for a scalar).
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its raw storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert!(
            self.data.len() == 1,
            "item() on tensor with {} elements (shape {:?})",
            self.data.len(),
            self.shape
        );
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let o = self.offset(idx);
        self.data[o] = value;
    }

    fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        // row-major offset without allocating a strides vector (this runs
        // inside hot indexing loops)
        let mut off = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} (dim {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    // ---------------------------------------------------------------------
    // Shape manipulation
    // ---------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.clone(),
                to: shape.to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        })
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            data: self.data.clone(),
            shape: vec![self.data.len()],
        }
    }

    /// Transpose of a 2-D matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-2-D inputs.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: "2-D matrix",
                got: self.shape.clone(),
            });
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(Tensor {
            data: out,
            shape: vec![c, r],
        })
    }

    /// Extracts row-major rows `rows` from a tensor whose first axis indexes
    /// samples, producing a new tensor stacked along axis 0. Used by the
    /// data loader to assemble batches.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of bounds or the tensor is rank 0.
    pub fn gather_rows(&self, rows: &[usize]) -> Tensor {
        assert!(self.ndim() >= 1, "gather_rows on scalar");
        let row_len: usize = self.shape[1..].iter().product();
        let mut data = Vec::with_capacity(rows.len() * row_len);
        for &r in rows {
            assert!(r < self.shape[0], "row {r} out of bounds");
            data.extend_from_slice(&self.data[r * row_len..(r + 1) * row_len]);
        }
        let mut shape = self.shape.clone();
        shape[0] = rows.len();
        Tensor { data, shape }
    }

    // ---------------------------------------------------------------------
    // Elementwise maps and arithmetic
    // ---------------------------------------------------------------------

    /// Elementwise map with the chunks sharded across the thread pool.
    /// Private because it requires `Sync`; the public entry points route
    /// their fixed closures through it. Bitwise identical to [`Tensor::map`]
    /// at any thread count (each output element depends only on its input).
    fn map_par(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        if self.data.len() < ELEM_PAR_MIN || rex_pool::current_num_threads() == 1 {
            return self.map(f);
        }
        let mut data = vec![0.0f32; self.data.len()];
        rex_pool::parallel_for_slices(&mut data, ELEM_CHUNK, |_, offset, window| {
            let len = window.len();
            for (o, &x) in window.iter_mut().zip(&self.data[offset..offset + len]) {
                *o = f(x);
            }
        });
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Equal-shape elementwise combine, sharded across the pool; the
    /// parallel sibling of [`Tensor::zip_map`] (same caveats as
    /// [`Tensor::map_par`]).
    fn zip_map_par(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        let mut data = vec![0.0f32; self.data.len()];
        rex_pool::parallel_for_slices(&mut data, ELEM_CHUNK, |_, offset, window| {
            for (i, o) in window.iter_mut().enumerate() {
                *o = f(self.data[offset + i], other.data[offset + i]);
            }
        });
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Broadcasting binary op with parallel equal-shape and scalar fast
    /// paths (the general strided walk stays serial — it is rare and
    /// cheap in every model here). Bitwise identical to
    /// [`Tensor::broadcast_op`] at any thread count.
    fn broadcast_op_par(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<Tensor, TensorError> {
        let n = self.data.len().max(other.data.len());
        if n < ELEM_PAR_MIN || rex_pool::current_num_threads() == 1 {
            return self.broadcast_op(other, f);
        }
        if self.shape == other.shape {
            return Ok(self.zip_map_par(other, &f));
        }
        if other.data.len() == 1 {
            let b = other.data[0];
            return Ok(self.map_par(|a| f(a, b)));
        }
        if self.data.len() == 1 {
            let a = self.data[0];
            return Ok(other.map_par(|b| f(a, b)));
        }
        self.broadcast_op(other, f)
    }

    /// Backend-routed binary op. Equal shapes, scalar operands, and the
    /// `[.., c] ⊕ [c]` row-broadcast (bias) pattern run on the active
    /// [`ComputeBackend`]'s slice kernels; any other broadcast falls back
    /// to the historical closure walk. Every fast path is a pure
    /// elementwise map, so within a backend the result is bitwise
    /// identical at any thread count; under [`crate::backend::ScalarBackend`]
    /// it also matches the historical [`Tensor::broadcast_op`] bit for bit
    /// (scalar subtraction becomes `x + (-s)`, which IEEE 754 defines as
    /// the same operation).
    fn binary_backend(&self, other: &Tensor, op: BinOp) -> Result<Tensor, TensorError> {
        let be = crate::backend::active();
        if self.shape == other.shape {
            let mut data = vec![0.0f32; self.data.len()];
            if self.data.len() < ELEM_PAR_MIN || rex_pool::current_num_threads() == 1 {
                op.apply(be, &self.data, &other.data, &mut data);
            } else {
                rex_pool::parallel_for_slices(&mut data, ELEM_CHUNK, |_, offset, window| {
                    let len = window.len();
                    op.apply(
                        be,
                        &self.data[offset..offset + len],
                        &other.data[offset..offset + len],
                        window,
                    );
                });
            }
            return Ok(Tensor {
                data,
                shape: self.shape.clone(),
            });
        }
        if other.data.len() == 1 {
            let s = other.data[0];
            return match op {
                BinOp::Add => {
                    Ok(self.unary_backend(move |be, src, out| be.add_scalar(s, src, out)))
                }
                BinOp::Sub => {
                    Ok(self.unary_backend(move |be, src, out| be.add_scalar(-s, src, out)))
                }
                BinOp::Mul => Ok(self.unary_backend(move |be, src, out| be.scale(s, src, out))),
                // x / s must stay a true division (not a multiply by 1/s)
                BinOp::Div => Ok(self.map_par(move |a| a / s)),
            };
        }
        if other.ndim() == 1 && self.ndim() >= 2 && self.shape.last() == Some(&other.data.len()) {
            // row-broadcast bias pattern: apply the slice kernel per row
            let c = other.data.len();
            let mut data = vec![0.0f32; self.data.len()];
            if data.is_empty() {
                return Ok(Tensor {
                    data,
                    shape: self.shape.clone(),
                });
            }
            let body = |offset: usize, window: &mut [f32]| {
                for (i, orow) in window.chunks_mut(c).enumerate() {
                    let r0 = offset / c + i;
                    op.apply(be, &self.data[r0 * c..(r0 + 1) * c], &other.data, orow);
                }
            };
            if self.data.len() < ELEM_PAR_MIN || rex_pool::current_num_threads() == 1 {
                body(0, &mut data);
            } else {
                // chunk on whole-row boundaries so each body call sees full rows
                let chunk = (ELEM_CHUNK / c).max(1) * c;
                rex_pool::parallel_for_slices(&mut data, chunk, |_, offset, window| {
                    body(offset, window);
                });
            }
            return Ok(Tensor {
                data,
                shape: self.shape.clone(),
            });
        }
        match op {
            BinOp::Add => self.broadcast_op_par(other, |a, b| a + b),
            BinOp::Sub => self.broadcast_op_par(other, |a, b| a - b),
            BinOp::Mul => self.broadcast_op_par(other, |a, b| a * b),
            BinOp::Div => self.broadcast_op_par(other, |a, b| a / b),
        }
    }

    /// Backend-routed unary slice op (scale / add-scalar), sharded like
    /// [`Tensor::map_par`].
    fn unary_backend(&self, f: impl Fn(&dyn ComputeBackend, &[f32], &mut [f32]) + Sync) -> Tensor {
        let be = crate::backend::active();
        let mut data = vec![0.0f32; self.data.len()];
        if self.data.len() < ELEM_PAR_MIN || rex_pool::current_num_threads() == 1 {
            f(be, &self.data, &mut data);
        } else {
            rex_pool::parallel_for_slices(&mut data, ELEM_CHUNK, |_, offset, window| {
                let len = window.len();
                f(be, &self.data[offset..offset + len], window);
            });
        }
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] if shapes differ (this is
    /// the strict, non-broadcasting variant; see [`Tensor::broadcast_op`]).
    pub fn zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::BroadcastMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// Applies a binary op under full NumPy-style broadcasting.
    ///
    /// Fast paths handle equal shapes and scalar operands; the general case
    /// walks the broadcast index space with per-axis strides.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] if shapes are incompatible.
    pub fn broadcast_op(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape == other.shape {
            return self.zip_map(other, f);
        }
        if other.data.len() == 1 {
            let b = other.data[0];
            return Ok(self.map(|a| f(a, b)));
        }
        if self.data.len() == 1 {
            let a = self.data[0];
            return Ok(other.map(|b| f(a, b)));
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape)?;
        let ls = broadcast_strides(&self.shape, &out_shape);
        let rs = broadcast_strides(&other.shape, &out_shape);
        let n: usize = out_shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; out_shape.len()];
        let mut loff = 0usize;
        let mut roff = 0usize;
        for _ in 0..n {
            data.push(f(self.data[loff], other.data[roff]));
            // advance multi-index with stride bookkeeping
            for ax in (0..out_shape.len()).rev() {
                idx[ax] += 1;
                loff += ls[ax];
                roff += rs[ax];
                if idx[ax] < out_shape[ax] {
                    break;
                }
                idx[ax] = 0;
                loff -= ls[ax] * out_shape[ax];
                roff -= rs[ax] * out_shape[ax];
            }
        }
        Ok(Tensor {
            data,
            shape: out_shape,
        })
    }

    /// Elementwise sum with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] on incompatible shapes.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.binary_backend(other, BinOp::Add)
    }

    /// Elementwise difference with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] on incompatible shapes.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.binary_backend(other, BinOp::Sub)
    }

    /// Elementwise product with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] on incompatible shapes.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.binary_backend(other, BinOp::Mul)
    }

    /// Elementwise quotient with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] on incompatible shapes.
    pub fn div(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.binary_backend(other, BinOp::Div)
    }

    /// Multiplies every element by `s` (on the active compute backend).
    pub fn scale(&self, s: f32) -> Tensor {
        self.unary_backend(move |be, src, out| be.scale(s, src, out))
    }

    /// Adds `s` to every element (on the active compute backend).
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.unary_backend(move |be, src, out| be.add_scalar(s, src, out))
    }

    /// In-place `self += other * alpha` for same-shaped tensors (the hot
    /// loop of every optimizer and gradient accumulation site).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
        let be = crate::backend::active();
        if self.data.len() >= ELEM_PAR_MIN && rex_pool::current_num_threads() > 1 {
            let src = &other.data;
            rex_pool::parallel_for_slices(&mut self.data, ELEM_CHUNK, |_, offset, window| {
                let len = window.len();
                be.axpy(alpha, &src[offset..offset + len], window);
            });
        } else {
            be.axpy(alpha, &other.data, &mut self.data);
        }
    }

    // ---------------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------------

    /// Sum of all elements (folded by the active compute backend:
    /// [`crate::backend::ScalarBackend`] keeps the historical serial fold,
    /// [`crate::backend::SimdBackend`] uses its fixed 8-lane chunked fold).
    ///
    /// Tensors of at least [`REDUCE_PAR_MIN`] elements reduce through the
    /// pool's fixed-chunk deterministic tree ([`rex_pool::parallel_reduce`])
    /// with the backend fold applied per chunk. Both the path and the chunk
    /// grid are chosen by *length alone* — never thread count — so within a
    /// backend the result is bitwise identical for any pool size.
    pub fn sum(&self) -> f32 {
        let be = crate::backend::active();
        if self.data.len() < REDUCE_PAR_MIN {
            return be.sum(&self.data);
        }
        rex_pool::parallel_reduce(
            self.data.len(),
            REDUCE_CHUNK,
            |_, r| be.sum(&self.data[r]),
            |a, b| a + b,
        )
        .unwrap_or(0.0)
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty tensor");
        let be = crate::backend::active();
        if self.data.len() < REDUCE_PAR_MIN {
            return be.max(&self.data);
        }
        // f32::max is associative and commutative (NaN-ignoring), so any
        // grouping yields the same value; the fixed tree is used for
        // uniformity with sum.
        rex_pool::parallel_reduce(
            self.data.len(),
            REDUCE_CHUNK,
            |_, r| be.max(&self.data[r]),
            f32::max,
        )
        .unwrap_or(f32::NEG_INFINITY)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        assert!(!self.data.is_empty(), "min of empty tensor");
        let be = crate::backend::active();
        if self.data.len() < REDUCE_PAR_MIN {
            return be.min(&self.data);
        }
        rex_pool::parallel_reduce(
            self.data.len(),
            REDUCE_CHUNK,
            |_, r| be.min(&self.data[r]),
            f32::min,
        )
        .unwrap_or(f32::INFINITY)
    }

    /// Squared L2 norm (same deterministic chunked path as [`Tensor::sum`]
    /// above [`REDUCE_PAR_MIN`]).
    pub fn sq_norm(&self) -> f32 {
        let be = crate::backend::active();
        if self.data.len() < REDUCE_PAR_MIN {
            return be.sq_sum(&self.data);
        }
        rex_pool::parallel_reduce(
            self.data.len(),
            REDUCE_CHUNK,
            |_, r| be.sq_sum(&self.data[r]),
            |a, b| a + b,
        )
        .unwrap_or(0.0)
    }

    /// Sums along `axis`, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= ndim`.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor, TensorError> {
        if axis >= self.ndim() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                ndim: self.ndim(),
            });
        }
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out = vec![0.0; outer * inner];
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] += self.data[base + i];
                }
            }
        }
        let mut shape: Vec<usize> = self.shape.clone();
        shape.remove(axis);
        Ok(Tensor { data: out, shape })
    }

    /// Means along `axis`, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= ndim`.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor, TensorError> {
        let n = self.shape.get(axis).copied().unwrap_or(0).max(1) as f32;
        Ok(self.sum_axis(axis)?.scale(1.0 / n))
    }

    /// Reduces `grad` (shaped like a broadcast output) back to `target`
    /// shape by summing over the broadcast axes. This is the adjoint of
    /// broadcasting and is used by every broadcast-aware backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] if `target` does not
    /// broadcast to `self.shape()`.
    pub fn reduce_to_shape(&self, target: &[usize]) -> Result<Tensor, TensorError> {
        if self.shape == target {
            return Ok(self.clone());
        }
        // Verify the relationship is a legal broadcast.
        let broad = broadcast_shapes(&self.shape, target)?;
        if broad != self.shape {
            return Err(TensorError::BroadcastMismatch {
                lhs: self.shape.clone(),
                rhs: target.to_vec(),
            });
        }
        let mut cur = self.clone();
        // Sum leading extra axes.
        while cur.ndim() > target.len() {
            cur = cur.sum_axis(0)?;
        }
        // Sum axes where target dim is 1 but current dim > 1 (keeping dim).
        for (ax, &target_dim) in target.iter().enumerate() {
            if target_dim == 1 && cur.shape[ax] != 1 {
                let summed = cur.sum_axis(ax)?;
                let mut shape = summed.shape.clone();
                shape.insert(ax, 1);
                cur = Tensor {
                    data: summed.data,
                    shape,
                };
            }
        }
        Ok(cur)
    }

    /// Index of the maximum element of each row of a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-2-D inputs.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: "2-D matrix",
                got: self.shape.clone(),
            });
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let row = &self.data[i * c..(i + 1) * c];
            let mut best = 0;
            for j in 1..c {
                if row[j] > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    // ---------------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------------

    /// Matrix product of two 2-D tensors (`[m,k] x [k,n] -> [m,n]`).
    ///
    /// Lowers onto the blocked, branch-free GEMM in [`crate::kernels`];
    /// this is the single hottest kernel in the workspace.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] if either operand is not 2-D
    /// or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.ndim() != 2 || other.ndim() != 2 || self.shape[1] != other.shape[0] {
            return Err(TensorError::MatmulMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = vec![0.0f32; m * n];
        crate::kernels::gemm(m, k, n, &self.data, &other.data, &mut out);
        Ok(Tensor {
            data: out,
            shape: vec![m, n],
        })
    }

    /// `selfᵀ × other` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] on shape mismatch.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.ndim() != 2 || other.ndim() != 2 || self.shape[0] != other.shape[0] {
            return Err(TensorError::MatmulMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let (k, m) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = vec![0.0f32; m * n];
        crate::kernels::gemm_tn(m, k, n, &self.data, &other.data, &mut out);
        Ok(Tensor {
            data: out,
            shape: vec![m, n],
        })
    }

    /// `self × otherᵀ` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] on shape mismatch.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.ndim() != 2 || other.ndim() != 2 || self.shape[1] != other.shape[1] {
            return Err(TensorError::MatmulMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[0];
        let mut out = vec![0.0f32; m * n];
        crate::kernels::gemm_nt(m, k, n, &self.data, &other.data, &mut out);
        Ok(Tensor {
            data: out,
            shape: vec![m, n],
        })
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, ..., {:.4}] ({} elems)",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn scalar_roundtrip() {
        let s = Tensor::scalar(2.5);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.item(), 2.5);
    }

    #[test]
    fn eye_diag() {
        let e = Tensor::eye(3);
        assert_eq!(e.at(&[0, 0]), 1.0);
        assert_eq!(e.at(&[1, 0]), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn arange_values() {
        let t = Tensor::arange(1.0, 0.5, 4);
        assert_eq!(t.data(), &[1.0, 1.5, 2.0, 2.5]);
    }

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0]);
    }

    #[test]
    fn add_broadcast_bias() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let bias = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let c = a.add(&bias).unwrap();
        assert_eq!(c.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn add_broadcast_column() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let col = Tensor::from_vec(vec![10.0, 100.0], &[2, 1]).unwrap();
        let c = a.add(&col).unwrap();
        assert_eq!(c.data(), &[11.0, 12.0, 103.0, 104.0]);
    }

    #[test]
    fn broadcast_incompatible_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]).unwrap();
        let direct = a.transpose().unwrap().matmul(&b).unwrap();
        let fused = a.matmul_tn(&b).unwrap();
        assert_eq!(direct, fused);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let direct = a.matmul(&b.transpose().unwrap()).unwrap();
        let fused = a.matmul_nt(&b).unwrap();
        assert_eq!(direct, fused);
    }

    #[test]
    fn sum_axis_middle() {
        let t = Tensor::arange(0.0, 1.0, 24).reshape(&[2, 3, 4]).unwrap();
        let s = t.sum_axis(1).unwrap();
        assert_eq!(s.shape(), &[2, 4]);
        // element (0,0) = t[0,0,0]+t[0,1,0]+t[0,2,0] = 0+4+8
        assert_eq!(s.at(&[0, 0]), 12.0);
    }

    #[test]
    fn reduce_to_shape_sums_broadcast_axes() {
        let g = Tensor::ones(&[4, 3]);
        let r = g.reduce_to_shape(&[3]).unwrap();
        assert_eq!(r.shape(), &[3]);
        assert_eq!(r.data(), &[4.0, 4.0, 4.0]);

        let r2 = g.reduce_to_shape(&[4, 1]).unwrap();
        assert_eq!(r2.shape(), &[4, 1]);
        assert_eq!(r2.data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn reduce_to_shape_identity() {
        let g = Tensor::ones(&[2, 2]);
        assert_eq!(g.reduce_to_shape(&[2, 2]).unwrap(), g);
    }

    #[test]
    fn argmax_rows_basic() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn gather_rows_stacks_samples() {
        let t = Tensor::arange(0.0, 1.0, 12).reshape(&[4, 3]).unwrap();
        let g = t.gather_rows(&[2, 0]);
        assert_eq!(g.shape(), &[2, 3]);
        assert_eq!(g.data(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn transpose_rectangular() {
        let t = Tensor::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
    }
}
