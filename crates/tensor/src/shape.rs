use crate::TensorError;

/// Computes row-major strides for `shape`.
///
/// The last axis always has stride 1; an empty shape yields an empty stride
/// vector (scalar tensors are represented as shape `[]` with one element).
///
/// ```
/// assert_eq!(rex_tensor::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1;
    for (i, &dim) in shape.iter().enumerate().rev() {
        strides[i] = acc;
        acc *= dim;
    }
    strides
}

/// Computes the NumPy-style broadcast of two shapes.
///
/// Shapes are aligned at the trailing axes; each pair of dimensions must be
/// equal or one of them must be 1.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastMismatch`] when any aligned dimension pair
/// is unequal and neither side is 1.
///
/// ```
/// let out = rex_tensor::broadcast_shapes(&[4, 1, 3], &[2, 3])?;
/// assert_eq!(out, vec![4, 2, 3]);
/// # Ok::<(), rex_tensor::TensorError>(())
/// ```
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>, TensorError> {
    let ndim = lhs.len().max(rhs.len());
    let mut out = vec![0; ndim];
    for (i, slot) in out.iter_mut().enumerate() {
        let l = dim_from_end(lhs, ndim - 1 - i);
        let r = dim_from_end(rhs, ndim - 1 - i);
        *slot = if l == r || r == 1 {
            l
        } else if l == 1 {
            r
        } else {
            return Err(TensorError::BroadcastMismatch {
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
            });
        };
    }
    Ok(out)
}

/// Dimension of `shape` counted from the trailing axis, padding with 1.
fn dim_from_end(shape: &[usize], from_end: usize) -> usize {
    if from_end < shape.len() {
        shape[shape.len() - 1 - from_end]
    } else {
        1
    }
}

/// Strides for reading a tensor of `shape` as if it had been broadcast to
/// `target` rank/dims: broadcast axes get stride 0 so the same element is
/// revisited.
pub(crate) fn broadcast_strides(shape: &[usize], target: &[usize]) -> Vec<usize> {
    let strides = strides_for(shape);
    let mut out = vec![0; target.len()];
    let offset = target.len() - shape.len();
    for i in 0..shape.len() {
        out[offset + i] = if shape[i] == 1 { 0 } else { strides[i] };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_with_ones() {
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[4, 3]).unwrap(), vec![4, 3]);
        assert_eq!(broadcast_shapes(&[], &[4, 3]).unwrap(), vec![4, 3]);
    }

    #[test]
    fn broadcast_mismatch_errors() {
        assert!(broadcast_shapes(&[2, 3], &[2, 4]).is_err());
        assert!(broadcast_shapes(&[5], &[4, 3]).is_err());
    }

    #[test]
    fn broadcast_strides_zero_on_expanded_axes() {
        assert_eq!(broadcast_strides(&[1, 3], &[4, 2, 3]), vec![0, 0, 1]);
        assert_eq!(broadcast_strides(&[2, 3], &[2, 3]), vec![3, 1]);
    }
}
