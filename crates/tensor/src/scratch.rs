//! Thread-local scratch-buffer pool for kernel workspaces.
//!
//! The GEMM packing panels and the im2col patch matrices are large,
//! short-lived `Vec<f32>` allocations that recur with identical sizes every
//! training step. Allocating them once and recycling them turns a
//! per-step `malloc`/`memset` into a `Vec::clear` + `resize`, which the
//! allocator never sees after warm-up.
//!
//! [`PooledBuf`] is a `Vec<f32>` that returns its storage to a
//! thread-local free list on drop. Each thread owns its own pool, so no
//! locking is involved and the [`crate::kernels`] row-sharding threads
//! never contend.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Maximum number of free buffers retained per thread; beyond this,
/// dropped buffers are simply freed.
const MAX_POOLED: usize = 16;

/// Buffers larger than this (in elements, 64 Mi f32 = 256 MiB) are never
/// retained, so a one-off huge workspace cannot pin memory forever.
const MAX_RETAINED_LEN: usize = 64 * 1024 * 1024;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// A zero-filled `f32` workspace drawn from the thread-local pool.
///
/// Dereferences to `[f32]`. On drop the storage goes back to the pool
/// (bounded by [`MAX_POOLED`] buffers per thread).
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<f32>,
}

impl PooledBuf {
    /// Acquires a buffer of exactly `len` elements, all zero.
    ///
    /// Reuses the pooled buffer with the largest capacity when one exists;
    /// `resize` after `clear` zero-fills only up to `len`, so a warm
    /// buffer costs one memset and no allocation.
    pub fn zeroed(len: usize) -> Self {
        let mut buf = Self::acquire(len);
        buf.clear();
        buf.resize(len, 0.0);
        PooledBuf { buf }
    }

    /// Acquires a buffer of exactly `len` elements with **unspecified**
    /// (possibly recycled) contents — no memset.
    ///
    /// For workspaces that are fully overwritten before any element is
    /// read (the SIMD GEMM packing panels), where [`PooledBuf::zeroed`]'s
    /// clear-and-fill would be pure overhead on every call.
    pub fn uninit(len: usize) -> Self {
        let mut buf = Self::acquire(len);
        if buf.len() >= len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        PooledBuf { buf }
    }

    /// Pulls the best-fitting free buffer from the thread-local pool: the
    /// smallest capacity that already holds `len`, falling back to the
    /// largest buffer available (or a fresh empty `Vec`).
    fn acquire(len: usize) -> Vec<f32> {
        POOL.with_borrow_mut(|pool| {
            let mut best: Option<usize> = None;
            for (i, b) in pool.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some(j) => {
                        let (bc, jc) = (b.capacity(), pool[j].capacity());
                        if jc >= len {
                            bc >= len && bc < jc
                        } else {
                            bc > jc
                        }
                    }
                };
                if better {
                    best = Some(i);
                }
            }
            best.map(|i| pool.swap_remove(i))
        })
        .unwrap_or_default()
    }

    /// Consumes the buffer without returning it to the pool, yielding the
    /// raw storage (used when a kernel result becomes tensor storage).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.buf)
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 || self.buf.capacity() > MAX_RETAINED_LEN {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        POOL.with_borrow_mut(|pool| {
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
}

impl Clone for PooledBuf {
    fn clone(&self) -> Self {
        let mut out = PooledBuf::zeroed(self.buf.len());
        out.buf.copy_from_slice(&self.buf);
        out
    }
}

impl Deref for PooledBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_after_reuse() {
        {
            let mut a = PooledBuf::zeroed(128);
            a[7] = 42.0;
        } // returned to pool dirty
        let b = PooledBuf::zeroed(64);
        assert!(b.iter().all(|&x| x == 0.0), "recycled buffer not zeroed");
    }

    #[test]
    fn reuse_preserves_capacity() {
        let cap = {
            let a = PooledBuf::zeroed(1000);
            a.buf.capacity()
        };
        let b = PooledBuf::zeroed(500);
        assert!(b.buf.capacity() >= 500);
        // the 1000-capacity buffer should have been recycled
        assert!(b.buf.capacity() >= cap.min(1000));
    }

    #[test]
    fn into_vec_detaches_storage() {
        let a = PooledBuf::zeroed(16);
        let v = a.into_vec();
        assert_eq!(v.len(), 16);
    }

    #[test]
    fn clone_copies_contents() {
        let mut a = PooledBuf::zeroed(8);
        a[3] = 1.5;
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
    }
}
