//! Free-standing numeric kernels shared by the autograd layer.
//!
//! These operate on [`Tensor`]s and implement the numerically-sensitive
//! primitives (stabilised softmax, log-sum-exp) plus common activations.

use crate::{Tensor, TensorError};

/// Minimum element count before an elementwise or row-wise op is worth
/// handing to the thread pool (each output element is computed from its
/// own inputs only, so sharding never changes float order).
const PAR_ELEMS: usize = 1 << 16;

/// Rows per chunk for the row-parallel softmax family — fixed so the
/// chunk grid depends only on the row count.
const ROW_CHUNK: usize = 32;

/// Applies `f` elementwise, sharding chunks of the output across the
/// thread pool above [`PAR_ELEMS`]. Per-element results are independent,
/// so this is bitwise identical to [`Tensor::map`] at any thread count.
fn unary_par(x: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    if x.len() < PAR_ELEMS || rex_pool::current_num_threads() == 1 {
        return x.map(f);
    }
    let src = x.data();
    let mut out = vec![0.0f32; src.len()];
    rex_pool::parallel_for_slices(&mut out, PAR_ELEMS / 8, |_, offset, window| {
        let len = window.len();
        for (o, &v) in window.iter_mut().zip(&src[offset..offset + len]) {
            *o = f(v);
        }
    });
    Tensor::from_vec(out, x.shape()).expect("shape preserved")
}

/// Runs `per_row(row_index, input_row, output_row)` over all `r` rows,
/// sharding [`ROW_CHUNK`]-row chunks across the pool for large inputs.
/// Rows are independent, so this is bitwise identical to the serial loop.
fn rowwise_par(
    r: usize,
    c: usize,
    input: &[f32],
    out: &mut [f32],
    per_row: impl Fn(&[f32], &mut [f32]) + Sync,
) {
    if r * c < PAR_ELEMS || rex_pool::current_num_threads() == 1 {
        for (row, orow) in input.chunks(c).zip(out.chunks_mut(c)) {
            per_row(row, orow);
        }
    } else {
        rex_pool::parallel_for_slices(out, ROW_CHUNK * c, |_, offset, window| {
            let rows = window.len() / c;
            let i0 = offset / c;
            for i in 0..rows {
                per_row(
                    &input[(i0 + i) * c..(i0 + i + 1) * c],
                    &mut window[i * c..(i + 1) * c],
                );
            }
        });
    }
}

/// Numerically-stable softmax over the last axis of a 2-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D inputs.
pub fn softmax_rows(x: &Tensor) -> Result<Tensor, TensorError> {
    let (r, c) = as_2d(x)?;
    let _sp = rex_telemetry::span::kernel_span("softmax");
    let mut out = vec![0.0f32; r * c];
    // backend resolved once so the row closure (which may run on pool
    // workers) uses the caller's backend
    let be = crate::backend::active();
    rowwise_par(r, c, x.data(), &mut out, |row, orow| {
        be.softmax_row(row, orow);
    });
    Tensor::from_vec(out, &[r, c])
}

/// Numerically-stable log-softmax over the last axis of a 2-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D inputs.
pub fn log_softmax_rows(x: &Tensor) -> Result<Tensor, TensorError> {
    let (r, c) = as_2d(x)?;
    let _sp = rex_telemetry::span::kernel_span("log_softmax");
    let mut out = vec![0.0f32; r * c];
    let be = crate::backend::active();
    rowwise_par(r, c, x.data(), &mut out, |row, orow| {
        be.log_softmax_row(row, orow);
    });
    Tensor::from_vec(out, &[r, c])
}

/// Rectified linear unit (backend slice kernel; elementwise, so results
/// are bitwise identical on every backend and thread count).
pub fn relu(x: &Tensor) -> Tensor {
    let be = crate::backend::active();
    let src = x.data();
    let mut out = vec![0.0f32; src.len()];
    if src.len() < PAR_ELEMS || rex_pool::current_num_threads() == 1 {
        be.relu(src, &mut out);
    } else {
        rex_pool::parallel_for_slices(&mut out, PAR_ELEMS / 8, |_, offset, window| {
            be.relu(&src[offset..offset + window.len()], window);
        });
    }
    Tensor::from_vec(out, x.shape()).expect("shape preserved")
}

/// Leaky ReLU with slope `alpha` for negative inputs.
pub fn leaky_relu(x: &Tensor, alpha: f32) -> Tensor {
    unary_par(x, |v| if v >= 0.0 { v } else { alpha * v })
}

/// Logistic sigmoid, computed in the numerically-stable two-branch form.
pub fn sigmoid(x: &Tensor) -> Tensor {
    unary_par(x, sigmoid_scalar)
}

/// Scalar logistic sigmoid (stable for large |x|).
pub fn sigmoid_scalar(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// Hyperbolic tangent.
pub fn tanh(x: &Tensor) -> Tensor {
    unary_par(x, f32::tanh)
}

/// Gaussian error linear unit (tanh approximation, as used by BERT).
pub fn gelu(x: &Tensor) -> Tensor {
    unary_par(x, gelu_scalar)
}

/// Scalar GELU (tanh approximation).
pub fn gelu_scalar(v: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * v * (1.0 + (C * (v + 0.044_715 * v * v * v)).tanh())
}

/// Derivative of the tanh-approximated GELU, used by the backward pass.
pub fn gelu_grad_scalar(v: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (v + 0.044_715 * v * v * v);
    let t = inner.tanh();
    let dinner = C * (1.0 + 3.0 * 0.044_715 * v * v);
    0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * dinner
}

fn as_2d(x: &Tensor) -> Result<(usize, usize), TensorError> {
    if x.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: "2-D matrix",
            got: x.shape().to_vec(),
        });
    }
    Ok((x.shape()[0], x.shape()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = softmax_rows(&x).unwrap();
        for i in 0..2 {
            let sum: f32 = s.data()[i * 3..(i + 1) * 3].iter().sum();
            assert_close(sum, 1.0, 1e-6);
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1000.0, 1000.0], &[1, 3]).unwrap();
        let s = softmax_rows(&x).unwrap();
        for &v in s.data() {
            assert_close(v, 1.0 / 3.0, 1e-6);
        }
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = Tensor::from_vec(vec![0.5, -0.5, 2.0, 1.0], &[2, 2]).unwrap();
        let s = softmax_rows(&x).unwrap();
        let ls = log_softmax_rows(&x).unwrap();
        for (a, b) in s.data().iter().zip(ls.data()) {
            assert_close(a.ln(), *b, 1e-5);
        }
    }

    #[test]
    fn sigmoid_stable_extremes() {
        assert_close(sigmoid_scalar(100.0), 1.0, 1e-6);
        assert_close(sigmoid_scalar(-100.0), 0.0, 1e-6);
        assert_close(sigmoid_scalar(0.0), 0.5, 1e-7);
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
        assert_eq!(leaky_relu(&x, 0.1).data(), &[-0.1, 0.0, 2.0]);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh approximation itself at known points.
        assert_close(gelu_scalar(0.0), 0.0, 1e-7);
        assert!(gelu_scalar(3.0) > 2.99);
        assert!(gelu_scalar(-3.0).abs() < 0.01);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &v in &[-2.0f32, -0.5, 0.0, 0.7, 1.5] {
            let h = 1e-3;
            let fd = (gelu_scalar(v + h) - gelu_scalar(v - h)) / (2.0 * h);
            assert_close(gelu_grad_scalar(v), fd, 1e-3);
        }
    }
}

/// Transposes the last two axes of a 3-D tensor (`[B,M,N] → [B,N,M]`).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-3-D inputs.
pub fn transpose_last2(t: &Tensor) -> Result<Tensor, TensorError> {
    let (b, m, n) = dims3(t)?;
    let mut out = vec![0.0f32; b * m * n];
    let src = t.data();
    let slice_transpose = |s: usize, window: &mut [f32]| {
        for i in 0..m {
            for j in 0..n {
                window[j * m + i] = src[s * m * n + i * n + j];
            }
        }
    };
    if b >= 2 && b * m * n >= PAR_ELEMS && rex_pool::current_num_threads() > 1 {
        rex_pool::parallel_for_slices(&mut out, m * n, |s, _, w| slice_transpose(s, w));
    } else {
        for (s, w) in out.chunks_mut(m * n).enumerate() {
            slice_transpose(s, w);
        }
    }
    Tensor::from_vec(out, &[b, n, m])
}

/// Permutes a 4-D tensor's axes from `[B, X, Y, D]` to `[B, Y, X, D]`
/// (the multi-head attention head split/merge; self-inverse).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-4-D inputs.
pub fn permute_0213(t: &Tensor) -> Result<Tensor, TensorError> {
    if t.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: "4-D tensor for 0213 permutation",
            got: t.shape().to_vec(),
        });
    }
    let (b, x, y, d) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
    let mut out = vec![0.0f32; t.len()];
    let data = t.data();
    let slice_permute = |s: usize, window: &mut [f32]| {
        for i in 0..x {
            for j in 0..y {
                let src = ((s * x + i) * y + j) * d;
                let dst = (j * x + i) * d;
                window[dst..dst + d].copy_from_slice(&data[src..src + d]);
            }
        }
    };
    if b >= 2 && t.len() >= PAR_ELEMS && rex_pool::current_num_threads() > 1 {
        rex_pool::parallel_for_slices(&mut out, x * y * d, |s, _, w| slice_permute(s, w));
    } else {
        for (s, w) in out.chunks_mut(x * y * d).enumerate() {
            slice_permute(s, w);
        }
    }
    Tensor::from_vec(out, &[b, y, x, d])
}

/// One batch slice `[rows, cols]` of a 3-D tensor, copied out as a matrix.
///
/// # Panics
///
/// Panics if the slice range exceeds the tensor's storage.
pub fn batch_slice(t: &Tensor, s: usize, rows: usize, cols: usize) -> Tensor {
    let base = s * rows * cols;
    Tensor::from_vec(t.data()[base..base + rows * cols].to_vec(), &[rows, cols])
        .expect("slice geometry is consistent")
}

fn dims3(t: &Tensor) -> Result<(usize, usize, usize), TensorError> {
    if t.ndim() != 3 {
        return Err(TensorError::RankMismatch {
            expected: "3-D tensor",
            got: t.shape().to_vec(),
        });
    }
    Ok((t.shape()[0], t.shape()[1], t.shape()[2]))
}

/// Batched matrix product of 3-D tensors: `[B,M,K] × [B,K,N] → [B,M,N]`.
///
/// Runs directly on the batch slices via [`crate::kernels::gemm_batch`] —
/// no per-batch copies are materialised (unlike the old
/// [`batch_slice`]-based path).
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] on incompatible shapes.
pub fn matmul3(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ba, m, k) = dims3(a)?;
    let (bb, k2, n) = dims3(b)?;
    if ba != bb || k != k2 {
        return Err(TensorError::MatmulMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut out = vec![0.0f32; ba * m * n];
    crate::kernels::gemm_batch(ba, m, k, n, a.data(), b.data(), &mut out);
    Tensor::from_vec(out, &[ba, m, n])
}

/// Batched `g × bᵀ` per batch element (`[B,M,N] × [B,K,N] → [B,M,K]`),
/// without materialising transposes or batch copies.
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] on incompatible shapes.
pub fn matmul3_nt(g: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (bs, m, n) = dims3(g)?;
    let (bs2, k, n2) = dims3(b)?;
    if bs != bs2 || n != n2 {
        return Err(TensorError::MatmulMismatch {
            lhs: g.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut out = vec![0.0f32; bs * m * k];
    crate::kernels::gemm_batch_nt(bs, m, n, k, g.data(), b.data(), &mut out);
    Tensor::from_vec(out, &[bs, m, k])
}

/// Batched `aᵀ × g` per batch element (`[B,M,K] × [B,M,N] → [B,K,N]`),
/// without materialising transposes or batch copies.
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] on incompatible shapes.
pub fn matmul3_tn(a: &Tensor, g: &Tensor) -> Result<Tensor, TensorError> {
    let (bs, m, k) = dims3(a)?;
    let (bs2, m2, n) = dims3(g)?;
    if bs != bs2 || m != m2 {
        return Err(TensorError::MatmulMismatch {
            lhs: a.shape().to_vec(),
            rhs: g.shape().to_vec(),
        });
    }
    let mut out = vec![0.0f32; bs * k * n];
    crate::kernels::gemm_batch_tn(bs, k, m, n, a.data(), g.data(), &mut out);
    Tensor::from_vec(out, &[bs, k, n])
}

/// Batched matrix product (alias of [`matmul3`], kept for callers that
/// predate the kernel rework).
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] on incompatible shapes.
pub fn batch_matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul3(a, b)
}

/// Batched `g × bᵀ` (alias of [`matmul3_nt`]).
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] on incompatible shapes.
pub fn batch_matmul_nt(g: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul3_nt(g, b)
}

/// Batched `aᵀ × g` (alias of [`matmul3_tn`]).
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] on incompatible shapes.
pub fn batch_matmul_tn(a: &Tensor, g: &Tensor) -> Result<Tensor, TensorError> {
    matmul3_tn(a, g)
}

/// Concatenates tensors along axis 0; all trailing dims must match.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastMismatch`] on trailing-shape mismatch or
/// an empty input list (reported against empty shapes).
pub fn concat_rows(parts: &[&Tensor]) -> Result<Tensor, TensorError> {
    let first = parts.first().ok_or(TensorError::BroadcastMismatch {
        lhs: vec![],
        rhs: vec![],
    })?;
    let tail = &first.shape()[1..];
    let mut rows = 0;
    for p in parts {
        if p.ndim() == 0 || &p.shape()[1..] != tail {
            return Err(TensorError::BroadcastMismatch {
                lhs: first.shape().to_vec(),
                rhs: p.shape().to_vec(),
            });
        }
        rows += p.shape()[0];
    }
    let mut data = Vec::with_capacity(rows * tail.iter().product::<usize>());
    for p in parts {
        data.extend_from_slice(p.data());
    }
    let mut shape = vec![rows];
    shape.extend_from_slice(tail);
    Tensor::from_vec(data, &shape)
}

/// Zero-pads the two trailing spatial axes of a `[N,C,H,W]` tensor by
/// `pad` on every side.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-4-D inputs.
pub fn pad2d(t: &Tensor, pad: usize) -> Result<Tensor, TensorError> {
    if t.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: "4-D [N,C,H,W] tensor",
            got: t.shape().to_vec(),
        });
    }
    let (n, c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
    let (oh, ow) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let data = t.data();
    let pad_plane = |p: usize, window: &mut [f32]| {
        for y in 0..h {
            let src = (p * h + y) * w;
            let dst = (y + pad) * ow + pad;
            window[dst..dst + w].copy_from_slice(&data[src..src + w]);
        }
    };
    if n * c >= 2 && out.len() >= PAR_ELEMS && rex_pool::current_num_threads() > 1 {
        rex_pool::parallel_for_slices(out.data_mut(), oh * ow, |p, _, window| pad_plane(p, window));
    } else {
        for (p, window) in out.data_mut().chunks_mut(oh * ow).enumerate() {
            pad_plane(p, window);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use crate::Prng;

    #[test]
    fn transpose_last2_is_involution() {
        let mut rng = Prng::new(1);
        let t = rng.normal_tensor(&[2, 3, 4], 0.0, 1.0);
        let tt = transpose_last2(&transpose_last2(&t).unwrap()).unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn permute_0213_is_involution() {
        let mut rng = Prng::new(2);
        let t = rng.normal_tensor(&[2, 3, 4, 5], 0.0, 1.0);
        let tt = permute_0213(&permute_0213(&t).unwrap()).unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn batch_matmul_matches_per_slice() {
        let mut rng = Prng::new(3);
        let a = rng.normal_tensor(&[2, 3, 4], 0.0, 1.0);
        let b = rng.normal_tensor(&[2, 4, 2], 0.0, 1.0);
        let c = batch_matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 3, 2]);
        for s in 0..2 {
            let expect = batch_slice(&a, s, 3, 4)
                .matmul(&batch_slice(&b, s, 4, 2))
                .unwrap();
            assert_eq!(batch_slice(&c, s, 3, 2), expect);
        }
    }

    #[test]
    fn batch_transpose_variants_consistent() {
        let mut rng = Prng::new(4);
        let a = rng.normal_tensor(&[2, 3, 4], 0.0, 1.0);
        let b = rng.normal_tensor(&[2, 3, 5], 0.0, 1.0);
        // aᵀ b via batch_matmul_tn must equal transpose+batch_matmul
        let direct = batch_matmul_tn(&a, &b).unwrap();
        let at = transpose_last2(&a).unwrap();
        let explicit = batch_matmul(&at, &b).unwrap();
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let c = concat_rows(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // trailing mismatch rejected
        let bad = Tensor::zeros(&[1, 3]);
        assert!(concat_rows(&[&a, &bad]).is_err());
        assert!(concat_rows(&[]).is_err());
    }

    #[test]
    fn pad2d_places_input_in_center() {
        let t = Tensor::ones(&[1, 1, 2, 2]);
        let p = pad2d(&t, 1).unwrap();
        assert_eq!(p.shape(), &[1, 1, 4, 4]);
        assert_eq!(p.sum(), 4.0);
        assert_eq!(p.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(p.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(p.at(&[0, 0, 2, 2]), 1.0);
    }
}
