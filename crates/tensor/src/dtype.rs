//! Element dtypes and software precision-conversion kernels.
//!
//! The stack computes in f32 everywhere; this module defines the *storage*
//! formats a tensor's values may be held in between computations:
//!
//! * [`DType::F32`] — the native format; storage is lossless.
//! * [`DType::F16`] — IEEE 754 binary16, converted with round-to-nearest-even
//!   including gradual underflow (subnormals), signed zeros, ±inf and NaN.
//! * [`DType::Bf16`] — bfloat16 (truncated-exponent f32), round-to-nearest-even.
//! * [`DType::Q80`] — "Q8_0" block quantization: groups of [`QK`] values share
//!   one f16 scale and store one signed byte each, the layout used by
//!   GGUF-family inference formats.
//!
//! Every conversion here is a pure elementwise (or pure per-block) function of
//! its input bits, so any backend — scalar fold, portable SIMD body, or a
//! `#[target_feature]` recompilation of the portable body — produces bitwise
//! identical results at any thread count. That property is what lets the
//! mixed-precision training path keep the repo's determinism contract.
//!
//! The half-precision conversions are software implementations (no `f16`
//! language type, no intrinsics) so they behave identically on every host.

/// Number of elements per Q8_0 quantization block.
pub const QK: usize = 32;

/// A tensor element storage format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float — the native compute format.
    F32,
    /// 16-bit IEEE binary16 with gradual underflow.
    F16,
    /// bfloat16: f32 with the low 16 mantissa bits rounded away.
    Bf16,
    /// Q8_0 block quantization: [`QK`]-element blocks, one f16 scale plus
    /// one `i8` quant per element. Storage/export only — not a training
    /// dtype.
    Q80,
}

impl DType {
    /// Canonical lower-case name (`"f32"`, `"f16"`, `"bf16"`, `"q8_0"`).
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::Bf16 => "bf16",
            DType::Q80 => "q8_0",
        }
    }

    /// Parses a dtype name (case-insensitive). Accepts `q8_0`/`q80`.
    pub fn parse(s: &str) -> Option<DType> {
        Some(match s.to_ascii_lowercase().as_str() {
            "f32" => DType::F32,
            "f16" => DType::F16,
            "bf16" => DType::Bf16,
            "q8_0" | "q80" => DType::Q80,
            _ => None?,
        })
    }

    /// Whether parameters may be *stored* in this dtype during training.
    /// Q8_0 is export-only: its per-block scales make in-place rounding of a
    /// live parameter tensor ill-defined.
    pub fn trainable(self) -> bool {
        !matches!(self, DType::Q80)
    }

    /// Exact serialized payload size, in bytes, of `n` elements.
    pub fn nbytes(self, n: usize) -> usize {
        match self {
            DType::F32 => n * 4,
            DType::F16 | DType::Bf16 => n * 2,
            // per block: one u16 scale; per element: one i8 quant
            DType::Q80 => n.div_ceil(QK) * 2 + n,
        }
    }

    /// Rounds one value through this storage format and back to f32.
    /// Identity for `F32`. Panics for `Q80` (block formats cannot round a
    /// single element; see [`quantize_q8_0`]).
    pub fn round_val(self, x: f32) -> f32 {
        match self {
            DType::F32 => x,
            DType::F16 => f16_bits_to_f32(f32_to_f16_bits(x)),
            DType::Bf16 => bf16_bits_to_f32(f32_to_bf16_bits(x)),
            DType::Q80 => panic!("q8_0 is a block format; round_val is undefined"),
        }
    }

    /// Rounds every element of `xs` in place through this storage format.
    /// No-op for `F32`; panics for `Q80` (see [`round_val`](Self::round_val)).
    pub fn round_slice(self, xs: &mut [f32]) {
        match self {
            DType::F32 => {}
            DType::F16 => {
                for x in xs {
                    *x = f16_bits_to_f32(f32_to_f16_bits(*x));
                }
            }
            DType::Bf16 => {
                for x in xs {
                    *x = bf16_bits_to_f32(f32_to_bf16_bits(*x));
                }
            }
            DType::Q80 => panic!("q8_0 is a block format; round_slice is undefined"),
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Converts an f32 to IEEE binary16 bits with round-to-nearest-even.
///
/// Handles every edge of the format explicitly: values whose magnitude
/// rounds to ≥ 2^16 become ±inf, magnitudes below 2^-25 (or exactly 2^-25,
/// which ties to even) become signed zero, the range [2^-25, 2^-14) lands on
/// the subnormal grid with a correct tie-to-even at every halfway point, and
/// NaNs map to the canonical quiet NaN preserving sign.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 255 {
        // inf stays inf; any NaN payload collapses to the canonical quiet NaN
        return if man == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00
        };
    }
    let e = exp - 127 + 15; // rebiased f16 exponent
    if e >= 31 {
        return sign | 0x7c00; // overflow to inf
    }
    if e <= 0 {
        // subnormal range (or underflow to zero)
        if e < -10 {
            // magnitude < 2^-25, or == 2^-25 tying to even zero
            return sign;
        }
        // implicit leading 1, then shift the 24-bit significand onto the
        // 2^-24 subnormal grid with round-to-nearest-even on the dropped bits
        let m = man | 0x0080_0000;
        let shift = (14 - e) as u32; // 14..=24
        let h = (m >> shift) as u16;
        let rem = m & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        // a carry out of the subnormal mantissa lands on exponent 1 with
        // mantissa 0, which is exactly the smallest normal — no special case
        return if rem > half || (rem == half && (h & 1) == 1) {
            sign | (h + 1)
        } else {
            sign | h
        };
    }
    // normal range: keep the top 10 mantissa bits, RNE on the dropped 13
    let h = (((e as u32) << 10) as u16) | ((man >> 13) as u16);
    let rem = man & 0x1fff;
    // a carry here can overflow the mantissa into the exponent (correct:
    // rounds up to the next binade) and from 0x7bff into 0x7c00 = inf
    // (correct: magnitudes ≥ 65520 round to inf)
    if rem > 0x1000 || (rem == 0x1000 && (h & 1) == 1) {
        sign | (h + 1)
    } else {
        sign | h
    }
}

/// Widens IEEE binary16 bits to f32. Exact: every f16 value (including
/// subnormals) is representable in f32. NaN payloads are preserved.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = (h & 0x03ff) as u32;
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign); // signed zero
        }
        // subnormal: man × 2^-24, computed exactly in f32
        let v = (man as f32) * (1.0 / 16_777_216.0);
        return if sign != 0 { -v } else { v };
    }
    if exp == 31 {
        return f32::from_bits(sign | 0x7f80_0000 | (man << 13));
    }
    f32::from_bits(sign | ((exp as u32 + 112) << 23) | (man << 13))
}

/// Converts an f32 to bfloat16 bits with round-to-nearest-even.
///
/// bf16 shares f32's exponent, so this is a pure mantissa rounding: add the
/// tie-breaking bias and truncate. Overflow to ±inf falls out of the carry.
/// NaNs map to the canonical quiet NaN preserving sign (the bias trick could
/// otherwise round a NaN's mantissa to zero, turning it into inf).
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return (((bits >> 16) & 0x8000) | 0x7fc0) as u16;
    }
    let round = 0x7fff + ((bits >> 16) & 1);
    ((bits + round) >> 16) as u16
}

/// Widens bfloat16 bits to f32 (exact: bf16 is a prefix of f32).
pub fn bf16_bits_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Smallest positive f16 (the subnormal 2^-24), as bits.
const F16_SMALLEST_SUB: u16 = 0x0001;

/// The next representable f16 above a non-negative finite f16. On bits this
/// is a plain increment: it walks the subnormal grid, crosses into the
/// normals, and widens binades, in value order.
fn next_f16_up(bits: u16) -> u16 {
    debug_assert!(bits & 0x8000 == 0 && bits < 0x7c00);
    bits + 1
}

/// Quantizes `src` into Q8_0 blocks: for each run of [`QK`] values (the
/// final block may be shorter), one f16 scale and one `i8` per element.
///
/// `scales` must hold `src.len().div_ceil(QK)` elements and `quants` must
/// hold `src.len()`.
///
/// The scale is chosen so that *no* quant saturates: starting from
/// `amax / 127` rounded to f16, it is bumped to the next representable f16
/// until `round(amax / scale) ≤ 127`. That guarantees the reconstruction
/// error bound `|x − q·s| ≤ s/2` for every element — a clamped quant would
/// break it, and the bump is needed because an f16-rounded scale can land
/// below the exact `amax / 127` (by up to 33 % when the scale is subnormal).
///
/// # Panics
///
/// If `scales` or `quants` has the wrong length.
pub fn quantize_q8_0(src: &[f32], scales: &mut [u16], quants: &mut [i8]) {
    assert_eq!(scales.len(), src.len().div_ceil(QK), "scale count");
    assert_eq!(quants.len(), src.len(), "quant count");
    for (bi, block) in src.chunks(QK).enumerate() {
        let mut amax = 0.0f32;
        for &x in block {
            amax = amax.max(x.abs());
        }
        if amax == 0.0 {
            scales[bi] = 0;
            for q in &mut quants[bi * QK..bi * QK + block.len()] {
                *q = 0;
            }
            continue;
        }
        let mut sbits = f32_to_f16_bits(amax / 127.0);
        if sbits == 0 {
            sbits = F16_SMALLEST_SUB;
        }
        while (amax / f16_bits_to_f32(sbits)).round() > 127.0 {
            sbits = next_f16_up(sbits);
        }
        let s = f16_bits_to_f32(sbits);
        scales[bi] = sbits;
        let inv = 1.0 / s;
        for (q, &x) in quants[bi * QK..].iter_mut().zip(block) {
            // round half away from zero; the scale bump above guarantees
            // the result is already within ±127, but clamp defensively
            *q = (x * inv).round().clamp(-127.0, 127.0) as i8;
        }
    }
}

/// Dequantizes Q8_0 blocks back to f32: `out[i] = quants[i] × scale(block)`.
/// Exact f32 arithmetic — the product of an i8 and an f16 value never needs
/// more than 19 significand bits and never underflows f32.
///
/// # Panics
///
/// If `scales` or `out`/`quants` lengths disagree.
pub fn dequantize_q8_0(scales: &[u16], quants: &[i8], out: &mut [f32]) {
    assert_eq!(out.len(), quants.len(), "element count");
    assert_eq!(scales.len(), out.len().div_ceil(QK), "scale count");
    for (bi, chunk) in out.chunks_mut(QK).enumerate() {
        let s = f16_bits_to_f32(scales[bi]);
        for (o, &q) in chunk.iter_mut().zip(&quants[bi * QK..]) {
            *o = q as f32 * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_basic_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16 max
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(f32::NAN) & 0x7c00, 0x7c00);
        assert_ne!(f32_to_f16_bits(f32::NAN) & 0x03ff, 0);
    }

    #[test]
    fn f16_overflow_and_ties() {
        // 65520 is the midpoint between f16 max (65504) and the next
        // binade: ties to even = inf
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00);
        assert_eq!(f32_to_f16_bits(65519.9), 0x7bff);
        // 2^-25 ties to even zero; anything above rounds to the smallest
        // subnormal
        assert_eq!(f32_to_f16_bits(f32::from_bits(0x3300_0000)), 0x0000);
        assert_eq!(f32_to_f16_bits(f32::from_bits(0x3300_0001)), 0x0001);
        // 1.5 × 2^-25 ties to even 2^-24
        assert_eq!(f32_to_f16_bits(1.5 * f32::from_bits(0x3300_0000)), 0x0001);
    }

    #[test]
    fn f16_round_trip_all_bit_patterns() {
        // every finite f16 must survive widen → narrow exactly
        for h in 0u16..=0xffff {
            let exp = (h >> 10) & 0x1f;
            if exp == 31 {
                continue; // inf/NaN handled elsewhere
            }
            let back = f32_to_f16_bits(f16_bits_to_f32(h));
            assert_eq!(back, h, "f16 bits {h:#06x} did not round-trip");
        }
    }

    #[test]
    fn bf16_basic_and_ties() {
        assert_eq!(f32_to_bf16_bits(1.0), 0x3f80);
        assert_eq!(bf16_bits_to_f32(0x3f80), 1.0);
        assert_eq!(f32_to_bf16_bits(f32::INFINITY), 0x7f80);
        // tie: mantissa 0x8000 below an even target truncates
        assert_eq!(f32_to_bf16_bits(f32::from_bits(0x3f80_8000)), 0x3f80);
        // tie above an odd target rounds up
        assert_eq!(f32_to_bf16_bits(f32::from_bits(0x3f81_8000)), 0x3f82);
        // NaN survives (the carry trick alone would produce inf here)
        let n = f32_to_bf16_bits(f32::from_bits(0x7f80_0001));
        assert!(bf16_bits_to_f32(n).is_nan());
    }

    #[test]
    fn q8_0_zero_block_and_sizes() {
        let src = [0.0f32; 40];
        let mut scales = vec![0u16; 2];
        let mut quants = vec![0i8; 40];
        quantize_q8_0(&src, &mut scales, &mut quants);
        assert_eq!(scales, vec![0, 0]);
        assert!(quants.iter().all(|&q| q == 0));
        assert_eq!(DType::Q80.nbytes(40), 2 * 2 + 40);
        assert_eq!(DType::F16.nbytes(40), 80);
        assert_eq!(DType::F32.nbytes(40), 160);
    }

    #[test]
    fn q8_0_error_bound_including_tiny_scales() {
        // the subnormal-scale regime is exactly where a naive f16 scale
        // would saturate quants and break the bound
        let mut rng = crate::Prng::new(0xD7E0);
        for &mag in &[1.0f32, 1e-3, 3e-6, 1e-7, 6e-8, 1e4] {
            let src: Vec<f32> = (0..QK * 3 + 7)
                .map(|_| rng.uniform_in(-1.0, 1.0) * mag)
                .collect();
            let mut scales = vec![0u16; src.len().div_ceil(QK)];
            let mut quants = vec![0i8; src.len()];
            quantize_q8_0(&src, &mut scales, &mut quants);
            let mut out = vec![0.0f32; src.len()];
            dequantize_q8_0(&scales, &quants, &mut out);
            for (bi, block) in src.chunks(QK).enumerate() {
                let s = f16_bits_to_f32(scales[bi]);
                for (i, &x) in block.iter().enumerate() {
                    let err = (x - out[bi * QK + i]).abs();
                    assert!(
                        err <= s / 2.0 + f32::EPSILON * x.abs(),
                        "mag {mag}: block {bi} elem {i}: |{x} - {}| = {err} > s/2 = {}",
                        out[bi * QK + i],
                        s / 2.0
                    );
                }
            }
        }
    }

    #[test]
    fn dtype_parse_and_round() {
        assert_eq!(DType::parse("F16"), Some(DType::F16));
        assert_eq!(DType::parse("q8_0"), Some(DType::Q80));
        assert_eq!(DType::parse("q80"), Some(DType::Q80));
        assert_eq!(DType::parse("f64"), None);
        assert!(DType::F32.trainable());
        assert!(!DType::Q80.trainable());
        assert_eq!(DType::F32.round_val(0.1), 0.1);
        let r = DType::F16.round_val(0.1);
        assert!(r != 0.1 && (r - 0.1).abs() < 1e-4);
        let mut xs = [1.0f32, 2.5e-5, -3.0];
        DType::Bf16.round_slice(&mut xs);
        assert_eq!(xs[0], 1.0);
        assert_eq!(xs[2], -3.0);
    }
}
