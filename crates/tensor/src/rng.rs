//! Deterministic pseudo-random number generation.
//!
//! The whole workspace routes randomness through [`Prng`], a
//! xoshiro256\*\* generator seeded via SplitMix64. Keeping the generator
//! in-tree (rather than depending on an external RNG crate) guarantees that
//! every experiment reported in `EXPERIMENTS.md` reproduces bit-for-bit from
//! its seed, independent of upstream RNG-stream changes.

use crate::Tensor;

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// Not cryptographically secure — used exclusively for data synthesis,
/// weight initialisation, shuffling, and dropout masks.
///
/// ```
/// use rex_tensor::Prng;
///
/// let mut a = Prng::new(42);
/// let mut b = Prng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Prng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The raw xoshiro256** state, for checkpointing. Restoring it with
    /// [`Prng::from_state`] resumes the stream at exactly this point.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds a generator from a captured [`Prng::state`]; the resumed
    /// stream is bit-identical to the original's continuation.
    pub fn from_state(state: [u64; 4]) -> Self {
        Prng { state }
    }

    /// Returns the next raw 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; useful for giving each
    /// trial/dataset its own stream while remaining reproducible.
    pub fn fork(&mut self) -> Prng {
        Prng::new(self.next_u64())
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 high-quality mantissa bits.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_in: lo {lo} > hi {hi}");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: empty range");
        // Multiplication-based bounded sampling (Lemire); slight modulo bias
        // is irrelevant for our n << 2^64.
        (self.next_u64() % n as u64) as usize
    }

    /// Standard-normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.uniform();
            if u1 <= f32::EPSILON {
                continue;
            }
            let u2 = self.uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Bernoulli sample: `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// Tensor filled with uniform samples in `[lo, hi)`.
    pub fn uniform_tensor(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.uniform_in(lo, hi)).collect();
        Tensor::from_vec(data, shape).expect("shape product matches generated length")
    }

    /// Tensor filled with normal samples.
    pub fn normal_tensor(&mut self, shape: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.normal_with(mean, std)).collect();
        Tensor::from_vec(data, shape).expect("shape product matches generated length")
    }

    /// Kaiming/He-normal initialisation for a weight tensor whose fan-in is
    /// `fan_in` (ReLU gain √2). Standard choice for conv/linear layers
    /// feeding ReLU activations.
    pub fn kaiming_tensor(&mut self, shape: &[usize], fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        self.normal_tensor(shape, 0.0, std)
    }

    /// Xavier/Glorot-uniform initialisation with the given fan-in/fan-out;
    /// standard for tanh/sigmoid/attention layers.
    pub fn xavier_tensor(&mut self, shape: &[usize], fan_in: usize, fan_out: usize) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
        self.uniform_tensor(shape, -bound, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Prng::new(3);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x), "sample {x} outside [0,1)");
        }
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = Prng::new(11);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn below_covers_range() {
        let mut rng = Prng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permutation_is_permutation() {
        let mut rng = Prng::new(9);
        let mut p = rng.permutation(100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_reproducible_streams() {
        let mut parent1 = Prng::new(21);
        let mut parent2 = Prng::new(21);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), parent1.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut a = Prng::new(99);
        let _ = a.next_u64(); // advance off the seed point
        let snapshot = a.state();
        let mut b = Prng::from_state(snapshot);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // capturing the state does not perturb the stream
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn kaiming_std_matches_fan_in() {
        let mut rng = Prng::new(13);
        let t = rng.kaiming_tensor(&[256, 128], 128);
        let mean = t.data().iter().sum::<f32>() / t.len() as f32;
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        let expected = 2.0 / 128.0;
        assert!((var - expected).abs() < expected * 0.2);
    }
}
