//! 2-D convolution and pooling kernels (im2col + blocked GEMM).
//!
//! The convolution is lowered onto the register-tiled GEMM in
//! [`crate::kernels`] via the patch-matrix transform in [`crate::im2col`]:
//! the forward pass is one `[O, C·K·K] × [C·K·K, OH·OW]` product per
//! sample, and the backward pass is a pair of fused-transpose products
//! plus a `col2im` scatter. All workspaces (the patch matrix, the
//! per-sample gradient columns) are drawn from the [`crate::scratch`]
//! pool, so steady-state training allocates nothing per step.
//!
//! Forward functions return whatever intermediate state the corresponding
//! backward function needs (im2col buffers, argmax indices), so the autograd
//! layer can stash it in the tape without recomputation. Dropping the
//! saved state recycles its buffers back into the pool.

use crate::im2col::{col2im_sample, im2col_sample, take_cols};
use crate::kernels;
use crate::scratch::PooledBuf;
use crate::{Tensor, TensorError};

/// Geometry of a conv/pool window: kernel size, stride, and zero padding
/// (symmetric, applied to both spatial axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Kernel height and width (square kernels only, as in all our models).
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding on each side of both spatial axes.
    pub padding: usize,
}

impl Window {
    /// A stride-1 window with "same"-ish padding `kernel/2`.
    pub fn same(kernel: usize) -> Self {
        Window {
            kernel,
            stride: 1,
            padding: kernel / 2,
        }
    }

    /// Output spatial size for an input of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the window does not fit
    /// or the stride is zero.
    pub fn out_size(&self, n: usize) -> Result<usize, TensorError> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "stride must be positive".into(),
            });
        }
        let padded = n + 2 * self.padding;
        if padded < self.kernel {
            return Err(TensorError::InvalidGeometry {
                reason: format!(
                    "kernel {} larger than padded input {} (input {}, padding {})",
                    self.kernel, padded, n, self.padding
                ),
            });
        }
        Ok((padded - self.kernel) / self.stride + 1)
    }
}

/// Saved forward state consumed by [`conv2d_backward`].
///
/// Holds the pooled im2col workspace; dropping it returns the buffer to
/// the thread-local scratch pool for the next step.
#[derive(Debug, Clone)]
pub struct Conv2dSaved {
    /// im2col buffer, `[N, C*K*K, OH*OW]` flattened (pooled).
    cols: PooledBuf,
    /// Input shape `[N, C, H, W]`.
    in_shape: [usize; 4],
    /// Output spatial dims `(OH, OW)`.
    out_hw: (usize, usize),
    win: Window,
}

/// 2-D convolution forward pass.
///
/// * `input` — `[N, C, H, W]`
/// * `weight` — `[O, C, K, K]`
/// * `bias` — optional `[O]`
///
/// Returns the output `[N, O, OH, OW]` and the saved state for backward.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::InvalidGeometry`]
/// on malformed inputs.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    win: Window,
) -> Result<(Tensor, Conv2dSaved), TensorError> {
    let _sp = rex_telemetry::span::kernel_span("conv2d_fwd");
    let [n, c, h, w] = dims4(input, "conv2d input [N,C,H,W]")?;
    let [o, wc, kh, kw] = dims4(weight, "conv2d weight [O,C,K,K]")?;
    if wc != c || kh != win.kernel || kw != win.kernel {
        return Err(TensorError::InvalidGeometry {
            reason: format!(
                "weight shape {:?} inconsistent with input channels {c} / kernel {}",
                weight.shape(),
                win.kernel
            ),
        });
    }
    let oh = win.out_size(h)?;
    let ow = win.out_size(w)?;
    let ckk = c * win.kernel * win.kernel;
    let ohw = oh * ow;

    if let Some(b) = bias {
        if b.shape() != [o] {
            return Err(TensorError::InvalidGeometry {
                reason: format!("bias shape {:?}, expected [{o}]", b.shape()),
            });
        }
    }

    // Samples are independent, so both phases shard the batch axis onto
    // the thread pool (one sample per chunk — the grid depends only on n,
    // and each sample's float work is untouched, so results are bitwise
    // identical to the serial loop at any thread count).
    let par = n >= 2 && n * o * ckk * ohw >= kernels::PAR_FLOPS && kernels::num_threads() > 1;

    let mut cols = take_cols(n * ckk * ohw);
    let im2col_into = |s: usize, cols_s: &mut [f32]| {
        im2col_sample(
            &input.data()[s * c * h * w..(s + 1) * c * h * w],
            c,
            h,
            w,
            win,
            oh,
            ow,
            cols_s,
        );
    };
    if par {
        rex_pool::parallel_for_slices(&mut cols, ckk * ohw, |s, _, cols_s| im2col_into(s, cols_s));
    } else {
        for (s, cols_s) in cols.chunks_mut(ckk * ohw).enumerate() {
            im2col_into(s, cols_s);
        }
    }

    // weight viewed as [O, CKK] (already contiguous); per-sample
    // out = weight × cols -> [O, OHW], sharded over the samples
    let mut out = vec![0.0f32; n * o * ohw];
    let wmat = weight.data();
    let compute_out = |s: usize, out_s: &mut [f32]| {
        kernels::gemm(
            o,
            ckk,
            ohw,
            wmat,
            &cols[s * ckk * ohw..(s + 1) * ckk * ohw],
            out_s,
        );
        if let Some(b) = bias {
            for oc in 0..o {
                let bv = b.data()[oc];
                for v in &mut out_s[oc * ohw..(oc + 1) * ohw] {
                    *v += bv;
                }
            }
        }
    };
    if par {
        rex_pool::parallel_for_slices(&mut out, o * ohw, |s, _, out_s| compute_out(s, out_s));
    } else {
        for (s, out_s) in out.chunks_mut(o * ohw).enumerate() {
            compute_out(s, out_s);
        }
    }

    let output = Tensor::from_vec(out, &[n, o, oh, ow])?;
    Ok((
        output,
        Conv2dSaved {
            cols,
            in_shape: [n, c, h, w],
            out_hw: (oh, ow),
            win,
        },
    ))
}

/// Gradients of a 2-D convolution.
///
/// Returns `(d_input, d_weight, d_bias)`; `d_bias` is always produced (sum
/// of `d_out` over batch and space) and is simply ignored by bias-free
/// layers.
///
/// # Errors
///
/// Returns a [`TensorError`] if `d_out`/`weight` shapes disagree with the
/// saved forward state.
pub fn conv2d_backward(
    d_out: &Tensor,
    weight: &Tensor,
    saved: &Conv2dSaved,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    conv2d_backward_impl(d_out, weight, saved, true)
}

/// As [`conv2d_backward`] but skips the bias gradient (returned as an
/// empty `[O]` zero tensor) — the fast path for bias-free layers.
///
/// # Errors
///
/// As [`conv2d_backward`].
pub fn conv2d_backward_no_bias(
    d_out: &Tensor,
    weight: &Tensor,
    saved: &Conv2dSaved,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    conv2d_backward_impl(d_out, weight, saved, false)
}

fn conv2d_backward_impl(
    d_out: &Tensor,
    weight: &Tensor,
    saved: &Conv2dSaved,
    want_bias: bool,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    let _sp = rex_telemetry::span::kernel_span("conv2d_bwd");
    let [n, c, h, w] = saved.in_shape;
    let (oh, ow) = saved.out_hw;
    let ohw = oh * ow;
    let [o, _, _, _] = dims4(weight, "conv2d weight [O,C,K,K]")?;
    let ckk = c * saved.win.kernel * saved.win.kernel;
    if d_out.shape() != [n, o, oh, ow] {
        return Err(TensorError::RankMismatch {
            expected: "d_out [N,O,OH,OW] matching forward",
            got: d_out.shape().to_vec(),
        });
    }

    let wmat = weight.data();
    let mut d_weight = Tensor::zeros(&[o, ckk]);
    let mut d_input = Tensor::zeros(&[n, c, h, w]);
    let mut d_bias = Tensor::zeros(&[o]);

    // Phase 1 — d_input: each sample's dCols = Wᵀ × dOut and col2im
    // scatter touch only that sample's slice, so the batch axis shards
    // onto the pool (one sample per chunk, bitwise identical to serial;
    // each task draws its own gradient-columns workspace from the
    // thread-local scratch pool).
    let par = n >= 2 && n * o * ckk * ohw >= kernels::PAR_FLOPS && kernels::num_threads() > 1;
    let dinput_sample = |s: usize, d_in_s: &mut [f32]| {
        let dmat = &d_out.data()[s * o * ohw..(s + 1) * o * ohw];
        let mut dcols = take_cols(ckk * ohw);
        kernels::gemm_tn(ckk, o, ohw, wmat, dmat, &mut dcols);
        col2im_sample(&dcols, c, h, w, saved.win, oh, ow, d_in_s);
    };
    if par {
        rex_pool::parallel_for_slices(d_input.data_mut(), c * h * w, |s, _, d_in_s| {
            dinput_sample(s, d_in_s)
        });
    } else {
        for (s, d_in_s) in d_input.data_mut().chunks_mut(c * h * w).enumerate() {
            dinput_sample(s, d_in_s);
        }
    }

    // Phase 2 — d_weight / d_bias accumulate across samples into shared
    // buffers. Each sample's dW term is computed into a scratch buffer and
    // folded in with Kahan compensation: the batch-axis sum is the longest
    // accumulation chain in the conv backward, and compensating it is what
    // holds the conv2d_bwd parity error (vs the f64 oracle) under the
    // pinned 1e-4 bound. The sample loop stays serial — a fixed fold order
    // plus per-sample GEMMs that are partition-invariant keeps the result
    // bitwise identical at any thread count (within a backend).
    let be = crate::backend::active();
    let mut dw_term = PooledBuf::zeroed(o * ckk);
    let mut dw_comp = PooledBuf::zeroed(o * ckk);
    let mut db_comp = PooledBuf::zeroed(if want_bias { o } else { 0 });
    for s in 0..n {
        let dmat = &d_out.data()[s * o * ohw..(s + 1) * o * ohw];
        let colmat = &saved.cols[s * ckk * ohw..(s + 1) * ckk * ohw];
        // dW_s = dOut_s × cols_sᵀ, then d_weight += dW_s (compensated)
        dw_term.fill(0.0);
        kernels::gemm_nt(o, ohw, ckk, dmat, colmat, &mut dw_term);
        let dw = d_weight.data_mut();
        for (i, &term) in dw_term.iter().enumerate() {
            let y = term - dw_comp[i];
            let t = dw[i] + y;
            dw_comp[i] = (t - dw[i]) - y;
            dw[i] = t;
        }
        // dB += sum over space (skipped for bias-free layers), same
        // compensated fold across the batch axis
        if want_bias {
            let db = d_bias.data_mut();
            for oc in 0..o {
                let sum = be.sum(&dmat[oc * ohw..(oc + 1) * ohw]);
                let y = sum - db_comp[oc];
                let t = db[oc] + y;
                db_comp[oc] = (t - db[oc]) - y;
                db[oc] = t;
            }
        }
    }

    Ok((
        d_input,
        d_weight.reshape(&[o, c, saved.win.kernel, saved.win.kernel])?,
        d_bias,
    ))
}

/// Max-pooling forward. Returns the pooled output `[N, C, OH, OW]` and the
/// flat input index of each window's maximum (for the backward scatter).
///
/// # Errors
///
/// Returns a [`TensorError`] for malformed input shape or geometry.
pub fn maxpool2d_forward(input: &Tensor, win: Window) -> Result<(Tensor, Vec<u32>), TensorError> {
    let [n, c, h, w] = dims4(input, "maxpool input [N,C,H,W]")?;
    let oh = win.out_size(h)?;
    let ow = win.out_size(w)?;
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    let mut arg = vec![0u32; n * c * oh * ow];
    let data = input.data();
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let oidx = ((s * c + ch) * oh + oy) * ow + ox;
                    let mut best = f32::NEG_INFINITY;
                    let mut besti = 0usize;
                    for ky in 0..win.kernel {
                        let iy = (oy * win.stride + ky) as isize - win.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..win.kernel {
                            let ix = (ox * win.stride + kx) as isize - win.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = plane + iy as usize * w + ix as usize;
                            if data[idx] > best {
                                best = data[idx];
                                besti = idx;
                            }
                        }
                    }
                    out[oidx] = best;
                    arg[oidx] = besti as u32;
                }
            }
        }
    }
    Ok((Tensor::from_vec(out, &[n, c, oh, ow])?, arg))
}

/// Max-pooling backward: scatters `d_out` to the argmax positions.
///
/// # Errors
///
/// Returns a [`TensorError`] if `d_out` length disagrees with `argmax`.
pub fn maxpool2d_backward(
    d_out: &Tensor,
    argmax: &[u32],
    in_shape: &[usize],
) -> Result<Tensor, TensorError> {
    if d_out.len() != argmax.len() {
        return Err(TensorError::ShapeDataMismatch {
            shape: d_out.shape().to_vec(),
            data_len: argmax.len(),
        });
    }
    let mut d_in = Tensor::zeros(in_shape);
    for (g, &i) in d_out.data().iter().zip(argmax) {
        d_in.data_mut()[i as usize] += g;
    }
    Ok(d_in)
}

/// Average-pooling forward over the full spatial extent ("global average
/// pool"), producing `[N, C]`.
///
/// # Errors
///
/// Returns a [`TensorError`] for non-4-D input.
pub fn global_avgpool_forward(input: &Tensor) -> Result<Tensor, TensorError> {
    let [n, c, h, w] = dims4(input, "avgpool input [N,C,H,W]")?;
    let hw = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            out[s * c + ch] = input.data()[plane..plane + h * w].iter().sum::<f32>() / hw;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward of [`global_avgpool_forward`]: spreads each gradient uniformly
/// over its spatial plane.
///
/// # Errors
///
/// Returns a [`TensorError`] if `d_out` is not `[N, C]` matching `in_shape`.
pub fn global_avgpool_backward(d_out: &Tensor, in_shape: &[usize]) -> Result<Tensor, TensorError> {
    if in_shape.len() != 4 || d_out.shape() != [in_shape[0], in_shape[1]] {
        return Err(TensorError::RankMismatch {
            expected: "d_out [N,C] matching input [N,C,H,W]",
            got: d_out.shape().to_vec(),
        });
    }
    let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
    let inv = 1.0 / (h * w) as f32;
    let mut d_in = Tensor::zeros(in_shape);
    for s in 0..n {
        for ch in 0..c {
            let g = d_out.data()[s * c + ch] * inv;
            let plane = (s * c + ch) * h * w;
            for v in &mut d_in.data_mut()[plane..plane + h * w] {
                *v = g;
            }
        }
    }
    Ok(d_in)
}

fn dims4(t: &Tensor, expected: &'static str) -> Result<[usize; 4], TensorError> {
    if t.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected,
            got: t.shape().to_vec(),
        });
    }
    Ok([t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prng;

    #[test]
    fn window_out_size() {
        let w = Window {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!(w.out_size(8).unwrap(), 8);
        let w2 = Window {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(w2.out_size(8).unwrap(), 4);
        let bad = Window {
            kernel: 9,
            stride: 1,
            padding: 0,
        };
        assert!(bad.out_size(4).is_err());
    }

    #[test]
    fn conv_identity_kernel_preserves_input() {
        // 1x1 kernel with weight 1 is the identity.
        let input = Tensor::arange(0.0, 1.0, 2 * 3 * 4 * 4)
            .reshape(&[2, 3, 4, 4])
            .unwrap();
        let mut weight = Tensor::zeros(&[3, 3, 1, 1]);
        for i in 0..3 {
            weight.set(&[i, i, 0, 0], 1.0);
        }
        let win = Window {
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let (out, _) = conv2d_forward(&input, &weight, None, win).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn conv_known_values_3x3() {
        // Single channel, 3x3 input, 3x3 kernel of ones, no padding:
        // output = sum of all inputs.
        let input = Tensor::arange(1.0, 1.0, 9).reshape(&[1, 1, 3, 3]).unwrap();
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let win = Window {
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        let (out, _) = conv2d_forward(&input, &weight, None, win).unwrap();
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.item(), 45.0);
    }

    #[test]
    fn conv_bias_broadcasts_over_space() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        let weight = Tensor::zeros(&[2, 1, 1, 1]);
        let bias = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let win = Window {
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let (out, _) = conv2d_forward(&input, &weight, Some(&bias), win).unwrap();
        assert_eq!(out.data(), &[1.5, 1.5, 1.5, 1.5, -2.0, -2.0, -2.0, -2.0]);
    }

    /// Numeric gradient check of the conv backward pass.
    #[test]
    fn conv_backward_matches_numeric_gradient() {
        let mut rng = Prng::new(42);
        let input = rng.normal_tensor(&[2, 2, 5, 5], 0.0, 1.0);
        let weight = rng.normal_tensor(&[3, 2, 3, 3], 0.0, 0.5);
        let bias = rng.normal_tensor(&[3], 0.0, 0.5);
        let win = Window {
            kernel: 3,
            stride: 2,
            padding: 1,
        };

        let loss = |inp: &Tensor, wt: &Tensor, b: &Tensor| -> f32 {
            let (out, _) = conv2d_forward(inp, wt, Some(b), win).unwrap();
            // weighted sum so gradient isn't uniform
            out.data()
                .iter()
                .enumerate()
                .map(|(i, &v)| v * ((i % 7) as f32 - 3.0))
                .sum()
        };

        let (out, saved) = conv2d_forward(&input, &weight, Some(&bias), win).unwrap();
        let d_out = Tensor::from_vec(
            (0..out.len()).map(|i| (i % 7) as f32 - 3.0).collect(),
            out.shape(),
        )
        .unwrap();
        let (d_in, d_w, d_b) = conv2d_backward(&d_out, &weight, &saved).unwrap();

        let h = 1e-2;
        // spot-check a handful of coordinates in each gradient
        for &i in &[0usize, 13, 47, 99] {
            let mut ip = input.clone();
            ip.data_mut()[i] += h;
            let mut im = input.clone();
            im.data_mut()[i] -= h;
            let fd = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * h);
            assert!(
                (fd - d_in.data()[i]).abs() < 0.05 * (1.0 + fd.abs()),
                "d_input[{i}]: fd {fd} vs analytic {}",
                d_in.data()[i]
            );
        }
        for &i in &[0usize, 5, 23, 53] {
            let mut wp = weight.clone();
            wp.data_mut()[i] += h;
            let mut wm = weight.clone();
            wm.data_mut()[i] -= h;
            let fd = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * h);
            assert!(
                (fd - d_w.data()[i]).abs() < 0.05 * (1.0 + fd.abs()),
                "d_weight[{i}]: fd {fd} vs analytic {}",
                d_w.data()[i]
            );
        }
        for i in 0..3 {
            let mut bp = bias.clone();
            bp.data_mut()[i] += h;
            let mut bm = bias.clone();
            bm.data_mut()[i] -= h;
            let fd = (loss(&input, &weight, &bp) - loss(&input, &weight, &bm)) / (2.0 * h);
            assert!(
                (fd - d_b.data()[i]).abs() < 0.05 * (1.0 + fd.abs()),
                "d_bias[{i}]: fd {fd} vs analytic {}",
                d_b.data()[i]
            );
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 4.0, //
                3.0, 0.0, 1.0, 2.0, //
                7.0, 1.0, 0.0, 1.0, //
                2.0, 8.0, 3.0, 4.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let win = Window {
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        let (out, arg) = maxpool2d_forward(&input, win).unwrap();
        assert_eq!(out.data(), &[3.0, 5.0, 8.0, 4.0]);
        let d_out = Tensor::ones(&[1, 1, 2, 2]);
        let d_in = maxpool2d_backward(&d_out, &arg, &[1, 1, 4, 4]).unwrap();
        assert_eq!(d_in.sum(), 4.0);
        assert_eq!(d_in.at(&[0, 0, 1, 0]), 1.0); // the 3.0
        assert_eq!(d_in.at(&[0, 0, 3, 1]), 1.0); // the 8.0
    }

    #[test]
    fn global_avgpool_roundtrip() {
        let input = Tensor::arange(0.0, 1.0, 2 * 3 * 2 * 2)
            .reshape(&[2, 3, 2, 2])
            .unwrap();
        let out = global_avgpool_forward(&input).unwrap();
        assert_eq!(out.shape(), &[2, 3]);
        assert_eq!(out.at(&[0, 0]), (0.0 + 1.0 + 2.0 + 3.0) / 4.0);
        let d = global_avgpool_backward(&out, &[2, 3, 2, 2]).unwrap();
        assert_eq!(d.shape(), &[2, 3, 2, 2]);
        assert!((d.at(&[0, 0, 0, 0]) - out.at(&[0, 0]) / 4.0).abs() < 1e-6);
    }

    #[test]
    fn stride_two_conv_halves_resolution() {
        let input = Tensor::zeros(&[1, 2, 8, 8]);
        let weight = Tensor::zeros(&[4, 2, 3, 3]);
        let win = Window {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let (out, _) = conv2d_forward(&input, &weight, None, win).unwrap();
        assert_eq!(out.shape(), &[1, 4, 4, 4]);
    }
}
