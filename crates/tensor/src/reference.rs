//! Reference (oracle) kernels: the seed's naive implementations, kept
//! verbatim as ground truth for the parity test suite and as the baseline
//! the `kernel-bench` harness measures speedups against.
//!
//! Nothing in the training stack calls these — they exist so every
//! optimised kernel in [`crate::kernels`] and [`crate::conv`] has an
//! independent, obviously-correct implementation to be checked against.

use crate::conv::Window;
use crate::{Tensor, TensorError};

/// The seed's `i-k-j` matmul, including its per-element `a == 0.0` skip
/// branch (preserved so benchmarks measure exactly what the seed ran).
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Direct (six-deep loop nest) 2-D convolution forward: the formulation
/// the im2col + GEMM lowering in [`crate::conv`] is benchmarked against.
///
/// * `input` — `[N, C, H, W]`, `weight` — `[O, C, K, K]`,
///   `bias` — optional `[O]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] for malformed geometry.
///
/// # Panics
///
/// Panics on non-4-D inputs (oracle only; production code validates).
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    win: Window,
) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = shape4(input);
    let (o, _, _, _) = shape4(weight);
    let oh = win.out_size(h)?;
    let ow = win.out_size(w)?;
    let k = win.kernel;
    let x = input.data();
    let wt = weight.data();
    let mut out = vec![0.0f32; n * o * oh * ow];
    for s in 0..n {
        for oc in 0..o {
            let base_b = bias.map_or(0.0, |b| b.data()[oc]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = base_b;
                    for ic in 0..c {
                        for ky in 0..k {
                            let iy = (oy * win.stride + ky) as isize - win.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * win.stride + kx) as isize - win.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += x[((s * c + ic) * h + iy as usize) * w + ix as usize]
                                    * wt[((oc * c + ic) * k + ky) * k + kx];
                            }
                        }
                    }
                    out[((s * o + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, o, oh, ow])
}

/// Direct-loop gradients of [`conv2d_direct`]: returns
/// `(d_input, d_weight, d_bias)` computed by walking the forward nest and
/// scattering into each gradient.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] for malformed geometry.
///
/// # Panics
///
/// Panics on non-4-D inputs (oracle only).
pub fn conv2d_direct_backward(
    d_out: &Tensor,
    input: &Tensor,
    weight: &Tensor,
    win: Window,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    let (n, c, h, w) = shape4(input);
    let (o, _, _, _) = shape4(weight);
    let oh = win.out_size(h)?;
    let ow = win.out_size(w)?;
    let k = win.kernel;
    let x = input.data();
    let wt = weight.data();
    let g = d_out.data();
    let mut d_in = vec![0.0f32; n * c * h * w];
    let mut d_w = vec![0.0f32; o * c * k * k];
    let mut d_b = vec![0.0f32; o];
    for s in 0..n {
        for oc in 0..o {
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[((s * o + oc) * oh + oy) * ow + ox];
                    d_b[oc] += gv;
                    for ic in 0..c {
                        for ky in 0..k {
                            let iy = (oy * win.stride + ky) as isize - win.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * win.stride + kx) as isize - win.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((s * c + ic) * h + iy as usize) * w + ix as usize;
                                let wi = ((oc * c + ic) * k + ky) * k + kx;
                                d_w[wi] += gv * x[xi];
                                d_in[xi] += gv * wt[wi];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok((
        Tensor::from_vec(d_in, &[n, c, h, w])?,
        Tensor::from_vec(d_w, &[o, c, k, k])?,
        Tensor::from_vec(d_b, &[o])?,
    ))
}

fn shape4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(t.ndim(), 4, "reference kernels expect 4-D tensors");
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}
