//! Blocked, register-tiled f32 GEMM microkernels.
//!
//! This module is the single compute core every matrix product in the
//! workspace lowers onto: [`crate::Tensor::matmul`] and its fused-transpose
//! variants, the batched [`crate::ops::matmul3`] family feeding attention,
//! and the im2col convolution in [`crate::conv`].
//!
//! # Kernel structure
//!
//! All entry points compute `C += op(A) · op(B)` (accumulating — callers
//! zero `C` when they want a plain product, which lets the conv backward
//! pass accumulate per-sample weight gradients with no temporaries).
//!
//! Large products run the classic three-level blocked algorithm: `B` is
//! packed into a `KC×NC` panel and `A` into an `MC×KC` block (both drawn
//! from the thread-local [`crate::scratch`] pool), then a branch-free
//! microkernel walks the block with the `k`-loop unrolled 4× so every
//! `C`-row element is loaded and stored once per four multiply–adds. The
//! inner `j` loop is a straight-line FMA expression over exact-length
//! slices, which LLVM auto-vectorises. Products smaller than
//! [`SMALL_FLOPS`] skip packing entirely and use the same unrolled loops
//! directly on the operands (the packing memcpy would dominate).
//!
//! Unlike the seed kernels there is **no** per-element `a == 0.0` skip:
//! on dense data the branch cost a mispredict opportunity per element and
//! blocked the vectoriser. (Consequence: `0·NaN` is now `NaN`, IEEE-754
//! semantics, where the seed silently skipped it.)
//!
//! # Threading
//!
//! Products above [`PAR_FLOPS`] shard the rows of `C` — or the batch axis
//! for the `gemm_batch*` family — onto the persistent [`rex_pool`] worker
//! pool in *fixed-size* chunks ([`MC`] rows / one batch sample per chunk),
//! so no thread is ever spawned in the hot path and the chunk grid is a
//! function of problem size alone. Each chunk owns a disjoint `&mut`
//! window of `C` and its own thread-local scratch pool, and per-row
//! accumulation order is independent of which rows share a chunk, so
//! results are bitwise identical at every thread count (see the
//! determinism contract in `rex_pool`). Thread count comes from
//! [`rex_pool::num_threads`]: `--threads` flag > `REX_NUM_THREADS` > core
//! count.

use crate::backend::Layout;
use crate::scratch::PooledBuf;

/// Rows of `A` per packed block (`MC × KC` block ≈ 64 KiB, L2-resident).
pub const MC: usize = 64;
/// Shared (depth) dimension per packed panel.
pub const KC: usize = 256;
/// Columns of `B` per packed panel (`KC × NC` panel ≈ 256 KiB; each
/// microkernel `C` row slice of `NC` f32 is 1 KiB, L1-resident).
pub const NC: usize = 256;

/// Below this many multiply–adds (`m·k·n`) the unpacked small-product
/// path runs instead of the blocked algorithm (the SIMD backend uses the
/// same gate to fall back to the scalar kernel, where packing would
/// dominate).
pub(crate) const SMALL_FLOPS: usize = 1 << 15;

/// Minimum `m·k·n` (times batch for the batched entry points) before work
/// is handed to the thread pool; below it, handoff cost dominates.
pub(crate) const PAR_FLOPS: usize = 1 << 20;

/// Number of worker threads for the compute layer.
///
/// Delegates to [`rex_pool::current_num_threads`] — resolved once per
/// process as `set_num_threads` (`--threads`) > `REX_NUM_THREADS` > core
/// count, with scoped overrides from `rex_pool::with_pool_size` honoured.
pub fn num_threads() -> usize {
    rex_pool::current_num_threads()
}

/// `C[m,n] += A[m,k] · B[k,n]` (all row-major slices).
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_driver(Layout::Nn, m, k, n, a, b, c);
}

/// `C[m,n] += A[k,m]ᵀ · B[k,n]` without materialising the transpose.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_driver(Layout::Tn, m, k, n, a, b, c);
}

/// `C[m,n] += A[m,k] · B[n,k]ᵀ` without materialising the transpose.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_driver(Layout::Nt, m, k, n, a, b, c);
}

/// `C[m,n] = A[m,k] · Bq[n,k]ᵀ` where `Bq` is Q8_0-quantized along `k`
/// ([`crate::dtype::quantize_q8_0`] layout: `b_quants` is `n × k` quants,
/// `b_scales` is `n × k.div_ceil(QK)` f16 scale bits). Computes on the
/// quantized blocks directly — the dense f32 `B` is never materialized.
/// Shards output rows across threads when `m` is tall, output *columns*
/// when the product is GEMV-shaped (`m ≤ 64`); per-element accumulation
/// order depends only on `k`, so results are bitwise identical at any
/// thread count within a backend.
///
/// Note this *assigns* `C` (the per-block scale application makes a
/// fused accumulate-into-C awkward); the dense GEMM entry points
/// accumulate.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn qgemm_nt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b_scales: &[u16],
    b_quants: &[i8],
    c: &mut [f32],
) {
    use crate::dtype::QK;
    assert_eq!(a.len(), m * k, "qgemm: A length {} != {m}x{k}", a.len());
    assert_eq!(b_quants.len(), n * k, "qgemm: quant length != {n}x{k}");
    assert_eq!(
        b_scales.len(),
        n * k.div_ceil(QK),
        "qgemm: scale length != {n}x ceil({k}/{QK})"
    );
    assert_eq!(c.len(), m * n, "qgemm: C length {} != {m}x{n}", c.len());
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let _sp = rex_telemetry::span::kernel_span("qgemm");
    let be = crate::backend::active();
    let threads = num_threads();
    if threads > 1 && m > 64 && m * k * n >= PAR_FLOPS {
        // tall products: 8-row chunks. The grid depends only on m, and
        // each C element is a row-local fixed-order fold, so any
        // partition is bitwise identical to the serial pass
        rex_pool::parallel_for_slices(c, 8 * n, |_, offset, rows| {
            let row0 = offset / n;
            let nrows = rows.len() / n;
            be.qgemm_nt_rows(
                k,
                n,
                &a[row0 * k..(row0 + nrows) * k],
                b_scales,
                b_quants,
                rows,
            );
        });
    } else if threads > 1 && m * k * n >= PAR_FLOPS {
        // GEMV-shaped products (the common quantized-inference case):
        // row sharding is useless at m ≤ 64, so shard the *columns* of C
        // instead — each chunk covers COL_CHUNK rows of Bq, widened
        // exactly once across all chunks. Chunks land in a column-block
        // temp (each chunk's m × jcount output is contiguous there) and
        // a trivial serial scatter (m·n floats) rebuilds row-major C.
        // The chunk grid depends only on (m, n) and per-element
        // accumulation stays row-local, so results remain bitwise
        // identical at any thread count.
        use crate::dtype::QK;
        const COL_CHUNK: usize = 64;
        let bpr = k.div_ceil(QK);
        let mut tmp = vec![0.0f32; m * n];
        rex_pool::parallel_for_slices(&mut tmp, m * COL_CHUNK, |_, offset, out| {
            let j0 = offset / m;
            let jcount = out.len() / m;
            be.qgemm_nt_rows(
                k,
                jcount,
                a,
                &b_scales[j0 * bpr..(j0 + jcount) * bpr],
                &b_quants[j0 * k..(j0 + jcount) * k],
                out,
            );
        });
        let mut j0 = 0;
        while j0 < n {
            let jcount = COL_CHUNK.min(n - j0);
            let off = j0 * m;
            for r in 0..m {
                c[r * n + j0..r * n + j0 + jcount]
                    .copy_from_slice(&tmp[off + r * jcount..off + (r + 1) * jcount]);
            }
            j0 += jcount;
        }
    } else {
        be.qgemm_nt_rows(k, n, a, b_scales, b_quants, c);
    }
}

/// Batched `C[s] += A[s] · B[s]` over `batch` independent `[m,k]×[k,n]`
/// products stored contiguously. Shards the batch axis across threads.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_batch(batch: usize, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    batch_driver(Layout::Nn, batch, m, k, n, a, b, c);
}

/// Batched `C[s] += A[s]ᵀ · B[s]` (`A[s]` is `[k,m]`).
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_batch_tn(
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    batch_driver(Layout::Tn, batch, m, k, n, a, b, c);
}

/// Batched `C[s] += A[s] · B[s]ᵀ` (`B[s]` is `[n,k]`).
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_batch_nt(
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    batch_driver(Layout::Nt, batch, m, k, n, a, b, c);
}

fn check_dims(layout: Layout, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &[f32]) {
    // every layout's operand holds the same element count, only the
    // logical row/col mapping differs
    let _ = layout;
    assert_eq!(a.len(), m * k, "gemm: A length {} != {m}x{k}", a.len());
    assert_eq!(b.len(), k * n, "gemm: B length {} != {k}x{n}", b.len());
    assert_eq!(c.len(), m * n, "gemm: C length {} != {m}x{n}", c.len());
}

fn gemm_driver(layout: Layout, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims(layout, m, k, n, a, b, c);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // the driver runs on the submitting thread (the pool fans out
    // internally), so this span covers the whole op including fan-out
    let _sp = rex_telemetry::span::kernel_span("gemm");
    // resolve the backend once, before sharding: chunk bodies run on pool
    // workers, and the captured reference is what propagates a thread-local
    // `with_backend` override into them
    let be = crate::backend::active();
    if num_threads() > 1 && m > MC && m * k * n >= PAR_FLOPS {
        // MC-row chunks: the grid depends only on m, and each C row's
        // accumulation order is row-local, so any partition of the rows is
        // bitwise identical to the serial pass.
        rex_pool::parallel_for_slices(c, MC * n, |_, offset, rows| {
            be.gemm_rows(layout, m, k, n, a, b, rows, offset / n);
        });
    } else {
        be.gemm_rows(layout, m, k, n, a, b, c, 0);
    }
}

#[allow(clippy::too_many_arguments)]
fn batch_driver(
    layout: Layout,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert_eq!(a.len(), batch * m * k, "gemm_batch: A length mismatch");
    assert_eq!(b.len(), batch * k * n, "gemm_batch: B length mismatch");
    assert_eq!(c.len(), batch * m * n, "gemm_batch: C length mismatch");
    if batch == 0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    let _sp = rex_telemetry::span::kernel_span("gemm_batch");
    let (sa, sb, sc) = (m * k, k * n, m * n);
    let be = crate::backend::active();
    let run_range = move |a: &[f32], b: &[f32], c: &mut [f32], s0: usize, count: usize| {
        for s in s0..s0 + count {
            be.gemm_rows(
                layout,
                m,
                k,
                n,
                &a[s * sa..(s + 1) * sa],
                &b[s * sb..(s + 1) * sb],
                &mut c[(s - s0) * sc..(s - s0 + 1) * sc],
                0,
            );
        }
    };
    if num_threads() > 1 && batch >= 2 && batch * m * k * n >= PAR_FLOPS {
        // one sample per chunk: sample products are fully independent
        rex_pool::parallel_for_slices(c, sc, |s, _, c_s| run_range(a, b, c_s, s, 1));
    } else {
        run_range(a, b, c, 0, batch);
    }
}

/// Computes rows `row0 .. row0 + c_rows.len()/n` of the product into
/// `c_rows` (a contiguous row-range of `C`) with the historical scalar
/// kernels — the [`crate::backend::ScalarBackend`] GEMM implementation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_rows_scalar(
    layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
) {
    let rows = c_rows.len() / n;
    if m * k * n < SMALL_FLOPS {
        return match layout {
            Layout::Nn => micro(rows, k, n, &a[row0 * k..], k, b, n, c_rows, n),
            Layout::Tn => small_tn(rows, k, m, n, a, b, c_rows, row0),
            Layout::Nt => small_nt(rows, k, n, a, b, c_rows, row0),
        };
    }
    if matches!(layout, Layout::Nn) && k <= KC && n <= NC {
        // the whole problem fits one cache block: packing would be a
        // plain copy, so run the microkernel on the operands in place
        return micro(rows, k, n, &a[row0 * k..], k, b, n, c_rows, n);
    }
    let mut apack = PooledBuf::zeroed(MC * KC);
    let mut bpack = PooledBuf::zeroed(KC * NC);
    for j0 in (0..n).step_by(NC) {
        let nb = NC.min(n - j0);
        for k0 in (0..k).step_by(KC) {
            let kb = KC.min(k - k0);
            pack_b(layout, b, k, n, k0, kb, j0, nb, &mut bpack);
            for i0 in (0..rows).step_by(MC) {
                let mb = MC.min(rows - i0);
                pack_a(layout, a, m, k, row0 + i0, mb, k0, kb, &mut apack);
                micro(
                    mb,
                    kb,
                    nb,
                    &apack,
                    kb,
                    &bpack,
                    nb,
                    &mut c_rows[i0 * n + j0..],
                    n,
                );
            }
        }
    }
}

/// Packs an `mb × kb` block of `op(A)` (rows `row..row+mb`, depth
/// `k0..k0+kb`) into contiguous `kb`-wide rows of `apack`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    layout: Layout,
    a: &[f32],
    m: usize,
    k: usize,
    row: usize,
    mb: usize,
    k0: usize,
    kb: usize,
    apack: &mut [f32],
) {
    match layout {
        Layout::Nn | Layout::Nt => {
            for i in 0..mb {
                apack[i * kb..(i + 1) * kb]
                    .copy_from_slice(&a[(row + i) * k + k0..(row + i) * k + k0 + kb]);
            }
        }
        Layout::Tn => {
            // A is [k, m]; gather its columns into rows of the pack
            for p in 0..kb {
                let src = &a[(k0 + p) * m + row..(k0 + p) * m + row + mb];
                for (i, &v) in src.iter().enumerate() {
                    apack[i * kb + p] = v;
                }
            }
        }
    }
}

/// Packs a `kb × nb` panel of `op(B)` (depth `k0..k0+kb`, columns
/// `j0..j0+nb`) into contiguous `nb`-wide rows of `bpack`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    layout: Layout,
    b: &[f32],
    k: usize,
    n: usize,
    k0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    bpack: &mut [f32],
) {
    match layout {
        Layout::Nn | Layout::Tn => {
            for p in 0..kb {
                bpack[p * nb..(p + 1) * nb]
                    .copy_from_slice(&b[(k0 + p) * n + j0..(k0 + p) * n + j0 + nb]);
            }
        }
        Layout::Nt => {
            // B is [n, k]; transpose its rows into the panel
            for j in 0..nb {
                let src = &b[(j0 + j) * k + k0..(j0 + j) * k + k0 + kb];
                for (p, &v) in src.iter().enumerate() {
                    bpack[p * nb + j] = v;
                }
            }
        }
    }
}

/// The branch-free microkernel: `C[mb,nb] += A[mb,kb] · B[kb,nb]` over
/// strided row-major operands, register-tiled 2 rows × 4 depths — each
/// loaded group of four `B` rows feeds eight FMA-shaped updates across two
/// `C` rows. Also serves as the unpacked small-product path for the NN
/// layout (`a_stride = k`, `b_stride = n`).
#[allow(clippy::too_many_arguments)]
fn micro(
    mb: usize,
    kb: usize,
    nb: usize,
    a: &[f32],
    a_stride: usize,
    b: &[f32],
    b_stride: usize,
    c: &mut [f32],
    c_stride: usize,
) {
    let mut i = 0;
    while i + 2 <= mb {
        let ar0 = &a[i * a_stride..i * a_stride + kb];
        let ar1 = &a[(i + 1) * a_stride..(i + 1) * a_stride + kb];
        let (head, tail) = c.split_at_mut((i + 1) * c_stride);
        let crow0 = &mut head[i * c_stride..i * c_stride + nb];
        let crow1 = &mut tail[..nb];
        let mut p = 0;
        while p + 4 <= kb {
            let (x0, x1, x2, x3) = (ar0[p], ar0[p + 1], ar0[p + 2], ar0[p + 3]);
            let (y0, y1, y2, y3) = (ar1[p], ar1[p + 1], ar1[p + 2], ar1[p + 3]);
            let b0 = &b[p * b_stride..p * b_stride + nb];
            let b1 = &b[(p + 1) * b_stride..(p + 1) * b_stride + nb];
            let b2 = &b[(p + 2) * b_stride..(p + 2) * b_stride + nb];
            let b3 = &b[(p + 3) * b_stride..(p + 3) * b_stride + nb];
            for j in 0..nb {
                let (u0, u1, u2, u3) = (b0[j], b1[j], b2[j], b3[j]);
                crow0[j] += x0 * u0 + x1 * u1 + x2 * u2 + x3 * u3;
                crow1[j] += y0 * u0 + y1 * u1 + y2 * u2 + y3 * u3;
            }
            p += 4;
        }
        while p < kb {
            let (xp, yp) = (ar0[p], ar1[p]);
            let brow = &b[p * b_stride..p * b_stride + nb];
            for j in 0..nb {
                crow0[j] += xp * brow[j];
                crow1[j] += yp * brow[j];
            }
            p += 1;
        }
        i += 2;
    }
    if i < mb {
        let arow = &a[i * a_stride..i * a_stride + kb];
        let crow = &mut c[i * c_stride..i * c_stride + nb];
        let mut p = 0;
        while p + 4 <= kb {
            let (a0, a1, a2, a3) = (arow[p], arow[p + 1], arow[p + 2], arow[p + 3]);
            let b0 = &b[p * b_stride..p * b_stride + nb];
            let b1 = &b[(p + 1) * b_stride..(p + 1) * b_stride + nb];
            let b2 = &b[(p + 2) * b_stride..(p + 2) * b_stride + nb];
            let b3 = &b[(p + 3) * b_stride..(p + 3) * b_stride + nb];
            for j in 0..nb {
                crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            p += 4;
        }
        while p < kb {
            let ap = arow[p];
            let brow = &b[p * b_stride..p * b_stride + nb];
            for j in 0..nb {
                crow[j] += ap * brow[j];
            }
            p += 1;
        }
    }
}

/// Small-product TN path: accumulates `Aᵀ·B` in depth-major order so both
/// operand rows stream contiguously (`A` is `[k,m]`).
#[allow(clippy::too_many_arguments)]
fn small_tn(
    rows: usize,
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
) {
    for p in 0..k {
        let arow = &a[p * m + row0..p * m + row0 + rows];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &ai) in arow.iter().enumerate() {
            let crow = &mut c_rows[i * n..i * n + n];
            for j in 0..n {
                crow[j] += ai * brow[j];
            }
        }
    }
}

/// Small-product NT path: per-element dot products with four running
/// accumulators over the shared dimension (`B` is `[n,k]`).
fn small_nt(
    rows: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
) {
    for i in 0..rows {
        let arow = &a[(row0 + i) * k..(row0 + i) * k + k];
        for j in 0..n {
            let brow = &b[j * k..j * k + k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let mut p = 0;
            while p + 4 <= k {
                s0 += arow[p] * brow[p];
                s1 += arow[p + 1] * brow[p + 1];
                s2 += arow[p + 2] * brow[p + 2];
                s3 += arow[p + 3] * brow[p + 3];
                p += 4;
            }
            let mut acc = (s0 + s1) + (s2 + s3);
            while p < k {
                acc += arow[p] * brow[p];
                p += 1;
            }
            c_rows[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prng;

    fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-4 * (1.0 + a.abs().max(b.abs()))
    }

    /// Sizes chosen to cross every block boundary (MC=64, KC=NC=256) and
    /// to exercise the small path and the 4x-unroll remainders.
    const CASES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 7),
        (4, 8, 4),
        (17, 9, 13),
        (65, 300, 70),
        (70, 130, 300),
        (130, 257, 259),
    ];

    #[test]
    fn gemm_nn_matches_naive() {
        for &(m, k, n) in CASES {
            let mut rng = Prng::new((m * 1000 + k * 10 + n) as u64);
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let expect = naive_nn(m, k, n, &a, &b);
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            for (x, y) in c.iter().zip(&expect) {
                assert!(close(*x, *y), "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_tn_matches_naive_on_transpose() {
        for &(m, k, n) in CASES {
            let mut rng = Prng::new((m + k + n) as u64);
            // A stored [k, m]
            let a: Vec<f32> = (0..k * m).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let mut at = vec![0.0f32; m * k];
            for p in 0..k {
                for i in 0..m {
                    at[i * k + p] = a[p * m + i];
                }
            }
            let expect = naive_nn(m, k, n, &at, &b);
            let mut c = vec![0.0f32; m * n];
            gemm_tn(m, k, n, &a, &b, &mut c);
            for (x, y) in c.iter().zip(&expect) {
                assert!(close(*x, *y), "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_nt_matches_naive_on_transpose() {
        for &(m, k, n) in CASES {
            let mut rng = Prng::new((m * 7 + k * 3 + n) as u64);
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            // B stored [n, k]
            let b: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect();
            let mut bt = vec![0.0f32; k * n];
            for j in 0..n {
                for p in 0..k {
                    bt[p * n + j] = b[j * k + p];
                }
            }
            let expect = naive_nn(m, k, n, &a, &bt);
            let mut c = vec![0.0f32; m * n];
            gemm_nt(m, k, n, &a, &b, &mut c);
            for (x, y) in c.iter().zip(&expect) {
                assert!(close(*x, *y), "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [1.0f32, 0.0, 0.0, 1.0];
        let mut c = [10.0f32, 20.0, 30.0, 40.0];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn gemm_batch_matches_per_slice() {
        let (batch, m, k, n) = (3, 5, 6, 4);
        let mut rng = Prng::new(99);
        let a: Vec<f32> = (0..batch * m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..batch * k * n).map(|_| rng.normal()).collect();
        let mut c = vec![0.0f32; batch * m * n];
        gemm_batch(batch, m, k, n, &a, &b, &mut c);
        for s in 0..batch {
            let expect = naive_nn(
                m,
                k,
                n,
                &a[s * m * k..(s + 1) * m * k],
                &b[s * k * n..(s + 1) * k * n],
            );
            for (x, y) in c[s * m * n..(s + 1) * m * n].iter().zip(&expect) {
                assert!(close(*x, *y), "slice {s}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn zero_times_nan_propagates() {
        // The seed kernels skipped a == 0.0, silently converting 0*NaN to
        // 0. The branch-free kernel must follow IEEE-754: this doubles as
        // the regression test that dense inputs take the branch-free path.
        let a = [0.0f32, 0.0, 0.0, 0.0];
        let b = [f32::NAN, 1.0, 2.0, 3.0];
        let mut c = [0.0f32; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        // column 0 multiplies the NaN; column 1 never touches it
        assert!(
            c[0].is_nan(),
            "zero-skip branch resurfaced: 0*NaN was dropped"
        );
        assert!(c[2].is_nan(), "zero-skip branch resurfaced in row 1");
        assert_eq!(c[1], 0.0);
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = [1.0f32; 4];
        gemm(2, 0, 2, &[], &[], &mut c);
        assert_eq!(c, [1.0; 4]);
        gemm(0, 3, 0, &[], &[], &mut []);
    }
}
