//! im2col / col2im: the patch-matrix lowering that turns 2-D convolution
//! into the blocked GEMM of [`crate::kernels`].
//!
//! `im2col` unrolls every `K×K` receptive field of a `[C, H, W]` sample
//! into one column of a `[C·K·K, OH·OW]` matrix, so the convolution with an
//! `[O, C·K·K]` weight matrix becomes a single dense product. `col2im` is
//! its adjoint (scatter-add), used by the backward pass to fold patch
//! gradients back onto the input grid.
//!
//! Memory cost: the patch matrix holds `K·K` copies of the input, i.e.
//! `N·C·K²·OH·OW` floats per layer. The buffers come from the
//! [`crate::scratch`] pool and are recycled across steps, so the cost is
//! one resident workspace per live layer rather than an allocation per
//! step.

use crate::conv::Window;
use crate::scratch::PooledBuf;

/// Acquires a pooled, zeroed im2col workspace of `len` elements.
///
/// Thin wrapper over the scratch pool so conv layers share one reuse
/// point; the buffer returns to the pool when dropped.
pub fn take_cols(len: usize) -> PooledBuf {
    PooledBuf::zeroed(len)
}

/// Unrolls one `[C, H, W]` sample into `cols` (`[C·K·K, OH·OW]`,
/// row-major). Padding positions are left untouched, so `cols` must be
/// zeroed on entry (pool buffers are).
///
/// # Panics
///
/// Panics (via slice indexing) if `cols` or `input` is too short for the
/// geometry.
#[allow(clippy::too_many_arguments)]
pub fn im2col_sample(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    win: Window,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    let k = win.kernel;
    let per_ch = k * k * oh * ow;
    // Channels are fully independent (disjoint input planes, disjoint cols
    // row blocks), so the channel axis parallelizes with no float-order
    // change; nested calls (from the batch-parallel conv driver) run
    // inline on their worker. Backend resolved once so a thread-local
    // override reaches the chunk bodies.
    let be = crate::backend::active();
    if c >= 2 && c * per_ch >= PAR_ELEMS && rex_pool::current_num_threads() > 1 {
        rex_pool::parallel_for_slices(&mut cols[..c * per_ch], per_ch, |ch, _, chunk| {
            be.im2col_channel(
                &input[ch * h * w..(ch + 1) * h * w],
                h,
                w,
                win,
                oh,
                ow,
                chunk,
            );
        });
    } else {
        for (ch, chunk) in cols[..c * per_ch].chunks_mut(per_ch).enumerate() {
            be.im2col_channel(
                &input[ch * h * w..(ch + 1) * h * w],
                h,
                w,
                win,
                oh,
                ow,
                chunk,
            );
        }
    }
}

/// Minimum moved elements before the channel axis is worth sharding.
const PAR_ELEMS: usize = 1 << 16;

/// Unrolls one input plane (`[H, W]`) into its `K·K` rows of the patch
/// matrix (`cols` is the channel's `[K·K, OH·OW]` block) — the scalar
/// backend's implementation (the SIMD backend adds a stride-1 padded
/// segment path in [`crate::simd`]).
pub(crate) fn im2col_channel_scalar(
    plane: &[f32],
    h: usize,
    w: usize,
    win: Window,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    let k = win.kernel;
    let ohw = oh * ow;
    for ky in 0..k {
        for kx in 0..k {
            let base = (ky * k + kx) * ohw;
            for oy in 0..oh {
                let iy = (oy * win.stride + ky) as isize - win.padding as isize;
                if iy < 0 || iy >= h as isize {
                    // zero-padding region: cols pre-zeroed
                    continue;
                }
                let iy = iy as usize;
                if win.stride == 1 && win.padding == 0 {
                    // contiguous fast path: whole output row is one memcpy
                    let src = iy * w + kx;
                    cols[base + oy * ow..base + oy * ow + ow]
                        .copy_from_slice(&plane[src..src + ow]);
                    continue;
                }
                for ox in 0..ow {
                    let ix = (ox * win.stride + kx) as isize - win.padding as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    cols[base + oy * ow + ox] = plane[iy * w + ix as usize];
                }
            }
        }
    }
}

/// Adjoint of [`im2col_sample`]: scatter-adds `cols` gradients back onto
/// the `[C, H, W]` input gradient `out` (accumulating; `out` is typically
/// zeroed by the caller once per batch).
///
/// # Panics
///
/// Panics (via slice indexing) if `cols` or `out` is too short for the
/// geometry.
#[allow(clippy::too_many_arguments)]
pub fn col2im_sample(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    win: Window,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let k = win.kernel;
    let per_ch = k * k * oh * ow;
    // Kernel offsets within a channel overlap on the input grid, but
    // distinct channels scatter onto disjoint `[H, W]` planes, so only the
    // channel axis is safe to shard — and doing so leaves every plane's
    // accumulation order untouched (bitwise identical to serial).
    let be = crate::backend::active();
    if c >= 2 && c * per_ch >= PAR_ELEMS && rex_pool::current_num_threads() > 1 {
        rex_pool::parallel_for_slices(&mut out[..c * h * w], h * w, |ch, _, plane| {
            be.col2im_channel(
                &cols[ch * per_ch..(ch + 1) * per_ch],
                h,
                w,
                win,
                oh,
                ow,
                plane,
            );
        });
    } else {
        for (ch, plane) in out[..c * h * w].chunks_mut(h * w).enumerate() {
            be.col2im_channel(
                &cols[ch * per_ch..(ch + 1) * per_ch],
                h,
                w,
                win,
                oh,
                ow,
                plane,
            );
        }
    }
}

/// Scatter-adds one channel's `[K·K, OH·OW]` gradient block onto its
/// `[H, W]` input-gradient plane with **compensated (Kahan) accumulation**:
/// each input-grid element keeps a running compensation term in a pooled
/// side plane, so the `K²` overlapping contributions per element lose
/// almost no low-order bits regardless of their magnitudes.
///
/// Both backends share this implementation, and each element's
/// compensation stream runs in the same `(ky, kx, oy, ox)` order
/// everywhere, so col2im results are bitwise identical scalar-vs-SIMD.
pub(crate) fn col2im_channel_compensated(
    cols: &[f32],
    h: usize,
    w: usize,
    win: Window,
    oh: usize,
    ow: usize,
    plane: &mut [f32],
) {
    let k = win.kernel;
    let ohw = oh * ow;
    let mut comp = PooledBuf::zeroed(h * w);
    for ky in 0..k {
        for kx in 0..k {
            let base = (ky * k + kx) * ohw;
            for oy in 0..oh {
                let iy = (oy * win.stride + ky) as isize - win.padding as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let iy = iy as usize;
                for ox in 0..ow {
                    let ix = (ox * win.stride + kx) as isize - win.padding as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    let idx = iy * w + ix as usize;
                    // Kahan step: recover the low-order bits lost by the
                    // previous add and fold them into this contribution
                    let y = cols[base + oy * ow + ox] - comp[idx];
                    let t = plane[idx] + y;
                    comp[idx] = (t - plane[idx]) - y;
                    plane[idx] = t;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im2col_identity_window_copies_input() {
        // 1x1 kernel, stride 1: cols is exactly the input plane
        let input: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let win = Window {
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let mut cols = vec![0.0f32; 12];
        im2col_sample(&input, 3, 2, 2, win, 2, 2, &mut cols);
        assert_eq!(cols, input);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y
        let (c, h, w) = (2, 4, 4);
        let win = Window {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let (oh, ow) = (4, 4);
        let ckk = c * 9;
        let x: Vec<f32> = (0..c * h * w).map(|v| (v as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..ckk * oh * ow)
            .map(|v| (v as f32 * 0.11).cos())
            .collect();
        let mut cols = vec![0.0f32; ckk * oh * ow];
        im2col_sample(&x, c, h, w, win, oh, ow, &mut cols);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0f32; c * h * w];
        col2im_sample(&y, c, h, w, win, oh, ow, &mut back);
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn stride1_nopad_fast_path_matches_general() {
        let (c, h, w) = (2, 5, 6);
        let k = 3;
        let win = Window {
            kernel: k,
            stride: 1,
            padding: 0,
        };
        let (oh, ow) = (h - k + 1, w - k + 1);
        let input: Vec<f32> = (0..c * h * w).map(|v| v as f32).collect();
        let mut fast = vec![0.0f32; c * k * k * oh * ow];
        im2col_sample(&input, c, h, w, win, oh, ow, &mut fast);
        // general path: same geometry expressed with padding 0 via the
        // scalar loop (reconstruct manually)
        let mut general = vec![0.0f32; c * k * k * oh * ow];
        for ch in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ch * k + ky) * k + kx;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            general[row * oh * ow + oy * ow + ox] =
                                input[(ch * h + oy + ky) * w + ox + kx];
                        }
                    }
                }
            }
        }
        assert_eq!(fast, general);
    }
}
