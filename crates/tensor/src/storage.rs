//! Typed value storage: a flat buffer of elements in one [`DType`].
//!
//! [`Storage`] is the serialization/interchange container behind
//! mixed-precision checkpoints and the quantized export path. It is *not*
//! wired into [`Tensor`](crate::Tensor) — compute stays f32 — it is the
//! canonical "values at rest" representation: narrow on write, widen on read,
//! with exact byte accounting so callers can reason about file sizes.

use crate::dtype::{
    bf16_bits_to_f32, dequantize_q8_0, f16_bits_to_f32, f32_to_bf16_bits, f32_to_f16_bits,
    quantize_q8_0, DType, QK,
};

/// A flat buffer of elements held in one storage format.
#[derive(Debug, Clone, PartialEq)]
pub enum Storage {
    /// Native f32 values.
    F32(Vec<f32>),
    /// IEEE binary16 bit patterns.
    F16(Vec<u16>),
    /// bfloat16 bit patterns.
    Bf16(Vec<u16>),
    /// Q8_0 blocks: one f16 scale per [`QK`]-element block plus one `i8`
    /// quant per element. `len` is the logical element count (the final
    /// block may be partial).
    Q80 {
        /// f16 scale bits, one per block.
        scales: Vec<u16>,
        /// Signed quants, one per element.
        quants: Vec<i8>,
        /// Logical element count.
        len: usize,
    },
}

impl Storage {
    /// Narrows `src` into storage format `dtype`.
    pub fn from_f32(dtype: DType, src: &[f32]) -> Storage {
        match dtype {
            DType::F32 => Storage::F32(src.to_vec()),
            DType::F16 => Storage::F16(src.iter().map(|&x| f32_to_f16_bits(x)).collect()),
            DType::Bf16 => Storage::Bf16(src.iter().map(|&x| f32_to_bf16_bits(x)).collect()),
            DType::Q80 => {
                let mut scales = vec![0u16; src.len().div_ceil(QK)];
                let mut quants = vec![0i8; src.len()];
                quantize_q8_0(src, &mut scales, &mut quants);
                Storage::Q80 {
                    scales,
                    quants,
                    len: src.len(),
                }
            }
        }
    }

    /// Widens back to f32.
    pub fn to_f32(&self) -> Vec<f32> {
        match self {
            Storage::F32(v) => v.clone(),
            Storage::F16(v) => v.iter().map(|&h| f16_bits_to_f32(h)).collect(),
            Storage::Bf16(v) => v.iter().map(|&b| bf16_bits_to_f32(b)).collect(),
            Storage::Q80 {
                scales,
                quants,
                len,
            } => {
                let mut out = vec![0.0f32; *len];
                dequantize_q8_0(scales, quants, &mut out);
                out
            }
        }
    }

    /// The storage format of this buffer.
    pub fn dtype(&self) -> DType {
        match self {
            Storage::F32(_) => DType::F32,
            Storage::F16(_) => DType::F16,
            Storage::Bf16(_) => DType::Bf16,
            Storage::Q80 { .. } => DType::Q80,
        }
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::F16(v) | Storage::Bf16(v) => v.len(),
            Storage::Q80 { len, .. } => *len,
        }
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact serialized payload size in bytes (no headers).
    pub fn nbytes(&self) -> usize {
        self.dtype().nbytes(self.len())
    }

    /// Serializes the payload little-endian: f32/f16/bf16 as consecutive
    /// LE words; Q8_0 as all scale words followed by all quant bytes.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.nbytes());
        match self {
            Storage::F32(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Storage::F16(v) | Storage::Bf16(v) => {
                for h in v {
                    out.extend_from_slice(&h.to_le_bytes());
                }
            }
            Storage::Q80 { scales, quants, .. } => {
                for s in scales {
                    out.extend_from_slice(&s.to_le_bytes());
                }
                for &q in quants {
                    out.push(q as u8);
                }
            }
        }
        out
    }

    /// Deserializes a payload written by [`to_le_bytes`](Self::to_le_bytes).
    /// Returns `None` when `bytes` is not exactly `dtype.nbytes(len)` long.
    pub fn from_le_bytes(dtype: DType, len: usize, bytes: &[u8]) -> Option<Storage> {
        if bytes.len() != dtype.nbytes(len) {
            return None;
        }
        let words = |b: &[u8]| -> Vec<u16> {
            b.chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect()
        };
        Some(match dtype {
            DType::F32 => Storage::F32(
                bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            ),
            DType::F16 => Storage::F16(words(bytes)),
            DType::Bf16 => Storage::Bf16(words(bytes)),
            DType::Q80 => {
                let nscales = len.div_ceil(QK);
                let (sb, qb) = bytes.split_at(nscales * 2);
                Storage::Q80 {
                    scales: words(sb),
                    quants: qb.iter().map(|&b| b as i8).collect(),
                    len,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_sizes() {
        let mut rng = crate::Prng::new(42);
        let src: Vec<f32> = (0..77).map(|_| rng.uniform_in(-2.0, 2.0)).collect();
        for dtype in [DType::F32, DType::F16, DType::Bf16, DType::Q80] {
            let st = Storage::from_f32(dtype, &src);
            assert_eq!(st.dtype(), dtype);
            assert_eq!(st.len(), src.len());
            assert!(!st.is_empty());
            let bytes = st.to_le_bytes();
            assert_eq!(bytes.len(), st.nbytes());
            assert_eq!(bytes.len(), dtype.nbytes(src.len()));
            let back = Storage::from_le_bytes(dtype, src.len(), &bytes).unwrap();
            assert_eq!(back, st);
            let widened = st.to_f32();
            for (a, b) in src.iter().zip(&widened) {
                let tol = match dtype {
                    DType::F32 => 0.0,
                    DType::F16 => 1e-3 * a.abs().max(1.0),
                    DType::Bf16 => 1e-2 * a.abs().max(1.0),
                    DType::Q80 => 2e-2 * a.abs().max(1.0),
                };
                assert!((a - b).abs() <= tol, "{dtype}: {a} vs {b}");
            }
        }
        // truncated payloads are rejected
        assert!(Storage::from_le_bytes(DType::F16, 77, &[0u8; 3]).is_none());
    }

    #[test]
    fn f32_storage_is_lossless() {
        let src = vec![0.1f32, -3.25, 1e-30, f32::MAX];
        let st = Storage::from_f32(DType::F32, &src);
        assert_eq!(st.to_f32(), src);
    }
}
