//! AVX2 + FMA kernels (x86-64, runtime-detected).
//!
//! The GEMM micro-tile is a classic 6×16 register kernel: 6 rows × two
//! 8-lane YMM columns of `C` accumulate in 12 registers while one
//! broadcast of `A` and two loads of packed `B` feed 12 FMAs per depth
//! step. `A` is packed MR-major (6 row elements per depth), `B` NR-major
//! (16 column elements per depth), both zero-padded to full tiles — the
//! padded lanes are computed and discarded, so every *real* `C` element
//! accumulates along `k` in one lane regardless of where its tile sits.
//! That makes the result independent of the row/tile/thread partition,
//! which is what lets the caller shard rows freely while keeping bitwise
//! determinism at any thread count.
//!
//! Elementwise and reduction entry points re-compile the portable 8-wide
//! bodies ([`super::portable`]) inside `#[target_feature]` wrappers: LLVM
//! lowers them with AVX2, and because the lane grouping is explicit in the
//! source the results stay bitwise identical to the portable build.

use std::arch::x86_64::*;

use super::portable;
use crate::backend::Layout;
use crate::scratch::PooledBuf;

/// Micro-tile rows (A broadcast values per depth step).
pub(super) const MR: usize = 6;
/// Micro-tile columns (two 8-lane YMM registers).
pub(super) const NR: usize = 16;
/// Rows of packed `A` per cache block (multiple of [`MR`]).
const MC: usize = 96;
/// Depth per packed block (shared with the scalar kernel's `KC`).
const KC: usize = 256;
/// Columns of packed `B` per panel (multiple of [`NR`]).
const NC: usize = 256;

/// Blocked GEMM over a contiguous row range of `C` (see
/// [`crate::backend::ComputeBackend::gemm_rows`] for the contract).
///
/// # Safety
///
/// Caller must guarantee the host supports AVX2 and FMA (checked once in
/// [`super::level`]). Slice geometry must satisfy the usual GEMM dimension
/// invariants (`a`/`b`/`c_rows` sized per `layout`, `n` divides
/// `c_rows.len()`), which the public drivers in [`crate::kernels`] check.
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn gemm_rows(
    layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
) {
    let rows = c_rows.len() / n;
    // uninit is fine: pack_a/pack_b fully overwrite every panel slot the
    // micro-kernel reads (including the zero padding)
    let mut apack = PooledBuf::uninit(MC * KC);
    let mut bpack = PooledBuf::uninit(KC * NC);
    for j0 in (0..n).step_by(NC) {
        let nb = NC.min(n - j0);
        let jpanels = nb.div_ceil(NR);
        for k0 in (0..k).step_by(KC) {
            let kb = KC.min(k - k0);
            super::pack_b(layout, b, k, n, k0, kb, j0, nb, NR, &mut bpack);
            for i0 in (0..rows).step_by(MC) {
                let mb = MC.min(rows - i0);
                super::pack_a(layout, a, m, k, row0 + i0, mb, k0, kb, MR, &mut apack);
                let ipanels = mb.div_ceil(MR);
                for jp in 0..jpanels {
                    let ncols = NR.min(nb - jp * NR);
                    let bp = bpack.as_ptr().add(jp * kb * NR);
                    for ip in 0..ipanels {
                        let mrows = MR.min(mb - ip * MR);
                        let ap = apack.as_ptr().add(ip * kb * MR);
                        let cptr = c_rows.as_mut_ptr().add((i0 + ip * MR) * n + j0 + jp * NR);
                        // SAFETY: ap/bp point at `kb`-deep packed panels,
                        // and cptr addresses an mrows×ncols window of
                        // c_rows with stride n (in bounds by construction
                        // of the tile grid above).
                        unsafe { mk6x16(kb, ap, bp, cptr, n, mrows, ncols) };
                    }
                }
            }
        }
    }
}

/// The 6×16 FMA micro-kernel: `C[mrows,ncols] += Ap·Bp` over one packed
/// depth run of `kb`.
///
/// # Safety
///
/// Requires AVX2+FMA. `ap` must be valid for `kb * MR` reads, `bp` for
/// `kb * NR` reads, and `c` for an `mrows × ncols` strided window with row
/// stride `c_stride`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mk6x16(
    kb: usize,
    ap: *const f32,
    bp: *const f32,
    c: *mut f32,
    c_stride: usize,
    mrows: usize,
    ncols: usize,
) {
    // SAFETY: (for every intrinsic below) AVX2+FMA availability is the
    // function's safety contract; all pointer arithmetic stays within the
    // ranges documented above.
    unsafe {
        let mut acc00 = _mm256_setzero_ps();
        let mut acc01 = _mm256_setzero_ps();
        let mut acc10 = _mm256_setzero_ps();
        let mut acc11 = _mm256_setzero_ps();
        let mut acc20 = _mm256_setzero_ps();
        let mut acc21 = _mm256_setzero_ps();
        let mut acc30 = _mm256_setzero_ps();
        let mut acc31 = _mm256_setzero_ps();
        let mut acc40 = _mm256_setzero_ps();
        let mut acc41 = _mm256_setzero_ps();
        let mut acc50 = _mm256_setzero_ps();
        let mut acc51 = _mm256_setzero_ps();
        let mut a = ap;
        let mut b = bp;
        // one depth step: 2 B loads + 6 A broadcasts feed 12 FMAs
        macro_rules! kstep {
            ($a:expr, $b:expr) => {{
                let b0 = _mm256_loadu_ps($b);
                let b1 = _mm256_loadu_ps($b.add(8));
                let a0 = _mm256_broadcast_ss(&*$a);
                acc00 = _mm256_fmadd_ps(a0, b0, acc00);
                acc01 = _mm256_fmadd_ps(a0, b1, acc01);
                let a1 = _mm256_broadcast_ss(&*$a.add(1));
                acc10 = _mm256_fmadd_ps(a1, b0, acc10);
                acc11 = _mm256_fmadd_ps(a1, b1, acc11);
                let a2 = _mm256_broadcast_ss(&*$a.add(2));
                acc20 = _mm256_fmadd_ps(a2, b0, acc20);
                acc21 = _mm256_fmadd_ps(a2, b1, acc21);
                let a3 = _mm256_broadcast_ss(&*$a.add(3));
                acc30 = _mm256_fmadd_ps(a3, b0, acc30);
                acc31 = _mm256_fmadd_ps(a3, b1, acc31);
                let a4 = _mm256_broadcast_ss(&*$a.add(4));
                acc40 = _mm256_fmadd_ps(a4, b0, acc40);
                acc41 = _mm256_fmadd_ps(a4, b1, acc41);
                let a5 = _mm256_broadcast_ss(&*$a.add(5));
                acc50 = _mm256_fmadd_ps(a5, b0, acc50);
                acc51 = _mm256_fmadd_ps(a5, b1, acc51);
            }};
        }
        // unroll the depth loop 2× to halve loop overhead; the FMA chain
        // per accumulator is unchanged, so results are bit-identical to
        // the rolled form
        let mut p = 0;
        while p + 2 <= kb {
            kstep!(a, b);
            kstep!(a.add(MR), b.add(NR));
            a = a.add(2 * MR);
            b = b.add(2 * NR);
            p += 2;
        }
        if p < kb {
            kstep!(a, b);
        }
        let acc = [
            [acc00, acc01],
            [acc10, acc11],
            [acc20, acc21],
            [acc30, acc31],
            [acc40, acc41],
            [acc50, acc51],
        ];
        if mrows == MR && ncols == NR {
            // full tile: C += acc directly
            for (r, pair) in acc.iter().enumerate() {
                let cr = c.add(r * c_stride);
                _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), pair[0]));
                let cr8 = cr.add(8);
                _mm256_storeu_ps(cr8, _mm256_add_ps(_mm256_loadu_ps(cr8), pair[1]));
            }
        } else {
            // edge tile: spill the full tile and add only the real lanes.
            // Each real element's value is identical to the full-tile path
            // (lanes are independent), so tail handling does not perturb
            // the partition-invariance argument.
            let mut tmp = [0.0f32; MR * NR];
            for (r, pair) in acc.iter().enumerate() {
                _mm256_storeu_ps(tmp.as_mut_ptr().add(r * NR), pair[0]);
                _mm256_storeu_ps(tmp.as_mut_ptr().add(r * NR + 8), pair[1]);
            }
            for (r, trow) in tmp.chunks_exact(NR).enumerate().take(mrows) {
                for (j, &v) in trow.iter().enumerate().take(ncols) {
                    *c.add(r * c_stride + j) += v;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Recompiled portable bodies (bitwise identical, AVX2 codegen)
// ---------------------------------------------------------------------------

macro_rules! recompiled {
    ($(#[$doc:meta] fn $name:ident($($arg:ident: $ty:ty),*) $(-> $ret:ty)?;)*) => {
        $(
            #[$doc]
            ///
            /// # Safety
            ///
            /// Caller must guarantee AVX2 support (checked in `super::level`).
            /// The body is the safe portable implementation; the wrapper only
            /// widens the codegen ISA.
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name($($arg: $ty),*) $(-> $ret)? {
                portable::$name($($arg),*)
            }
        )*
    };
}

recompiled! {
    /// AVX2-compiled [`portable::add_slices`].
    fn add_slices(a: &[f32], b: &[f32], out: &mut [f32]);
    /// AVX2-compiled [`portable::sub_slices`].
    fn sub_slices(a: &[f32], b: &[f32], out: &mut [f32]);
    /// AVX2-compiled [`portable::mul_slices`].
    fn mul_slices(a: &[f32], b: &[f32], out: &mut [f32]);
    /// AVX2-compiled [`portable::div_slices`].
    fn div_slices(a: &[f32], b: &[f32], out: &mut [f32]);
    /// AVX2-compiled [`portable::axpy`].
    fn axpy(alpha: f32, x: &[f32], y: &mut [f32]);
    /// AVX2-compiled [`portable::scale`].
    fn scale(s: f32, src: &[f32], out: &mut [f32]);
    /// AVX2-compiled [`portable::add_scalar`].
    fn add_scalar(s: f32, src: &[f32], out: &mut [f32]);
    /// AVX2-compiled [`portable::relu`].
    fn relu(src: &[f32], out: &mut [f32]);
    /// AVX2-compiled [`portable::sum`].
    fn sum(x: &[f32]) -> f32;
    /// AVX2-compiled [`portable::sq_sum`].
    fn sq_sum(x: &[f32]) -> f32;
    /// AVX2-compiled [`portable::dot`].
    fn dot(a: &[f32], b: &[f32]) -> f32;
    /// AVX2-compiled [`portable::max`].
    fn max(x: &[f32]) -> f32;
    /// AVX2-compiled [`portable::min`].
    fn min(x: &[f32]) -> f32;
    /// AVX2-compiled [`portable::softmax_row`].
    fn softmax_row(row: &[f32], out: &mut [f32]);
    /// AVX2-compiled [`portable::log_softmax_row`].
    fn log_softmax_row(row: &[f32], out: &mut [f32]);
    /// AVX2-compiled [`portable::mean_var_row`].
    fn mean_var_row(row: &[f32]) -> (f32, f32);
    /// AVX2-compiled [`portable::f32_to_f16_slice`].
    fn f32_to_f16_slice(src: &[f32], dst: &mut [u16]);
    /// AVX2-compiled [`portable::f16_to_f32_slice`].
    fn f16_to_f32_slice(src: &[u16], dst: &mut [f32]);
    /// AVX2-compiled [`portable::f32_to_bf16_slice`].
    fn f32_to_bf16_slice(src: &[f32], dst: &mut [u16]);
    /// AVX2-compiled [`portable::bf16_to_f32_slice`].
    fn bf16_to_f32_slice(src: &[u16], dst: &mut [f32]);
    /// AVX2-compiled [`portable::qgemm_nt_rows`].
    fn qgemm_nt_rows(
        k: usize,
        n: usize,
        a_rows: &[f32],
        b_scales: &[u16],
        b_quants: &[i8],
        c_rows: &mut [f32]
    );
}
