//! AVX-512F GEMM kernel (x86-64, runtime-detected).
//!
//! The micro-tile is 8×32: 8 rows × two 16-lane ZMM columns of `C` in 16
//! accumulator registers, fed by two packed-`B` loads and eight `A`
//! broadcasts per depth step (16 FMAs/step — FMA-port-bound on cores with
//! two 512-bit FMA units, which is where this level pays off over
//! [`super::avx2`]). Packing, blocking, and the partition-invariance
//! argument are identical to the AVX2 kernel — each real `C` element
//! accumulates along `k` in one lane, so results are bitwise stable under
//! any row/tile/thread partition.
//!
//! Only the GEMM lives here: elementwise and reduction ops dispatch to the
//! AVX2-compiled portable bodies (their lane order is fixed in source, so
//! wider codegen could not change results, and they are load/store-bound
//! anyway).

use std::arch::x86_64::*;

use crate::backend::Layout;
use crate::scratch::PooledBuf;

/// Micro-tile rows (A broadcast values per depth step).
pub(super) const MR: usize = 8;
/// Micro-tile columns (two 16-lane ZMM registers).
pub(super) const NR: usize = 32;
/// Rows of packed `A` per cache block (multiple of [`MR`]).
const MC: usize = 96;
/// Depth per packed block.
const KC: usize = 256;
/// Columns of packed `B` per panel (multiple of [`NR`]).
const NC: usize = 256;

/// Blocked GEMM over a contiguous row range of `C` — the AVX-512 sibling
/// of [`super::avx2::gemm_rows`].
///
/// # Safety
///
/// Caller must guarantee the host supports AVX-512F (checked once in
/// [`super::level`]). Slice geometry must satisfy the GEMM dimension
/// invariants checked by the drivers in [`crate::kernels`].
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn gemm_rows(
    layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
) {
    let rows = c_rows.len() / n;
    // uninit is fine: pack_a/pack_b fully overwrite every panel slot the
    // micro-kernel reads (including the zero padding)
    let mut apack = PooledBuf::uninit(MC * KC);
    let mut bpack = PooledBuf::uninit(KC * NC);
    for j0 in (0..n).step_by(NC) {
        let nb = NC.min(n - j0);
        let jpanels = nb.div_ceil(NR);
        for k0 in (0..k).step_by(KC) {
            let kb = KC.min(k - k0);
            super::pack_b(layout, b, k, n, k0, kb, j0, nb, NR, &mut bpack);
            for i0 in (0..rows).step_by(MC) {
                let mb = MC.min(rows - i0);
                super::pack_a(layout, a, m, k, row0 + i0, mb, k0, kb, MR, &mut apack);
                let ipanels = mb.div_ceil(MR);
                for jp in 0..jpanels {
                    let ncols = NR.min(nb - jp * NR);
                    let bp = bpack.as_ptr().add(jp * kb * NR);
                    for ip in 0..ipanels {
                        let mrows = MR.min(mb - ip * MR);
                        let ap = apack.as_ptr().add(ip * kb * MR);
                        let cptr = c_rows.as_mut_ptr().add((i0 + ip * MR) * n + j0 + jp * NR);
                        // SAFETY: ap/bp point at `kb`-deep packed panels,
                        // and cptr addresses an mrows×ncols window of
                        // c_rows with stride n (in bounds by construction
                        // of the tile grid above).
                        unsafe { mk8x32(kb, ap, bp, cptr, n, mrows, ncols) };
                    }
                }
            }
        }
    }
}

/// The 8×32 AVX-512 micro-kernel: `C[mrows,ncols] += Ap·Bp` over one
/// packed depth run of `kb`.
///
/// # Safety
///
/// Requires AVX-512F. `ap` must be valid for `kb * MR` reads, `bp` for
/// `kb * NR` reads, and `c` for an `mrows × ncols` strided window with row
/// stride `c_stride`.
#[target_feature(enable = "avx512f")]
unsafe fn mk8x32(
    kb: usize,
    ap: *const f32,
    bp: *const f32,
    c: *mut f32,
    c_stride: usize,
    mrows: usize,
    ncols: usize,
) {
    // SAFETY: (for every intrinsic below) AVX-512F availability is the
    // function's safety contract; all pointer arithmetic stays within the
    // ranges documented above.
    unsafe {
        let mut acc00 = _mm512_setzero_ps();
        let mut acc01 = _mm512_setzero_ps();
        let mut acc10 = _mm512_setzero_ps();
        let mut acc11 = _mm512_setzero_ps();
        let mut acc20 = _mm512_setzero_ps();
        let mut acc21 = _mm512_setzero_ps();
        let mut acc30 = _mm512_setzero_ps();
        let mut acc31 = _mm512_setzero_ps();
        let mut acc40 = _mm512_setzero_ps();
        let mut acc41 = _mm512_setzero_ps();
        let mut acc50 = _mm512_setzero_ps();
        let mut acc51 = _mm512_setzero_ps();
        let mut acc60 = _mm512_setzero_ps();
        let mut acc61 = _mm512_setzero_ps();
        let mut acc70 = _mm512_setzero_ps();
        let mut acc71 = _mm512_setzero_ps();
        let mut a = ap;
        let mut b = bp;
        // one depth step: 2 B loads + 8 A broadcasts feed 16 FMAs
        macro_rules! kstep {
            ($a:expr, $b:expr) => {{
                let b0 = _mm512_loadu_ps($b);
                let b1 = _mm512_loadu_ps($b.add(16));
                let a0 = _mm512_set1_ps(*$a);
                acc00 = _mm512_fmadd_ps(a0, b0, acc00);
                acc01 = _mm512_fmadd_ps(a0, b1, acc01);
                let a1 = _mm512_set1_ps(*$a.add(1));
                acc10 = _mm512_fmadd_ps(a1, b0, acc10);
                acc11 = _mm512_fmadd_ps(a1, b1, acc11);
                let a2 = _mm512_set1_ps(*$a.add(2));
                acc20 = _mm512_fmadd_ps(a2, b0, acc20);
                acc21 = _mm512_fmadd_ps(a2, b1, acc21);
                let a3 = _mm512_set1_ps(*$a.add(3));
                acc30 = _mm512_fmadd_ps(a3, b0, acc30);
                acc31 = _mm512_fmadd_ps(a3, b1, acc31);
                let a4 = _mm512_set1_ps(*$a.add(4));
                acc40 = _mm512_fmadd_ps(a4, b0, acc40);
                acc41 = _mm512_fmadd_ps(a4, b1, acc41);
                let a5 = _mm512_set1_ps(*$a.add(5));
                acc50 = _mm512_fmadd_ps(a5, b0, acc50);
                acc51 = _mm512_fmadd_ps(a5, b1, acc51);
                let a6 = _mm512_set1_ps(*$a.add(6));
                acc60 = _mm512_fmadd_ps(a6, b0, acc60);
                acc61 = _mm512_fmadd_ps(a6, b1, acc61);
                let a7 = _mm512_set1_ps(*$a.add(7));
                acc70 = _mm512_fmadd_ps(a7, b0, acc70);
                acc71 = _mm512_fmadd_ps(a7, b1, acc71);
            }};
        }
        // unroll the depth loop 2×; the FMA chain per accumulator is
        // unchanged, so results are bit-identical to the rolled form
        let mut p = 0;
        while p + 2 <= kb {
            kstep!(a, b);
            kstep!(a.add(MR), b.add(NR));
            a = a.add(2 * MR);
            b = b.add(2 * NR);
            p += 2;
        }
        if p < kb {
            kstep!(a, b);
        }
        let acc = [
            [acc00, acc01],
            [acc10, acc11],
            [acc20, acc21],
            [acc30, acc31],
            [acc40, acc41],
            [acc50, acc51],
            [acc60, acc61],
            [acc70, acc71],
        ];
        if mrows == MR && ncols == NR {
            // full tile: C += acc directly
            for (r, pair) in acc.iter().enumerate() {
                let cr = c.add(r * c_stride);
                _mm512_storeu_ps(cr, _mm512_add_ps(_mm512_loadu_ps(cr), pair[0]));
                let cr16 = cr.add(16);
                _mm512_storeu_ps(cr16, _mm512_add_ps(_mm512_loadu_ps(cr16), pair[1]));
            }
        } else {
            // edge tile: spill the full tile and add only the real lanes
            // (identical per-element values — lanes are independent)
            let mut tmp = [0.0f32; MR * NR];
            for (r, pair) in acc.iter().enumerate() {
                _mm512_storeu_ps(tmp.as_mut_ptr().add(r * NR), pair[0]);
                _mm512_storeu_ps(tmp.as_mut_ptr().add(r * NR + 16), pair[1]);
            }
            for (r, trow) in tmp.chunks_exact(NR).enumerate().take(mrows) {
                for (j, &v) in trow.iter().enumerate().take(ncols) {
                    *c.add(r * c_stride + j) += v;
                }
            }
        }
    }
}
