//! Portable 8-wide chunked kernel bodies.
//!
//! Every function here is written with an *explicit* lane structure —
//! 8-element chunks accumulated into an 8-slot array, folded with a fixed
//! pairwise tree, scalar tail last — so the float-operation order is part
//! of the source, not the codegen. The same body compiled at the baseline
//! ISA or re-compiled inside an AVX2 `#[target_feature]` wrapper (see
//! [`super::avx2`]) executes the identical operations in the identical
//! order and therefore produces bitwise-identical results; the wrapper only
//! changes *how fast* LLVM's autovectorizer lowers it.
//!
//! Elementwise maps have no accumulation order at all (each output element
//! depends on its own inputs only), so they are plain zipped loops that the
//! autovectorizer handles directly.

/// Lane width of the virtual vector unit. Matches one AVX2 register of
/// f32, and two SSE2 registers; the portable grouping is fixed to this
/// width on every target so reduction results do not depend on the ISA.
pub(crate) const LANES: usize = 8;

/// Folds an 8-slot lane accumulator with a fixed pairwise tree.
#[inline(always)]
fn fold_lanes(l: [f32; LANES], op: impl Fn(f32, f32) -> f32) -> f32 {
    op(
        op(op(l[0], l[1]), op(l[2], l[3])),
        op(op(l[4], l[5]), op(l[6], l[7])),
    )
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

#[inline(always)]
pub(crate) fn add_slices(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

#[inline(always)]
pub(crate) fn sub_slices(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

#[inline(always)]
pub(crate) fn mul_slices(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

#[inline(always)]
pub(crate) fn div_slices(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x / y;
    }
}

#[inline(always)]
pub(crate) fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (o, &v) in y.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

#[inline(always)]
pub(crate) fn scale(s: f32, src: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = v * s;
    }
}

#[inline(always)]
pub(crate) fn add_scalar(s: f32, src: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = v + s;
    }
}

#[inline(always)]
pub(crate) fn relu(src: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = v.max(0.0);
    }
}

// ---------------------------------------------------------------------------
// Reductions (fixed 8-lane grouping)
// ---------------------------------------------------------------------------

#[inline(always)]
pub(crate) fn sum(x: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let mut chunks = x.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l += v;
        }
    }
    let mut acc = fold_lanes(lanes, |a, b| a + b);
    for &v in chunks.remainder() {
        acc += v;
    }
    acc
}

#[inline(always)]
pub(crate) fn sq_sum(x: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let mut chunks = x.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l += v * v;
        }
    }
    let mut acc = fold_lanes(lanes, |a, b| a + b);
    for &v in chunks.remainder() {
        acc += v * v;
    }
    acc
}

#[inline(always)]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for ((l, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *l += x * y;
        }
    }
    let mut acc = fold_lanes(lanes, |a, b| a + b);
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        acc += x * y;
    }
    acc
}

#[inline(always)]
pub(crate) fn max(x: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; LANES];
    let mut chunks = x.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l = l.max(v);
        }
    }
    let mut acc = fold_lanes(lanes, f32::max);
    for &v in chunks.remainder() {
        acc = acc.max(v);
    }
    acc
}

#[inline(always)]
pub(crate) fn min(x: &[f32]) -> f32 {
    let mut lanes = [f32::INFINITY; LANES];
    let mut chunks = x.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l = l.min(v);
        }
    }
    let mut acc = fold_lanes(lanes, f32::min);
    for &v in chunks.remainder() {
        acc = acc.min(v);
    }
    acc
}

// ---------------------------------------------------------------------------
// Fused row kernels
// ---------------------------------------------------------------------------

/// Softmax of one row: lane-chunked max and sum; the transcendental `exp`
/// stays the scalar `std` call per element (identical on every path).
#[inline(always)]
pub(crate) fn softmax_row(row: &[f32], out: &mut [f32]) {
    let m = max(row);
    for (o, &v) in out.iter_mut().zip(row) {
        *o = (v - m).exp();
    }
    let inv = 1.0 / sum(out);
    for v in out.iter_mut() {
        *v *= inv;
    }
}

/// Log-softmax of one row (same lane structure as [`softmax_row`]).
#[inline(always)]
pub(crate) fn log_softmax_row(row: &[f32], out: &mut [f32]) {
    let m = max(row);
    for (o, &v) in out.iter_mut().zip(row) {
        *o = (v - m).exp();
    }
    let lse = m + sum(out).ln();
    for (o, &v) in out.iter_mut().zip(row) {
        *o = v - lse;
    }
}

/// `(mean, biased variance)` of one row via lane-chunked sums.
#[inline(always)]
pub(crate) fn mean_var_row(row: &[f32]) -> (f32, f32) {
    let d = row.len().max(1) as f32;
    let mean = sum(row) / d;
    let mut lanes = [0.0f32; LANES];
    let mut chunks = row.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            let dv = v - mean;
            *l += dv * dv;
        }
    }
    let mut acc = fold_lanes(lanes, |a, b| a + b);
    for &v in chunks.remainder() {
        let dv = v - mean;
        acc += dv * dv;
    }
    (mean, acc / d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_has_fixed_grouping() {
        // 8-lane grouping: sum of 0..16 = (0+8)+(1+9)+... lane slots, then
        // pairwise folds — for these exact integers the value equals the
        // sequential sum, but the test pins the tail handling too.
        let xs: Vec<f32> = (0..19).map(|i| i as f32).collect();
        assert_eq!(sum(&xs), (0..19).sum::<i32>() as f32);
    }

    #[test]
    fn dot_matches_naive_to_rounding() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32 * 0.31).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32 * 0.17).cos()).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn max_min_cover_tail() {
        let mut xs = vec![0.0f32; 17];
        xs[16] = 9.0; // tail position
        xs[3] = -9.0;
        assert_eq!(max(&xs), 9.0);
        assert_eq!(min(&xs), -9.0);
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let row: Vec<f32> = (0..13).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
        let mut out = vec![0.0f32; 13];
        softmax_row(&row, &mut out);
        let s: f32 = out.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }
}
