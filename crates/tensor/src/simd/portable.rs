//! Portable 8-wide chunked kernel bodies.
//!
//! Every function here is written with an *explicit* lane structure —
//! 8-element chunks accumulated into an 8-slot array, folded with a fixed
//! pairwise tree, scalar tail last — so the float-operation order is part
//! of the source, not the codegen. The same body compiled at the baseline
//! ISA or re-compiled inside an AVX2 `#[target_feature]` wrapper (see
//! [`super::avx2`]) executes the identical operations in the identical
//! order and therefore produces bitwise-identical results; the wrapper only
//! changes *how fast* LLVM's autovectorizer lowers it.
//!
//! Elementwise maps have no accumulation order at all (each output element
//! depends on its own inputs only), so they are plain zipped loops that the
//! autovectorizer handles directly.

/// Lane width of the virtual vector unit. Matches one AVX2 register of
/// f32, and two SSE2 registers; the portable grouping is fixed to this
/// width on every target so reduction results do not depend on the ISA.
pub(crate) const LANES: usize = 8;

/// Folds an 8-slot lane accumulator with a fixed pairwise tree.
#[inline(always)]
fn fold_lanes(l: [f32; LANES], op: impl Fn(f32, f32) -> f32) -> f32 {
    op(
        op(op(l[0], l[1]), op(l[2], l[3])),
        op(op(l[4], l[5]), op(l[6], l[7])),
    )
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

#[inline(always)]
pub(crate) fn add_slices(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

#[inline(always)]
pub(crate) fn sub_slices(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

#[inline(always)]
pub(crate) fn mul_slices(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

#[inline(always)]
pub(crate) fn div_slices(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x / y;
    }
}

#[inline(always)]
pub(crate) fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (o, &v) in y.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

#[inline(always)]
pub(crate) fn scale(s: f32, src: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = v * s;
    }
}

#[inline(always)]
pub(crate) fn add_scalar(s: f32, src: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = v + s;
    }
}

#[inline(always)]
pub(crate) fn relu(src: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = v.max(0.0);
    }
}

// ---------------------------------------------------------------------------
// Precision conversions (pure elementwise — bitwise identical on any path)
// ---------------------------------------------------------------------------

#[inline(always)]
pub(crate) fn f32_to_f16_slice(src: &[f32], dst: &mut [u16]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = crate::dtype::f32_to_f16_bits(s);
    }
}

#[inline(always)]
pub(crate) fn f16_to_f32_slice(src: &[u16], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = crate::dtype::f16_bits_to_f32(s);
    }
}

#[inline(always)]
pub(crate) fn f32_to_bf16_slice(src: &[f32], dst: &mut [u16]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = crate::dtype::f32_to_bf16_bits(s);
    }
}

#[inline(always)]
pub(crate) fn bf16_to_f32_slice(src: &[u16], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = crate::dtype::bf16_bits_to_f32(s);
    }
}

// ---------------------------------------------------------------------------
// Quantized GEMM (Q8_0 NT)
// ---------------------------------------------------------------------------

/// `C[rows, n] = A[rows, k] · Bq[n, k]ᵀ` where `Bq` is Q8_0-quantized along
/// `k` (see [`crate::dtype::quantize_q8_0`]): `b_quants` holds `n` rows of
/// `k` signed quants and `b_scales` holds `n` rows of `k.div_ceil(QK)` f16
/// scale bits. `c_rows` holds the `rows` output rows starting at global row
/// `row0` of the full product (the offset only selects which `A` rows are
/// read — `a_rows` is the matching `rows × k` slice of `A`).
///
/// Each output element accumulates one fixed-order f32 partial sum per
/// k-block (lane-grouped inside full blocks, scalar on a partial tail
/// block), scaled and added serially over blocks — the per-element order
/// never depends on the row partition, so sharding rows over threads keeps
/// results bitwise identical at any thread count. The dense `B` row is never
/// materialized: the kernel streams ~1 byte per weight instead of 4.
///
/// Rows are processed in register blocks of [`QROWS`]: the block's quants
/// are widened to f32 once into a stack buffer and reused for every row of
/// the group, so the int→float conversion cost — the dominant term of a
/// GEMV — amortizes over the group. Each output element's accumulation
/// order is unchanged by the grouping (every `C[i,j]` still folds its own
/// lanes per block, scales, and adds serially over blocks), so the result
/// is bitwise identical to row-at-a-time execution.
#[inline(always)]
pub(crate) fn qgemm_nt_rows(
    k: usize,
    n: usize,
    a_rows: &[f32],
    b_scales: &[u16],
    b_quants: &[i8],
    c_rows: &mut [f32],
) {
    use crate::dtype::{f16_bits_to_f32, QK};
    /// A-row register block: one quant widening feeds this many rows.
    const QROWS: usize = 4;
    let rows = c_rows.len().checked_div(n).unwrap_or(0);
    let bpr = k.div_ceil(QK); // scale blocks per B row
    let mut i = 0;
    while i < rows {
        let rb = QROWS.min(rows - i);
        for j in 0..n {
            let qrow = &b_quants[j * k..(j + 1) * k];
            let srow = &b_scales[j * bpr..(j + 1) * bpr];
            let mut acc = [0.0f32; QROWS];
            let mut qf = [0.0f32; QK];
            for (bi, &sbits) in srow.iter().enumerate() {
                let k0 = bi * QK;
                let k1 = (k0 + QK).min(k);
                let scale = f16_bits_to_f32(sbits);
                if k1 - k0 == QK {
                    // widen the block once for the whole row group
                    let qb = &qrow[k0..k0 + QK];
                    for (d, &q) in qf.iter_mut().zip(qb) {
                        *d = f32::from(q);
                    }
                    for (r, a) in acc.iter_mut().enumerate().take(rb) {
                        // full block: 4 passes of 8 lanes, fixed pairwise fold
                        let off = (i + r) * k + k0;
                        let ab = &a_rows[off..off + QK];
                        let mut lanes = [0.0f32; LANES];
                        for c in 0..QK / LANES {
                            for (l, lane) in lanes.iter_mut().enumerate() {
                                *lane += ab[c * LANES + l] * qf[c * LANES + l];
                            }
                        }
                        *a += fold_lanes(lanes, |a, b| a + b) * scale;
                    }
                } else {
                    for (r, a) in acc.iter_mut().enumerate().take(rb) {
                        let arow = &a_rows[(i + r) * k..(i + r + 1) * k];
                        let mut block = 0.0;
                        for t in k0..k1 {
                            block += arow[t] * f32::from(qrow[t]);
                        }
                        *a += block * scale;
                    }
                }
            }
            for (r, &a) in acc.iter().enumerate().take(rb) {
                c_rows[(i + r) * n + j] = a;
            }
        }
        i += rb;
    }
}

// ---------------------------------------------------------------------------
// Reductions (fixed 8-lane grouping)
// ---------------------------------------------------------------------------

#[inline(always)]
pub(crate) fn sum(x: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let mut chunks = x.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l += v;
        }
    }
    let mut acc = fold_lanes(lanes, |a, b| a + b);
    for &v in chunks.remainder() {
        acc += v;
    }
    acc
}

#[inline(always)]
pub(crate) fn sq_sum(x: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let mut chunks = x.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l += v * v;
        }
    }
    let mut acc = fold_lanes(lanes, |a, b| a + b);
    for &v in chunks.remainder() {
        acc += v * v;
    }
    acc
}

#[inline(always)]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for ((l, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *l += x * y;
        }
    }
    let mut acc = fold_lanes(lanes, |a, b| a + b);
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        acc += x * y;
    }
    acc
}

#[inline(always)]
pub(crate) fn max(x: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; LANES];
    let mut chunks = x.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l = l.max(v);
        }
    }
    let mut acc = fold_lanes(lanes, f32::max);
    for &v in chunks.remainder() {
        acc = acc.max(v);
    }
    acc
}

#[inline(always)]
pub(crate) fn min(x: &[f32]) -> f32 {
    let mut lanes = [f32::INFINITY; LANES];
    let mut chunks = x.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l = l.min(v);
        }
    }
    let mut acc = fold_lanes(lanes, f32::min);
    for &v in chunks.remainder() {
        acc = acc.min(v);
    }
    acc
}

// ---------------------------------------------------------------------------
// Fused row kernels
// ---------------------------------------------------------------------------

/// Softmax of one row: lane-chunked max and sum; the transcendental `exp`
/// stays the scalar `std` call per element (identical on every path).
#[inline(always)]
pub(crate) fn softmax_row(row: &[f32], out: &mut [f32]) {
    let m = max(row);
    for (o, &v) in out.iter_mut().zip(row) {
        *o = (v - m).exp();
    }
    let inv = 1.0 / sum(out);
    for v in out.iter_mut() {
        *v *= inv;
    }
}

/// Log-softmax of one row (same lane structure as [`softmax_row`]).
#[inline(always)]
pub(crate) fn log_softmax_row(row: &[f32], out: &mut [f32]) {
    let m = max(row);
    for (o, &v) in out.iter_mut().zip(row) {
        *o = (v - m).exp();
    }
    let lse = m + sum(out).ln();
    for (o, &v) in out.iter_mut().zip(row) {
        *o = v - lse;
    }
}

/// `(mean, biased variance)` of one row via lane-chunked sums.
#[inline(always)]
pub(crate) fn mean_var_row(row: &[f32]) -> (f32, f32) {
    let d = row.len().max(1) as f32;
    let mean = sum(row) / d;
    let mut lanes = [0.0f32; LANES];
    let mut chunks = row.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            let dv = v - mean;
            *l += dv * dv;
        }
    }
    let mut acc = fold_lanes(lanes, |a, b| a + b);
    for &v in chunks.remainder() {
        let dv = v - mean;
        acc += dv * dv;
    }
    (mean, acc / d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_has_fixed_grouping() {
        // 8-lane grouping: sum of 0..16 = (0+8)+(1+9)+... lane slots, then
        // pairwise folds — for these exact integers the value equals the
        // sequential sum, but the test pins the tail handling too.
        let xs: Vec<f32> = (0..19).map(|i| i as f32).collect();
        assert_eq!(sum(&xs), (0..19).sum::<i32>() as f32);
    }

    #[test]
    fn dot_matches_naive_to_rounding() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32 * 0.31).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32 * 0.17).cos()).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn max_min_cover_tail() {
        let mut xs = vec![0.0f32; 17];
        xs[16] = 9.0; // tail position
        xs[3] = -9.0;
        assert_eq!(max(&xs), 9.0);
        assert_eq!(min(&xs), -9.0);
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let row: Vec<f32> = (0..13).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
        let mut out = vec![0.0f32; 13];
        softmax_row(&row, &mut out);
        let s: f32 = out.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }
}
