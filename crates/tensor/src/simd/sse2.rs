//! SSE2 kernels (x86-64 baseline — always available there).
//!
//! Used when the host lacks AVX2/FMA. The micro-tile is 4×8 (4 rows × two
//! 4-lane XMM columns) with separate multiply and add (no FMA at this ISA
//! level, and using one would change rounding anyway). Elementwise and
//! reduction paths need no wrappers at this level: SSE2 *is* the x86-64
//! baseline, so the portable bodies already compile to it.
//!
//! Determinism note: SSE2 results differ from AVX2+FMA results (fused vs
//! separate rounding in the GEMM micro-kernel) but are bitwise stable
//! across thread counts and tilings for the same partition-invariance
//! reason — each `C` element accumulates along `k` in a single lane.

use std::arch::x86_64::*;

use crate::backend::Layout;
use crate::scratch::PooledBuf;

/// Micro-tile rows.
pub(super) const MR: usize = 4;
/// Micro-tile columns (two 4-lane XMM registers).
pub(super) const NR: usize = 8;
/// Rows of packed `A` per cache block (multiple of [`MR`]).
const MC: usize = 96;
/// Depth per packed block.
const KC: usize = 256;
/// Columns of packed `B` per panel (multiple of [`NR`]).
const NC: usize = 256;

/// Blocked GEMM over a contiguous row range of `C` — the SSE2 sibling of
/// [`super::avx2::gemm_rows`].
///
/// # Safety
///
/// Requires SSE2 (guaranteed on x86-64). Slice geometry must satisfy the
/// GEMM dimension invariants checked by the drivers in [`crate::kernels`].
#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn gemm_rows(
    layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
) {
    let rows = c_rows.len() / n;
    // uninit is fine: pack_a/pack_b fully overwrite every panel slot the
    // micro-kernel reads (including the zero padding)
    let mut apack = PooledBuf::uninit(MC * KC);
    let mut bpack = PooledBuf::uninit(KC * NC);
    for j0 in (0..n).step_by(NC) {
        let nb = NC.min(n - j0);
        let jpanels = nb.div_ceil(NR);
        for k0 in (0..k).step_by(KC) {
            let kb = KC.min(k - k0);
            super::pack_b(layout, b, k, n, k0, kb, j0, nb, NR, &mut bpack);
            for i0 in (0..rows).step_by(MC) {
                let mb = MC.min(rows - i0);
                super::pack_a(layout, a, m, k, row0 + i0, mb, k0, kb, MR, &mut apack);
                let ipanels = mb.div_ceil(MR);
                for jp in 0..jpanels {
                    let ncols = NR.min(nb - jp * NR);
                    let bp = bpack.as_ptr().add(jp * kb * NR);
                    for ip in 0..ipanels {
                        let mrows = MR.min(mb - ip * MR);
                        let ap = apack.as_ptr().add(ip * kb * MR);
                        let cptr = c_rows.as_mut_ptr().add((i0 + ip * MR) * n + j0 + jp * NR);
                        // SAFETY: ap/bp point at `kb`-deep packed panels,
                        // and cptr addresses an mrows×ncols window of
                        // c_rows with stride n (in bounds by construction
                        // of the tile grid above).
                        unsafe { mk4x8(kb, ap, bp, cptr, n, mrows, ncols) };
                    }
                }
            }
        }
    }
}

/// The 4×8 SSE2 micro-kernel: `C[mrows,ncols] += Ap·Bp` over one packed
/// depth run of `kb`. Multiply-then-add (two roundings per step).
///
/// # Safety
///
/// Requires SSE2. `ap` must be valid for `kb * MR` reads, `bp` for
/// `kb * NR` reads, and `c` for an `mrows × ncols` strided window with row
/// stride `c_stride`.
#[target_feature(enable = "sse2")]
unsafe fn mk4x8(
    kb: usize,
    ap: *const f32,
    bp: *const f32,
    c: *mut f32,
    c_stride: usize,
    mrows: usize,
    ncols: usize,
) {
    // SAFETY: (for every intrinsic below) SSE2 availability is the
    // function's safety contract; all pointer arithmetic stays within the
    // ranges documented above.
    unsafe {
        let mut acc00 = _mm_setzero_ps();
        let mut acc01 = _mm_setzero_ps();
        let mut acc10 = _mm_setzero_ps();
        let mut acc11 = _mm_setzero_ps();
        let mut acc20 = _mm_setzero_ps();
        let mut acc21 = _mm_setzero_ps();
        let mut acc30 = _mm_setzero_ps();
        let mut acc31 = _mm_setzero_ps();
        let mut a = ap;
        let mut b = bp;
        for _ in 0..kb {
            let b0 = _mm_loadu_ps(b);
            let b1 = _mm_loadu_ps(b.add(4));
            let a0 = _mm_set1_ps(*a);
            acc00 = _mm_add_ps(acc00, _mm_mul_ps(a0, b0));
            acc01 = _mm_add_ps(acc01, _mm_mul_ps(a0, b1));
            let a1 = _mm_set1_ps(*a.add(1));
            acc10 = _mm_add_ps(acc10, _mm_mul_ps(a1, b0));
            acc11 = _mm_add_ps(acc11, _mm_mul_ps(a1, b1));
            let a2 = _mm_set1_ps(*a.add(2));
            acc20 = _mm_add_ps(acc20, _mm_mul_ps(a2, b0));
            acc21 = _mm_add_ps(acc21, _mm_mul_ps(a2, b1));
            let a3 = _mm_set1_ps(*a.add(3));
            acc30 = _mm_add_ps(acc30, _mm_mul_ps(a3, b0));
            acc31 = _mm_add_ps(acc31, _mm_mul_ps(a3, b1));
            a = a.add(MR);
            b = b.add(NR);
        }
        let acc = [
            [acc00, acc01],
            [acc10, acc11],
            [acc20, acc21],
            [acc30, acc31],
        ];
        if mrows == MR && ncols == NR {
            for (r, pair) in acc.iter().enumerate() {
                let cr = c.add(r * c_stride);
                _mm_storeu_ps(cr, _mm_add_ps(_mm_loadu_ps(cr), pair[0]));
                let cr4 = cr.add(4);
                _mm_storeu_ps(cr4, _mm_add_ps(_mm_loadu_ps(cr4), pair[1]));
            }
        } else {
            let mut tmp = [0.0f32; MR * NR];
            for (r, pair) in acc.iter().enumerate() {
                _mm_storeu_ps(tmp.as_mut_ptr().add(r * NR), pair[0]);
                _mm_storeu_ps(tmp.as_mut_ptr().add(r * NR + 4), pair[1]);
            }
            for (r, trow) in tmp.chunks_exact(NR).enumerate().take(mrows) {
                for (j, &v) in trow.iter().enumerate().take(ncols) {
                    *c.add(r * c_stride + j) += v;
                }
            }
        }
    }
}
