//! Runtime-dispatched vectorized kernels backing
//! [`crate::backend::SimdBackend`].
//!
//! # Structure
//!
//! * [`portable`] — 8-wide chunked bodies with an explicit lane structure;
//!   the numeric *definition* of every elementwise op and reduction.
//! * [`avx2`] (x86-64) — a 6×16 FMA GEMM micro-tile, plus the portable
//!   bodies re-compiled inside `#[target_feature(enable = "avx2")]`
//!   wrappers (bitwise-identical results, wider codegen).
//! * [`sse2`] (x86-64) — a 4×8 multiply-add GEMM micro-tile for hosts
//!   without AVX2. Elementwise/reduction paths need no wrapper: SSE2 is
//!   the x86-64 baseline, so the portable bodies already compile to it.
//!
//! # Dispatch
//!
//! The host's [`Level`] is detected once (`std::arch` feature detection,
//! cached in a `OnceLock`) and every entry point branches on it. The level
//! is part of artifact provenance ([`level_name`]): GEMM results are
//! bitwise reproducible only for a fixed level (FMA fuses roundings),
//! while every non-GEMM op is bitwise identical across levels because all
//! levels execute the same portable body.

use std::sync::OnceLock;

use crate::backend::Layout;
use crate::conv::Window;
use crate::{im2col, kernels};

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
mod portable;
#[cfg(target_arch = "x86_64")]
mod sse2;

/// The instruction-set level the SIMD backend runs at on this host.
/// (Per-target `allow(dead_code)`: each target constructs only the
/// variants its `detect()` can return.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Level {
    /// AVX-512F detected: 8×32 ZMM GEMM micro-tile; non-GEMM ops run the
    /// AVX2-compiled portable bodies (wider codegen cannot change their
    /// lane-explicit results, and they are bandwidth-bound anyway).
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Avx512,
    /// AVX2 + FMA detected: 6×16 FMA GEMM micro-tile, AVX2 codegen for
    /// the portable bodies.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Avx2Fma,
    /// x86-64 baseline: 4×8 SSE2 GEMM micro-tile.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Sse2,
    /// Non-x86 targets: portable bodies only (autovectorized).
    #[cfg_attr(target_arch = "x86_64", allow(dead_code))]
    Portable,
}

fn detect() -> Level {
    #[cfg(target_arch = "x86_64")]
    {
        let avx2 = std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma");
        if avx2 && std::arch::is_x86_feature_detected!("avx512f") {
            Level::Avx512
        } else if avx2 {
            Level::Avx2Fma
        } else {
            Level::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Level::Portable
    }
}

/// The detected [`Level`], resolved once per process.
pub(crate) fn level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(detect)
}

/// Stable name of the detected level, recorded in benchmark and
/// golden-trace provenance.
pub(crate) fn level_name() -> &'static str {
    match level() {
        Level::Avx512 => "avx512f",
        Level::Avx2Fma => "avx2+fma",
        Level::Sse2 => "sse2",
        Level::Portable => "portable",
    }
}

/// Whether this host has a real vector unit for the SIMD backend to use
/// (drives the `auto` backend choice — on non-x86 targets the "SIMD"
/// paths would just be the portable loops).
pub(crate) fn host_has_vector_unit() -> bool {
    !matches!(level(), Level::Portable)
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// SIMD GEMM over a contiguous row range of `C` (serial; the caller owns
/// row sharding — see [`crate::backend::ComputeBackend::gemm_rows`]).
///
/// Products under [`kernels::SMALL_FLOPS`] fall back to the scalar kernel:
/// packing would dominate, and the gate depends only on the problem size,
/// so the choice is identical for every row partition.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_rows(
    layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
) {
    if m * k * n < kernels::SMALL_FLOPS {
        return kernels::gemm_rows_scalar(layout, m, k, n, a, b, c_rows, row0);
    }
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => {
            // SAFETY: `level()` returns Avx512 only after runtime
            // detection of avx512f on this host.
            unsafe { avx512::gemm_rows(layout, m, k, n, a, b, c_rows, row0) }
        }
        #[cfg(target_arch = "x86_64")]
        Level::Avx2Fma => {
            // SAFETY: `level()` returns Avx2Fma only after runtime
            // detection of both avx2 and fma on this host.
            unsafe { avx2::gemm_rows(layout, m, k, n, a, b, c_rows, row0) }
        }
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => {
            // SAFETY: SSE2 is part of the x86-64 baseline ABI.
            unsafe { sse2::gemm_rows(layout, m, k, n, a, b, c_rows, row0) }
        }
        _ => kernels::gemm_rows_scalar(layout, m, k, n, a, b, c_rows, row0),
    }
}

/// Packs an `mb × kb` block of `op(A)` into `mr`-major panels: panel `ip`
/// holds rows `ip·mr .. ip·mr+mr` as `apack[ip·kb·mr + p·mr + r]`, so the
/// micro-kernel reads one contiguous `mr`-group per depth step. Rows past
/// `mb` are zero-filled (the padded lanes compute garbage that is never
/// stored).
#[allow(clippy::too_many_arguments)]
pub(super) fn pack_a(
    layout: Layout,
    a: &[f32],
    m: usize,
    k: usize,
    row: usize,
    mb: usize,
    k0: usize,
    kb: usize,
    mr: usize,
    apack: &mut [f32],
) {
    let ipanels = mb.div_ceil(mr);
    for ip in 0..ipanels {
        let panel = &mut apack[ip * kb * mr..(ip + 1) * kb * mr];
        let rbase = ip * mr;
        let rn = mr.min(mb - rbase);
        match layout {
            Layout::Nn | Layout::Nt => {
                // A is [m, k]: read rows contiguously, scatter into the
                // mr-strided panel
                for r in 0..rn {
                    let src = &a[(row + rbase + r) * k + k0..(row + rbase + r) * k + k0 + kb];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * mr + r] = v;
                    }
                }
            }
            Layout::Tn => {
                // A is [k, m]: each depth row is already mr-contiguous
                for p in 0..kb {
                    let src = &a[(k0 + p) * m + row + rbase..(k0 + p) * m + row + rbase + rn];
                    panel[p * mr..p * mr + rn].copy_from_slice(src);
                }
            }
        }
        if rn < mr {
            for p in 0..kb {
                for slot in &mut panel[p * mr + rn..(p + 1) * mr] {
                    *slot = 0.0;
                }
            }
        }
    }
}

/// Packs a `kb × nb` panel of `op(B)` into `nr`-wide panels: panel `jp`
/// holds columns `j0+jp·nr .. +nr` as `bpack[jp·kb·nr + p·nr + j]`.
/// Columns past `nb` are zero-filled.
#[allow(clippy::too_many_arguments)]
pub(super) fn pack_b(
    layout: Layout,
    b: &[f32],
    k: usize,
    n: usize,
    k0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    nr: usize,
    bpack: &mut [f32],
) {
    let _ = k;
    let jpanels = nb.div_ceil(nr);
    for jp in 0..jpanels {
        let panel = &mut bpack[jp * kb * nr..(jp + 1) * kb * nr];
        let jbase = j0 + jp * nr;
        let jn = nr.min(nb - jp * nr);
        match layout {
            Layout::Nn | Layout::Tn => {
                // B is [k, n]: each depth row is nr-contiguous
                for p in 0..kb {
                    let dst = &mut panel[p * nr..(p + 1) * nr];
                    dst[..jn].copy_from_slice(&b[(k0 + p) * n + jbase..(k0 + p) * n + jbase + jn]);
                    for slot in &mut dst[jn..] {
                        *slot = 0.0;
                    }
                }
            }
            Layout::Nt => {
                // B is [n, k]: read its rows contiguously, scatter into
                // the nr-strided panel
                for j in 0..jn {
                    let src = &b[(jbase + j) * k + k0..(jbase + j) * k + k0 + kb];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * nr + j] = v;
                    }
                }
                if jn < nr {
                    for p in 0..kb {
                        for slot in &mut panel[p * nr + jn..(p + 1) * nr] {
                            *slot = 0.0;
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Elementwise / reductions / row kernels
// ---------------------------------------------------------------------------

/// Expands to a dispatcher that runs the AVX2-compiled wrapper when the
/// host level is [`Level::Avx2Fma`] and the portable body otherwise. Both
/// paths execute the identical lane-explicit float-operation order, so the
/// choice never changes results — only throughput.
macro_rules! dispatch {
    ($(#[$doc:meta] fn $name:ident($($arg:ident: $ty:ty),*) $(-> $ret:ty)?;)*) => {
        $(
            #[$doc]
            pub(crate) fn $name($($arg: $ty),*) $(-> $ret)? {
                match level() {
                    #[cfg(target_arch = "x86_64")]
                    Level::Avx512 | Level::Avx2Fma => {
                        // SAFETY: `detect()` returns Avx512 or Avx2Fma
                        // only after runtime detection of avx2 on this
                        // host (the wrapper enables nothing beyond avx2).
                        unsafe { avx2::$name($($arg),*) }
                    }
                    _ => portable::$name($($arg),*),
                }
            }
        )*
    };
}

dispatch! {
    /// `out[i] = a[i] + b[i]`.
    fn add_slices(a: &[f32], b: &[f32], out: &mut [f32]);
    /// `out[i] = a[i] - b[i]`.
    fn sub_slices(a: &[f32], b: &[f32], out: &mut [f32]);
    /// `out[i] = a[i] * b[i]`.
    fn mul_slices(a: &[f32], b: &[f32], out: &mut [f32]);
    /// `out[i] = a[i] / b[i]`.
    fn div_slices(a: &[f32], b: &[f32], out: &mut [f32]);
    /// `y[i] += alpha * x[i]`.
    fn axpy(alpha: f32, x: &[f32], y: &mut [f32]);
    /// `out[i] = src[i] * s`.
    fn scale(s: f32, src: &[f32], out: &mut [f32]);
    /// `out[i] = src[i] + s`.
    fn add_scalar(s: f32, src: &[f32], out: &mut [f32]);
    /// `out[i] = max(src[i], 0)`.
    fn relu(src: &[f32], out: &mut [f32]);
    /// 8-lane chunked sum with a fixed pairwise fold.
    fn sum(x: &[f32]) -> f32;
    /// 8-lane chunked sum of squares.
    fn sq_sum(x: &[f32]) -> f32;
    /// 8-lane chunked dot product.
    fn dot(a: &[f32], b: &[f32]) -> f32;
    /// 8-lane chunked maximum (`-inf` when empty).
    fn max(x: &[f32]) -> f32;
    /// 8-lane chunked minimum (`+inf` when empty).
    fn min(x: &[f32]) -> f32;
    /// Stable softmax of one row.
    fn softmax_row(row: &[f32], out: &mut [f32]);
    /// Stable log-softmax of one row.
    fn log_softmax_row(row: &[f32], out: &mut [f32]);
    /// `(mean, biased variance)` of one row.
    fn mean_var_row(row: &[f32]) -> (f32, f32);
    /// f32 → IEEE binary16 bits, round-to-nearest-even.
    fn f32_to_f16_slice(src: &[f32], dst: &mut [u16]);
    /// IEEE binary16 bits → f32 (exact).
    fn f16_to_f32_slice(src: &[u16], dst: &mut [f32]);
    /// f32 → bfloat16 bits, round-to-nearest-even.
    fn f32_to_bf16_slice(src: &[f32], dst: &mut [u16]);
    /// bfloat16 bits → f32 (exact).
    fn bf16_to_f32_slice(src: &[u16], dst: &mut [f32]);
    /// Q8_0 NT GEMM over a contiguous row range of `C` (serial; caller shards rows).
    fn qgemm_nt_rows(
        k: usize,
        n: usize,
        a_rows: &[f32],
        b_scales: &[u16],
        b_quants: &[i8],
        c_rows: &mut [f32]
    );
}

// ---------------------------------------------------------------------------
// Conv lowering
// ---------------------------------------------------------------------------

/// im2col of one input plane with a stride-1 segment fast path: for
/// stride 1 every `(ky, kx, oy)` output row is one contiguous source
/// segment (clipped to the padding window), so the unroll becomes `K²·OH`
/// memcpys instead of `K²·OH·OW` scalar moves. Other strides fall back to
/// the scalar loop — identical values either way (this is pure data
/// movement, no arithmetic).
#[allow(clippy::too_many_arguments)]
pub(crate) fn im2col_channel(
    plane: &[f32],
    h: usize,
    w: usize,
    win: Window,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    if win.stride != 1 {
        return im2col::im2col_channel_scalar(plane, h, w, win, oh, ow, cols);
    }
    let k = win.kernel;
    let pad = win.padding;
    let ohw = oh * ow;
    for ky in 0..k {
        for kx in 0..k {
            let base = (ky * k + kx) * ohw;
            // ox range whose input column ix = ox + kx - pad lands in
            // [0, w); outside it `cols` keeps its caller-zeroed padding
            let ox_lo = pad.saturating_sub(kx);
            let ox_hi = ow.min((w + pad).saturating_sub(kx));
            if ox_lo >= ox_hi {
                continue;
            }
            let ix0 = ox_lo + kx - pad;
            for oy in 0..oh {
                let iy = (oy + ky) as isize - pad as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let src = iy as usize * w + ix0;
                cols[base + oy * ow + ox_lo..base + oy * ow + ox_hi]
                    .copy_from_slice(&plane[src..src + (ox_hi - ox_lo)]);
            }
        }
    }
}

/// col2im of one channel: delegates to the shared compensated scatter-add.
/// Per-element Kahan streams run in the same `(ky, kx, oy, ox)` order on
/// every backend, so this is bitwise identical to the scalar backend.
#[allow(clippy::too_many_arguments)]
pub(crate) fn col2im_channel(
    cols: &[f32],
    h: usize,
    w: usize,
    win: Window,
    oh: usize,
    ow: usize,
    plane: &mut [f32],
) {
    im2col::col2im_channel_compensated(cols, h, w, win, oh, ow, plane);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prng;

    fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn simd_gemm_matches_naive_across_layouts() {
        // sizes above SMALL_FLOPS so the vector micro-tile actually runs,
        // with shapes that exercise edge tiles in both m and n
        for &(m, k, n) in &[(37, 64, 41), (96, 300, 64), (130, 257, 80)] {
            let mut rng = Prng::new((m * 31 + k * 7 + n) as u64);
            let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let expect = naive_nn(m, k, n, &a, &b);
            let mut c = vec![0.0f32; m * n];
            gemm_rows(Layout::Nn, m, k, n, &a, &b, &mut c, 0);
            for (i, (x, y)) in c.iter().zip(&expect).enumerate() {
                let tol = 1e-4 * (1.0 + y.abs()) * (k as f32).sqrt();
                assert!((x - y).abs() <= tol, "({m},{k},{n})[{i}]: {x} vs {y}");
            }

            // Tn: A stored [k, m]
            let mut at = vec![0.0f32; k * m];
            for i in 0..m {
                for p in 0..k {
                    at[p * m + i] = a[i * k + p];
                }
            }
            let mut c_tn = vec![0.0f32; m * n];
            gemm_rows(Layout::Tn, m, k, n, &at, &b, &mut c_tn, 0);
            // Nt: B stored [n, k]
            let mut bt = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            let mut c_nt = vec![0.0f32; m * n];
            gemm_rows(Layout::Nt, m, k, n, &a, &bt, &mut c_nt, 0);
            for (i, y) in expect.iter().enumerate() {
                let tol = 1e-4 * (1.0 + y.abs()) * (k as f32).sqrt();
                assert!((c_tn[i] - y).abs() <= tol, "tn ({m},{k},{n})[{i}]");
                assert!((c_nt[i] - y).abs() <= tol, "nt ({m},{k},{n})[{i}]");
            }
        }
    }

    #[test]
    fn simd_gemm_row_partition_is_bitwise_invariant() {
        let (m, k, n) = (67, 129, 43);
        let mut rng = Prng::new(4242);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut whole = vec![0.0f32; m * n];
        gemm_rows(Layout::Nn, m, k, n, &a, &b, &mut whole, 0);
        // compute the same product in uneven row chunks
        let mut parts = vec![0.0f32; m * n];
        for (row0, rows) in [(0usize, 11usize), (11, 29), (40, 27)] {
            gemm_rows(
                Layout::Nn,
                m,
                k,
                n,
                &a,
                &b,
                &mut parts[row0 * n..(row0 + rows) * n],
                row0,
            );
        }
        for (i, (x, y)) in whole.iter().zip(&parts).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "row-partition divergence at {i}");
        }
    }

    #[test]
    fn im2col_fast_path_matches_scalar_with_padding() {
        let (h, w) = (7, 9);
        let win = Window {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let (oh, ow) = (7, 9);
        let plane: Vec<f32> = (0..h * w).map(|v| v as f32 + 1.0).collect();
        let len = 9 * oh * ow;
        let mut fast = vec![0.0f32; len];
        im2col_channel(&plane, h, w, win, oh, ow, &mut fast);
        let mut slow = vec![0.0f32; len];
        im2col::im2col_channel_scalar(&plane, h, w, win, oh, ow, &mut slow);
        assert_eq!(fast, slow);
    }

    #[test]
    fn level_is_detected_and_named() {
        let name = level_name();
        assert!(["avx512f", "avx2+fma", "sse2", "portable"].contains(&name));
    }
}
