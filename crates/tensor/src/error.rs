use std::error::Error;
use std::fmt;

/// Error type for all fallible tensor operations.
///
/// Every variant carries enough context to diagnose the failing call without
/// a debugger: the offending shapes or sizes are embedded in the message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The product of the requested shape does not match the data length.
    ShapeDataMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Actual element count supplied.
        data_len: usize,
    },
    /// Two operand shapes cannot be broadcast together.
    BroadcastMismatch {
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// Shapes are incompatible for matrix multiplication.
    MatmulMismatch {
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Tensor rank.
        ndim: usize,
    },
    /// A reshape changed the total number of elements.
    ReshapeMismatch {
        /// Original shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An operation received a tensor of unsupported rank.
    RankMismatch {
        /// What the operation expected (e.g. "2-D matrix").
        expected: &'static str,
        /// The shape actually received.
        got: Vec<usize>,
    },
    /// Convolution/pooling geometry is invalid (e.g. kernel larger than
    /// padded input, or zero stride).
    InvalidGeometry {
        /// Human-readable description of the geometry violation.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => write!(
                f,
                "shape {shape:?} requires {} elements but {data_len} were provided",
                shape.iter().product::<usize>()
            ),
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "shapes {lhs:?} and {rhs:?} cannot be broadcast together")
            }
            TensorError::MatmulMismatch { lhs, rhs } => {
                write!(f, "matmul shapes {lhs:?} x {rhs:?} are incompatible")
            }
            TensorError::AxisOutOfRange { axis, ndim } => {
                write!(f, "axis {axis} out of range for rank-{ndim} tensor")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape {from:?} into {to:?}: element counts differ"
                )
            }
            TensorError::RankMismatch { expected, got } => {
                write!(f, "expected {expected}, got shape {got:?}")
            }
            TensorError::InvalidGeometry { reason } => {
                write!(f, "invalid convolution/pooling geometry: {reason}")
            }
        }
    }
}

impl Error for TensorError {}
