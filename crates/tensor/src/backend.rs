//! The compute-backend abstraction: every numeric kernel in the crate is
//! reachable through the [`ComputeBackend`] trait, with two implementations
//! behind one dispatch point.
//!
//! * [`ScalarBackend`] — the historical paths in [`crate::kernels`],
//!   [`crate::im2col`], and the serial folds in `Tensor`: plain Rust loops
//!   whose float order is the crate's long-standing numerical contract.
//! * [`SimdBackend`] — runtime-dispatched vectorized microkernels from
//!   [`crate::simd`]: `std::arch` AVX2/FMA where the host supports it, an
//!   SSE2 micro-tile otherwise on x86-64, and portable 8-wide chunked loops
//!   (which the autovectorizer lowers) everywhere else.
//!
//! # Dispatch order
//!
//! [`active`] resolves, in priority order:
//!
//! 1. the innermost [`with_backend`] scope on the current thread (tests),
//! 2. the process-wide pin from [`set_backend`] (the `--backend` CLI flag),
//! 3. the `REX_BACKEND` env var (`scalar` | `simd` | `auto`),
//! 4. `auto`: [`SimdBackend`] when the host has a vector unit worth using,
//!    [`ScalarBackend`] otherwise.
//!
//! Drivers resolve the backend **once** per entry point, before any work is
//! sharded onto [`rex_pool`], and capture the resolved reference in their
//! parallel closures — so a thread-local [`with_backend`] override applies
//! to the whole operation even though chunk bodies run on worker threads.
//!
//! # Determinism scope
//!
//! Bitwise determinism holds *within* a backend: for a fixed backend (and,
//! for [`SimdBackend`], a fixed host ISA level), every op produces
//! bit-identical results at any thread count, because chunk grids depend
//! only on problem size and per-element accumulation order is independent
//! of the partition (see `rex_pool`). *Across* backends results agree only
//! to rounding (reductions reassociate; the SIMD GEMM uses FMA), which is
//! why the naive [`crate::reference`] oracles remain the parity court for
//! both.

use std::cell::RefCell;
use std::sync::OnceLock;

use crate::conv::Window;
use crate::{im2col, kernels, simd};

/// Identifies a compute backend (the value of `REX_BACKEND` / `--backend`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The historical scalar kernels ([`ScalarBackend`]).
    Scalar,
    /// Runtime-dispatched vectorized kernels ([`SimdBackend`]).
    Simd,
}

impl BackendKind {
    /// Parses a backend name as accepted by `REX_BACKEND` / `--backend`.
    /// `auto` resolves to the detected best backend for this host.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for anything other than
    /// `scalar` | `simd` | `auto`.
    pub fn parse(name: &str) -> Result<BackendKind, String> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(BackendKind::Scalar),
            "simd" => Ok(BackendKind::Simd),
            "auto" => Ok(auto_kind()),
            other => Err(format!(
                "unknown backend {other:?} (expected scalar | simd | auto)"
            )),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Simd => "simd",
        })
    }
}

/// Operand layout of a GEMM `C += op(A)·op(B)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `A[m,k] · B[k,n]`
    Nn,
    /// `A[k,m]ᵀ · B[k,n]`
    Tn,
    /// `A[m,k] · B[n,k]ᵀ`
    Nt,
}

/// The tensor crate's compute interface: serial kernels over slices.
///
/// Threading is *not* part of the trait — drivers in [`crate::kernels`],
/// [`crate::im2col`], and `Tensor` own the chunk grids (which are part of
/// the determinism contract) and call these methods from chunk bodies.
/// Every method must be deterministic: for fixed inputs the output is a
/// pure function of the arguments, with a fixed float-operation order.
pub trait ComputeBackend: Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Stable short name (`"scalar"` / `"simd"`), used in artifacts.
    fn name(&self) -> &'static str;

    /// The instruction-set level the backend executes with on this host
    /// (`"none"` for scalar; `"avx2+fma"` / `"sse2"` / `"portable"` for
    /// SIMD). Part of golden-trace provenance: bitwise reproducibility of
    /// GEMM-derived results is scoped to a fixed (backend, level) pair.
    fn simd_level(&self) -> &'static str;

    // -- GEMM ------------------------------------------------------------

    /// Computes rows `row0 .. row0 + c_rows.len()/n` of `C += op(A)·op(B)`
    /// into `c_rows` (a contiguous row range of the full `[m, n]` output).
    /// Serial: the caller owns row sharding. Accumulation order along `k`
    /// must depend only on `(k, layout)` — never on the row range — so any
    /// row partition is bitwise identical.
    #[allow(clippy::too_many_arguments)]
    fn gemm_rows(
        &self,
        layout: Layout,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c_rows: &mut [f32],
        row0: usize,
    );

    // -- Elementwise slices ----------------------------------------------

    /// `out[i] = a[i] + b[i]` (equal lengths).
    fn add_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]);
    /// `out[i] = a[i] - b[i]` (equal lengths).
    fn sub_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]);
    /// `out[i] = a[i] * b[i]` (equal lengths).
    fn mul_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]);
    /// `out[i] = a[i] / b[i]` (equal lengths).
    fn div_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]);
    /// `y[i] += alpha * x[i]` (equal lengths; the optimizer hot loop).
    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]);
    /// `out[i] = src[i] * s`.
    fn scale(&self, s: f32, src: &[f32], out: &mut [f32]);
    /// `out[i] = src[i] + s`.
    fn add_scalar(&self, s: f32, src: &[f32], out: &mut [f32]);
    /// `out[i] = max(src[i], 0)`.
    fn relu(&self, src: &[f32], out: &mut [f32]);

    // -- Reductions ------------------------------------------------------

    /// Sum of all elements, in the backend's fixed accumulation order.
    fn sum(&self, x: &[f32]) -> f32;
    /// Sum of squares, in the backend's fixed accumulation order.
    fn sq_sum(&self, x: &[f32]) -> f32;
    /// Dot product of equal-length slices.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;
    /// Maximum element (`-inf` for an empty slice).
    fn max(&self, x: &[f32]) -> f32;
    /// Minimum element (`+inf` for an empty slice).
    fn min(&self, x: &[f32]) -> f32;

    // -- Precision conversions -------------------------------------------

    /// `dst[i] = f16_bits(src[i])`, round-to-nearest-even. Conversions are
    /// pure per-element bit functions, so every backend produces identical
    /// bits (unlike reductions, which only agree within a backend).
    fn f32_to_f16_slice(&self, src: &[f32], dst: &mut [u16]);
    /// `dst[i] = f32(src[i])` from IEEE binary16 bits (exact).
    fn f16_to_f32_slice(&self, src: &[u16], dst: &mut [f32]);
    /// `dst[i] = bf16_bits(src[i])`, round-to-nearest-even.
    fn f32_to_bf16_slice(&self, src: &[f32], dst: &mut [u16]);
    /// `dst[i] = f32(src[i])` from bfloat16 bits (exact).
    fn bf16_to_f32_slice(&self, src: &[u16], dst: &mut [f32]);

    // -- Quantized GEMM --------------------------------------------------

    /// `C[rows, n] = A[rows, k] · Bq[n, k]ᵀ` over a contiguous row range of
    /// the output, where `Bq` is Q8_0-quantized along `k`
    /// ([`crate::dtype::quantize_q8_0`] layout: `b_quants` is `n × k`
    /// quants, `b_scales` is `n × k.div_ceil(QK)` f16 scale bits). Serial:
    /// the caller owns row sharding, and per-element accumulation order
    /// must depend only on `k` so any row partition is bitwise identical.
    /// Computes on the blocks directly — no dense f32 copy of `B`.
    fn qgemm_nt_rows(
        &self,
        k: usize,
        n: usize,
        a_rows: &[f32],
        b_scales: &[u16],
        b_quants: &[i8],
        c_rows: &mut [f32],
    );

    // -- Fused row kernels -----------------------------------------------

    /// Numerically-stable softmax of one row into `out`.
    fn softmax_row(&self, row: &[f32], out: &mut [f32]);
    /// Numerically-stable log-softmax of one row into `out`.
    fn log_softmax_row(&self, row: &[f32], out: &mut [f32]);
    /// `(mean, biased variance)` of one row (the layer-norm statistics).
    fn mean_var_row(&self, row: &[f32]) -> (f32, f32);

    // -- Conv lowering ---------------------------------------------------

    /// Unrolls one `[H, W]` input plane into its `[K·K, OH·OW]` block of
    /// the im2col patch matrix (`cols` pre-zeroed by the caller).
    #[allow(clippy::too_many_arguments)]
    fn im2col_channel(
        &self,
        plane: &[f32],
        h: usize,
        w: usize,
        win: Window,
        oh: usize,
        ow: usize,
        cols: &mut [f32],
    );

    /// Adjoint of [`ComputeBackend::im2col_channel`]: scatter-adds one
    /// channel's `[K·K, OH·OW]` gradient block onto its `[H, W]` plane with
    /// compensated (Kahan) accumulation.
    #[allow(clippy::too_many_arguments)]
    fn col2im_channel(
        &self,
        cols: &[f32],
        h: usize,
        w: usize,
        win: Window,
        oh: usize,
        ow: usize,
        plane: &mut [f32],
    );
}

// ---------------------------------------------------------------------------
// ScalarBackend
// ---------------------------------------------------------------------------

/// The historical scalar kernels: plain Rust loops with the crate's
/// long-standing sequential accumulation order. Bit-for-bit identical to
/// the pre-backend-refactor code on every path.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarBackend;

impl ComputeBackend for ScalarBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Scalar
    }

    fn name(&self) -> &'static str {
        "scalar"
    }

    fn simd_level(&self) -> &'static str {
        "none"
    }

    fn gemm_rows(
        &self,
        layout: Layout,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c_rows: &mut [f32],
        row0: usize,
    ) {
        kernels::gemm_rows_scalar(layout, m, k, n, a, b, c_rows, row0);
    }

    fn add_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x + y;
        }
    }

    fn sub_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x - y;
        }
    }

    fn mul_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x * y;
        }
    }

    fn div_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x / y;
        }
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        for (a, &b) in y.iter_mut().zip(x) {
            *a += alpha * b;
        }
    }

    fn scale(&self, s: f32, src: &[f32], out: &mut [f32]) {
        for (o, &x) in out.iter_mut().zip(src) {
            *o = x * s;
        }
    }

    fn add_scalar(&self, s: f32, src: &[f32], out: &mut [f32]) {
        for (o, &x) in out.iter_mut().zip(src) {
            *o = x + s;
        }
    }

    fn relu(&self, src: &[f32], out: &mut [f32]) {
        for (o, &x) in out.iter_mut().zip(src) {
            *o = x.max(0.0);
        }
    }

    fn sum(&self, x: &[f32]) -> f32 {
        x.iter().sum()
    }

    fn sq_sum(&self, x: &[f32]) -> f32 {
        x.iter().map(|v| v * v).sum()
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    fn max(&self, x: &[f32]) -> f32 {
        x.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v))
    }

    fn min(&self, x: &[f32]) -> f32 {
        x.iter().fold(f32::INFINITY, |m, &v| m.min(v))
    }

    fn f32_to_f16_slice(&self, src: &[f32], dst: &mut [u16]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = crate::dtype::f32_to_f16_bits(s);
        }
    }

    fn f16_to_f32_slice(&self, src: &[u16], dst: &mut [f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = crate::dtype::f16_bits_to_f32(s);
        }
    }

    fn f32_to_bf16_slice(&self, src: &[f32], dst: &mut [u16]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = crate::dtype::f32_to_bf16_bits(s);
        }
    }

    fn bf16_to_f32_slice(&self, src: &[u16], dst: &mut [f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = crate::dtype::bf16_bits_to_f32(s);
        }
    }

    fn qgemm_nt_rows(
        &self,
        k: usize,
        n: usize,
        a_rows: &[f32],
        b_scales: &[u16],
        b_quants: &[i8],
        c_rows: &mut [f32],
    ) {
        // serial fold: one running f32 sum per k-block, scaled and added
        // in block order — the scalar sibling of the lane-grouped SIMD body
        use crate::dtype::{f16_bits_to_f32, QK};
        let rows = c_rows.len().checked_div(n).unwrap_or(0);
        let bpr = k.div_ceil(QK);
        for i in 0..rows {
            let a = &a_rows[i * k..(i + 1) * k];
            for j in 0..n {
                let qrow = &b_quants[j * k..(j + 1) * k];
                let srow = &b_scales[j * bpr..(j + 1) * bpr];
                let mut acc = 0.0f32;
                for (bi, &sbits) in srow.iter().enumerate() {
                    let k0 = bi * QK;
                    let k1 = (k0 + QK).min(k);
                    let mut block = 0.0f32;
                    for t in k0..k1 {
                        block += a[t] * f32::from(qrow[t]);
                    }
                    acc += block * f16_bits_to_f32(sbits);
                }
                c_rows[i * n + j] = acc;
            }
        }
    }

    fn softmax_row(&self, row: &[f32], out: &mut [f32]) {
        let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for (o, &v) in out.iter_mut().zip(row) {
            let e = (v - m).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for v in out.iter_mut() {
            *v *= inv;
        }
    }

    fn log_softmax_row(&self, row: &[f32], out: &mut [f32]) {
        let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
        for (o, &v) in out.iter_mut().zip(row) {
            *o = v - lse;
        }
    }

    fn mean_var_row(&self, row: &[f32]) -> (f32, f32) {
        let d = row.len().max(1) as f32;
        let mean = row.iter().sum::<f32>() / d;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d;
        (mean, var)
    }

    fn im2col_channel(
        &self,
        plane: &[f32],
        h: usize,
        w: usize,
        win: Window,
        oh: usize,
        ow: usize,
        cols: &mut [f32],
    ) {
        im2col::im2col_channel_scalar(plane, h, w, win, oh, ow, cols);
    }

    fn col2im_channel(
        &self,
        cols: &[f32],
        h: usize,
        w: usize,
        win: Window,
        oh: usize,
        ow: usize,
        plane: &mut [f32],
    ) {
        im2col::col2im_channel_compensated(cols, h, w, win, oh, ow, plane);
    }
}

// ---------------------------------------------------------------------------
// SimdBackend
// ---------------------------------------------------------------------------

/// Runtime-dispatched vectorized kernels (see [`crate::simd`]).
///
/// Reductions use a fixed 8-lane chunked accumulation with a pairwise
/// horizontal fold, identical whether the loop is lowered to vector or
/// scalar instructions — so elementwise and reduction results are bitwise
/// reproducible across ISA levels. The GEMM micro-tile is the exception:
/// its AVX2 path uses FMA (single rounding per multiply–add) and therefore
/// matches other levels only to rounding; [`ComputeBackend::simd_level`]
/// records which level produced an artifact.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimdBackend;

impl ComputeBackend for SimdBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Simd
    }

    fn name(&self) -> &'static str {
        "simd"
    }

    fn simd_level(&self) -> &'static str {
        simd::level_name()
    }

    fn gemm_rows(
        &self,
        layout: Layout,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c_rows: &mut [f32],
        row0: usize,
    ) {
        simd::gemm_rows(layout, m, k, n, a, b, c_rows, row0);
    }

    fn add_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        simd::add_slices(a, b, out);
    }

    fn sub_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        simd::sub_slices(a, b, out);
    }

    fn mul_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        simd::mul_slices(a, b, out);
    }

    fn div_slices(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        simd::div_slices(a, b, out);
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        simd::axpy(alpha, x, y);
    }

    fn scale(&self, s: f32, src: &[f32], out: &mut [f32]) {
        simd::scale(s, src, out);
    }

    fn add_scalar(&self, s: f32, src: &[f32], out: &mut [f32]) {
        simd::add_scalar(s, src, out);
    }

    fn relu(&self, src: &[f32], out: &mut [f32]) {
        simd::relu(src, out);
    }

    fn sum(&self, x: &[f32]) -> f32 {
        simd::sum(x)
    }

    fn sq_sum(&self, x: &[f32]) -> f32 {
        simd::sq_sum(x)
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        simd::dot(a, b)
    }

    fn max(&self, x: &[f32]) -> f32 {
        simd::max(x)
    }

    fn min(&self, x: &[f32]) -> f32 {
        simd::min(x)
    }

    fn f32_to_f16_slice(&self, src: &[f32], dst: &mut [u16]) {
        simd::f32_to_f16_slice(src, dst);
    }

    fn f16_to_f32_slice(&self, src: &[u16], dst: &mut [f32]) {
        simd::f16_to_f32_slice(src, dst);
    }

    fn f32_to_bf16_slice(&self, src: &[f32], dst: &mut [u16]) {
        simd::f32_to_bf16_slice(src, dst);
    }

    fn bf16_to_f32_slice(&self, src: &[u16], dst: &mut [f32]) {
        simd::bf16_to_f32_slice(src, dst);
    }

    fn qgemm_nt_rows(
        &self,
        k: usize,
        n: usize,
        a_rows: &[f32],
        b_scales: &[u16],
        b_quants: &[i8],
        c_rows: &mut [f32],
    ) {
        simd::qgemm_nt_rows(k, n, a_rows, b_scales, b_quants, c_rows);
    }

    fn softmax_row(&self, row: &[f32], out: &mut [f32]) {
        simd::softmax_row(row, out);
    }

    fn log_softmax_row(&self, row: &[f32], out: &mut [f32]) {
        simd::log_softmax_row(row, out);
    }

    fn mean_var_row(&self, row: &[f32]) -> (f32, f32) {
        simd::mean_var_row(row)
    }

    fn im2col_channel(
        &self,
        plane: &[f32],
        h: usize,
        w: usize,
        win: Window,
        oh: usize,
        ow: usize,
        cols: &mut [f32],
    ) {
        simd::im2col_channel(plane, h, w, win, oh, ow, cols);
    }

    fn col2im_channel(
        &self,
        cols: &[f32],
        h: usize,
        w: usize,
        win: Window,
        oh: usize,
        ow: usize,
        plane: &mut [f32],
    ) {
        simd::col2im_channel(cols, h, w, win, oh, ow, plane);
    }
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

static SCALAR: ScalarBackend = ScalarBackend;
static SIMD: SimdBackend = SimdBackend;

static CONFIGURED: OnceLock<BackendKind> = OnceLock::new();

thread_local! {
    /// Scoped overrides installed by `with_backend` (innermost last).
    static OVERRIDE: RefCell<Vec<BackendKind>> = const { RefCell::new(Vec::new()) };
}

/// The backend `auto` resolves to on this host: SIMD when a vector unit is
/// available (x86-64 always qualifies — SSE2 is baseline), scalar on
/// targets where the "vector" path would just be the portable loops.
fn auto_kind() -> BackendKind {
    if simd::host_has_vector_unit() {
        BackendKind::Simd
    } else {
        BackendKind::Scalar
    }
}

fn resolve_default() -> BackendKind {
    match std::env::var("REX_BACKEND") {
        Ok(raw) => match BackendKind::parse(&raw) {
            Ok(kind) => kind,
            Err(msg) => panic!("REX_BACKEND: {msg}"),
        },
        Err(_) => auto_kind(),
    }
}

/// Returns the process-wide backend kind, resolving (and caching) it on
/// first call: [`set_backend`] > `REX_BACKEND` > auto-detection.
pub fn kind() -> BackendKind {
    *CONFIGURED.get_or_init(resolve_default)
}

/// Pins the process-wide backend, overriding `REX_BACKEND`.
///
/// Must be called before the first dispatched op (CLI flag parsing is the
/// intended call site). Returns an error if the backend has already been
/// resolved to a different kind — compute must not silently switch
/// numerics mid-process.
///
/// # Errors
///
/// Returns a descriptive message when the backend was already resolved.
pub fn set_backend(kind: BackendKind) -> Result<(), String> {
    match CONFIGURED.set(kind) {
        Ok(()) => Ok(()),
        Err(_) if crate::backend::kind() == kind => Ok(()),
        Err(_) => Err(format!(
            "compute backend already resolved to {} (set --backend before any compute)",
            crate::backend::kind()
        )),
    }
}

/// Runs `f` with `kind` as the active backend for the calling thread
/// (drivers propagate it into their parallel chunk bodies by resolving the
/// backend before sharding). Nestable; the innermost scope wins. Used by
/// the backend-parity suite and kernel-bench to compare backends within
/// one process.
pub fn with_backend<R>(kind: BackendKind, f: impl FnOnce() -> R) -> R {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(kind));
    let _guard = PopGuard;
    f()
}

/// The active backend for the current thread: the innermost
/// [`with_backend`] override if one is installed, otherwise the
/// process-wide [`kind`]. Drivers call this **once** per entry point and
/// pass the reference into their chunk bodies.
pub fn active() -> &'static dyn ComputeBackend {
    let kind = OVERRIDE
        .with(|o| o.borrow().last().copied())
        .unwrap_or_else(kind);
    for_kind(kind)
}

/// The backend instance for an explicit kind.
pub fn for_kind(kind: BackendKind) -> &'static dyn ComputeBackend {
    match kind {
        BackendKind::Scalar => &SCALAR,
        BackendKind::Simd => &SIMD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(BackendKind::parse("scalar").unwrap(), BackendKind::Scalar);
        assert_eq!(BackendKind::parse("SIMD").unwrap(), BackendKind::Simd);
        assert!(BackendKind::parse("auto").is_ok());
        assert!(BackendKind::parse("gpu").is_err());
    }

    #[test]
    fn with_backend_overrides_and_restores() {
        let outer = active().kind();
        with_backend(BackendKind::Scalar, || {
            assert_eq!(active().kind(), BackendKind::Scalar);
            with_backend(BackendKind::Simd, || {
                assert_eq!(active().kind(), BackendKind::Simd);
            });
            assert_eq!(active().kind(), BackendKind::Scalar);
        });
        assert_eq!(active().kind(), outer);
    }

    #[test]
    fn scalar_backend_matches_historical_folds() {
        let be = for_kind(BackendKind::Scalar);
        let xs: Vec<f32> = (0..100).map(|i| (i as f32 * 0.7).sin()).collect();
        assert_eq!(be.sum(&xs).to_bits(), xs.iter().sum::<f32>().to_bits());
        assert_eq!(
            be.max(&xs).to_bits(),
            xs.iter()
                .fold(f32::NEG_INFINITY, |m, &v| m.max(v))
                .to_bits()
        );
    }
}
