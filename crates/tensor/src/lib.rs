//! # rex-tensor
//!
//! A small, dependency-free, row-major `f32` tensor engine built for the
//! [REX budgeted-training reproduction](https://arxiv.org/abs/2107.04197).
//!
//! The crate provides exactly what a from-scratch CPU deep-learning stack
//! needs and nothing more:
//!
//! * [`Tensor`] — contiguous row-major storage with shape metadata,
//!   constructors, elementwise arithmetic with NumPy-style broadcasting,
//!   reductions, matrix multiplication, and activations.
//! * [`backend`] — the [`backend::ComputeBackend`] trait behind every
//!   numeric kernel: the historical [`backend::ScalarBackend`] and a
//!   runtime-dispatched [`backend::SimdBackend`] (AVX2/FMA, SSE2, or
//!   portable 8-wide chunked loops), selected via `REX_BACKEND` /
//!   `--backend` / auto-detection.
//! * [`kernels`] — the blocked, register-tiled f32 GEMM every matrix
//!   product lowers onto, with optional `REX_NUM_THREADS` row sharding.
//! * [`conv`] — 2-D convolution and pooling lowered onto the GEMM via
//!   [`im2col`], with explicit backward passes (consumed by
//!   `rex-autograd`) and pooled scratch buffers ([`scratch`]).
//! * [`reference`] — the seed's naive kernels, kept as the parity-test
//!   oracle (for **both** backends) and the `kernel-bench` baseline.
//! * [`rng`] — a deterministic xoshiro256\*\*-based PRNG ([`rng::Prng`]) with
//!   uniform/normal sampling and weight-initialisation helpers, so every
//!   experiment in the workspace is seed-reproducible across platforms.
//!
//! # Example
//!
//! ```
//! use rex_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::ones(&[2, 2]);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data(), &[3.0, 3.0, 7.0, 7.0]);
//! # Ok::<(), rex_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![deny(clippy::missing_safety_doc)]
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod backend;
pub mod conv;
pub mod dtype;
mod error;
pub mod im2col;
pub mod kernels;
pub mod ops;
pub mod reference;
pub mod rng;
pub mod scratch;
mod shape;
mod simd;
pub mod storage;
mod tensor;

pub use backend::{BackendKind, ComputeBackend};
pub use dtype::DType;
pub use error::TensorError;
pub use rng::Prng;
pub use shape::{broadcast_shapes, strides_for};
pub use storage::Storage;
pub use tensor::Tensor;
