//! `rex-pool` — a zero-dependency persistent worker-thread pool with a
//! *deterministic* work-partitioning contract.
//!
//! # Why a custom pool
//!
//! The reproduction's correctness story rests on bitwise-reproducible
//! training trajectories (see the golden-trace suite from the telemetry
//! layer). Off-the-shelf work-stealing pools split work by *thread count*
//! and combine partial results in *completion order*, so the same program
//! produces different floating-point results at different thread counts.
//! This pool inverts that design:
//!
//! * **Chunk boundaries are a function of problem size only.** Callers pass
//!   an explicit chunk length; [`parallel_for`] always creates
//!   `ceil(n_items / chunk)` chunks regardless of how many threads exist.
//! * **Combination order is a function of chunk count only.**
//!   [`parallel_reduce`] stores each chunk's partial into a dedicated slot
//!   and folds the slots with a fixed-shape pairwise tree on the calling
//!   thread.
//!
//! Under this contract a chunk body that only touches its own range
//! executes the *same float operations in the same order* whether the pool
//! has 1 thread or N, so results are bitwise identical across thread
//! counts.
//!
//! # Execution model
//!
//! Workers are spawned lazily on first use and persist for the process
//! lifetime (`num_threads() - 1` workers; the submitting thread always
//! participates, so a "1-thread" pool spawns nothing and runs inline).
//! Task handoff is a mutex-protected queue plus condvar — no busy waiting.
//! Chunks are claimed with an atomic counter, so a job is finished exactly
//! when `completed == n_chunks` even if a chunk body panics; the first
//! panic payload is captured and re-raised on the submitting thread
//! (a panicking chunk therefore aborts the whole op with the original
//! panic message instead of deadlocking the submitter).
//!
//! Nested calls from inside a worker run inline and serially — by the
//! determinism contract this is bitwise identical to a parallel run, and it
//! keeps coarse-grained outer parallelism (e.g. the schedule-grid harness)
//! from deadlocking on inner kernel parallelism.
//!
//! # Sizing
//!
//! Thread count resolves once per process, in priority order:
//! [`set_num_threads`] (e.g. a `--threads` CLI flag) > the
//! `REX_NUM_THREADS` env var > [`std::thread::available_parallelism`]
//! (capped at [`MAX_DEFAULT_THREADS`]). Tests and benchmarks can run a
//! scoped pool of any size via [`with_pool_size`].

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Instant;

/// Upper bound on the *default* thread count when neither
/// [`set_num_threads`] nor `REX_NUM_THREADS` pins one. Explicit settings
/// may exceed it.
pub const MAX_DEFAULT_THREADS: usize = 32;

// ---------------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------------

static CONFIGURED: OnceLock<usize> = OnceLock::new();

fn resolve_default() -> usize {
    if let Ok(raw) = std::env::var("REX_NUM_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_DEFAULT_THREADS)
}

/// Returns the process-wide thread count, resolving (and caching) it on
/// first call: [`set_num_threads`] > `REX_NUM_THREADS` > core count.
pub fn num_threads() -> usize {
    *CONFIGURED.get_or_init(resolve_default)
}

/// Pins the process-wide thread count, overriding `REX_NUM_THREADS`.
///
/// Must be called before the first parallel operation (CLI flag parsing is
/// the intended call site). Returns an error if the count has already been
/// resolved — either by an earlier call or because a parallel op already
/// ran — since the persistent pool cannot be resized after workers exist.
pub fn set_num_threads(n: usize) -> Result<(), String> {
    let n = n.max(1);
    match CONFIGURED.set(n) {
        Ok(()) => Ok(()),
        Err(_) if num_threads() == n => Ok(()),
        Err(_) => Err(format!(
            "thread count already resolved to {} (set --threads before any parallel work)",
            num_threads()
        )),
    }
}

// ---------------------------------------------------------------------------
// Job: one parallel_for invocation, shared between submitter and workers
// ---------------------------------------------------------------------------

/// Type-erased chunk runner. The `'static` is a lie told to the type
/// system: `run_chunked` guarantees the referent outlives every
/// dereference by blocking until `completed == n_chunks` before returning.
type BodyRef = &'static (dyn Fn(usize) + Sync);

struct JobState {
    completed: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Job {
    body: BodyRef,
    n_chunks: usize,
    /// Next unclaimed chunk index; claimed with `fetch_add`, so every chunk
    /// is executed exactly once no matter how many threads race.
    next: AtomicUsize,
    state: Mutex<JobState>,
    done: Condvar,
    /// When the job was pushed onto the queue; chunk 0's claim records
    /// `enqueued_at.elapsed()` as the job's queue-wait.
    enqueued_at: Instant,
}

impl Job {
    /// Claims and runs chunks until none remain. Called by both workers and
    /// the submitting thread. Panics in the body are caught so `completed`
    /// always reaches `n_chunks` (no deadlock); the first payload is kept
    /// for the submitter to re-raise.
    ///
    /// Instrumentation: `fetch_add` hands chunk 0 to exactly one claimant —
    /// the first thread to start this job — so that claim measures the
    /// submit-to-first-run queue wait. Each chunk body's wall time is
    /// accumulated separately (worker vs submitter), none of which touches
    /// the chunk bodies themselves, so computed bytes are unchanged.
    fn run_to_completion(&self) {
        loop {
            let chunk = self.next.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.n_chunks {
                return;
            }
            if chunk == 0 {
                STATS.queue_wait_ns.fetch_add(
                    self.enqueued_at.elapsed().as_nanos() as u64,
                    Ordering::Relaxed,
                );
            }
            let t0 = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| (self.body)(chunk)));
            let dt = t0.elapsed().as_nanos() as u64;
            STATS.chunks.fetch_add(1, Ordering::Relaxed);
            STATS.exec_ns.fetch_add(dt, Ordering::Relaxed);
            if IN_WORKER.with(|f| f.get()) {
                STATS.worker_busy_ns.fetch_add(dt, Ordering::Relaxed);
            } else {
                STATS.submitter_busy_ns.fetch_add(dt, Ordering::Relaxed);
            }
            let mut st = self.state.lock().unwrap();
            if let Err(payload) = result {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
            st.completed += 1;
            if st.completed == self.n_chunks {
                self.done.notify_all();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Instrumentation counters
// ---------------------------------------------------------------------------

#[derive(Default)]
struct StatsCells {
    jobs: AtomicU64,
    chunks: AtomicU64,
    queue_wait_ns: AtomicU64,
    exec_ns: AtomicU64,
    worker_busy_ns: AtomicU64,
    submitter_busy_ns: AtomicU64,
}

static STATS: StatsCells = StatsCells {
    jobs: AtomicU64::new(0),
    chunks: AtomicU64::new(0),
    queue_wait_ns: AtomicU64::new(0),
    exec_ns: AtomicU64::new(0),
    worker_busy_ns: AtomicU64::new(0),
    submitter_busy_ns: AtomicU64::new(0),
};

/// Snapshot of the pool's cumulative instrumentation counters.
///
/// Only *pooled* jobs are counted — the inline path (single chunk, one
/// thread, or nested-in-worker) bypasses the queue and stays unmeasured so
/// small hot ops pay nothing. All fields are process-lifetime cumulative;
/// rates come from differencing two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs pushed onto the worker queue.
    pub jobs: u64,
    /// Chunks executed across all pooled jobs.
    pub chunks: u64,
    /// Total submit-to-first-claim wait across jobs, in nanoseconds.
    pub queue_wait_ns: u64,
    /// Total chunk-body execution time across all threads, in nanoseconds.
    pub exec_ns: u64,
    /// Portion of `exec_ns` spent on pool worker threads.
    pub worker_busy_ns: u64,
    /// Portion of `exec_ns` spent on the submitting thread itself.
    pub submitter_busy_ns: u64,
}

/// Current values of the pool's instrumentation counters.
pub fn stats() -> PoolStats {
    PoolStats {
        jobs: STATS.jobs.load(Ordering::Relaxed),
        chunks: STATS.chunks.load(Ordering::Relaxed),
        queue_wait_ns: STATS.queue_wait_ns.load(Ordering::Relaxed),
        exec_ns: STATS.exec_ns.load(Ordering::Relaxed),
        worker_busy_ns: STATS.worker_busy_ns.load(Ordering::Relaxed),
        submitter_busy_ns: STATS.submitter_busy_ns.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Pool core + worker loop
// ---------------------------------------------------------------------------

struct QueueState {
    jobs: VecDeque<Arc<Job>>,
    shutdown: bool,
}

struct PoolCore {
    queue: Mutex<QueueState>,
    available: Condvar,
    /// Total threads including the submitter; `workers == threads - 1`.
    threads: usize,
}

thread_local! {
    /// Set in pool worker threads: nested parallel ops run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Scoped pool overrides installed by `with_pool_size` (innermost last).
    static OVERRIDE: RefCell<Vec<Arc<PoolCore>>> = const { RefCell::new(Vec::new()) };
}

fn worker_loop(core: Arc<PoolCore>) {
    IN_WORKER.with(|f| f.set(true));
    loop {
        let job = {
            let mut q = core.queue.lock().unwrap();
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                q = core.available.wait(q).unwrap();
            }
        };
        // The queue may hold stale copies of already-finished jobs; the
        // chunk-claim check in `run_to_completion` makes those a no-op and
        // the `Arc` keeps the `Job` allocation alive, so this is safe.
        job.run_to_completion();
    }
}

/// An owned pool instance. The global pool lives forever in a `OnceLock`;
/// scoped pools from [`with_pool_size`] shut their workers down on drop.
struct Pool {
    core: Arc<PoolCore>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let core = Arc::new(PoolCore {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            threads,
        });
        let handles = (0..threads - 1)
            .map(|i| {
                let core = Arc::clone(&core);
                thread::Builder::new()
                    .name(format!("rex-pool-{i}"))
                    .spawn(move || worker_loop(core))
                    .expect("failed to spawn rex-pool worker")
            })
            .collect();
        Self { core, handles }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.core.queue.lock().unwrap().shutdown = true;
        self.available_notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Pool {
    fn available_notify_all(&self) {
        self.core.available.notify_all();
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

fn current_core() -> Arc<PoolCore> {
    if let Some(core) = OVERRIDE.with(|o| o.borrow().last().cloned()) {
        return core;
    }
    Arc::clone(&GLOBAL.get_or_init(|| Pool::new(num_threads())).core)
}

/// Returns the thread count of the pool the *current thread* would submit
/// to: the innermost [`with_pool_size`] override if one is active,
/// otherwise the process-wide [`num_threads`].
pub fn current_num_threads() -> usize {
    if let Some(core) = OVERRIDE.with(|o| o.borrow().last().cloned()) {
        return core.threads;
    }
    num_threads()
}

/// Runs `f` with a scoped pool of exactly `threads` threads (for the
/// calling thread only), then tears the pool down. Used by the kernel-bench
/// thread sweep and the determinism test suite to compare thread counts
/// within one process. Nestable; the innermost scope wins.
pub fn with_pool_size<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
        }
    }
    let pool = Pool::new(threads);
    OVERRIDE.with(|o| o.borrow_mut().push(Arc::clone(&pool.core)));
    let _guard = PopGuard;
    f()
    // _guard pops the override (even on panic), then `pool` drops and joins.
}

// ---------------------------------------------------------------------------
// parallel_for and friends
// ---------------------------------------------------------------------------

/// Executes `n_chunks` chunk indices across the current pool, with the
/// submitting thread participating. Blocks until every chunk has finished;
/// re-raises the first chunk panic, if any.
fn run_chunked(n_chunks: usize, body: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    let inline = n_chunks == 1 || IN_WORKER.with(|f| f.get());
    let core = if inline { None } else { Some(current_core()) };
    let core = match core {
        Some(c) if c.threads > 1 => c,
        _ => {
            for chunk in 0..n_chunks {
                body(chunk);
            }
            return;
        }
    };
    // Erase the borrow lifetime; sound because this function does not
    // return until `completed == n_chunks` (see the wait loop below), and
    // stale queue entries never dereference `body` once all chunks are
    // claimed.
    let body: BodyRef = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(body)
    };
    let job = Arc::new(Job {
        body,
        n_chunks,
        next: AtomicUsize::new(0),
        state: Mutex::new(JobState {
            completed: 0,
            panic: None,
        }),
        done: Condvar::new(),
        enqueued_at: Instant::now(),
    });
    STATS.jobs.fetch_add(1, Ordering::Relaxed);
    {
        let mut q = core.queue.lock().unwrap();
        // One queue entry per worker that could usefully help; each entry
        // is a handle into the same chunk counter, not a unit of work.
        let copies = (core.threads - 1).min(n_chunks);
        for _ in 0..copies {
            q.jobs.push_back(Arc::clone(&job));
        }
    }
    core.available.notify_all();
    job.run_to_completion();
    let mut st = job.state.lock().unwrap();
    while st.completed < n_chunks {
        st = job.done.wait(st).unwrap();
    }
    if let Some(payload) = st.panic.take() {
        drop(st);
        resume_unwind(payload);
    }
}

/// Runs `body(chunk_index, item_range)` for every chunk of `chunk` items
/// covering `0..n_items` (last chunk may be short).
///
/// Chunk boundaries depend only on `n_items` and `chunk`, so a body that
/// only touches state derived from its own range produces bitwise-identical
/// results at every thread count. Blocks until all chunks complete; a panic
/// in any chunk aborts the call by re-raising on the current thread.
pub fn parallel_for<F>(n_items: usize, chunk: usize, body: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = n_items.div_ceil(chunk);
    run_chunked(n_chunks, &|c| {
        let start = c * chunk;
        body(c, start..(start + chunk).min(n_items));
    });
}

/// Like [`parallel_for`], but hands each chunk a disjoint `&mut` window of
/// `data`: `body(chunk_index, offset, window)` where
/// `window == &mut data[offset..offset + len]` and `len <= chunk`.
///
/// This is the safe way to parallelize writes: windows never alias because
/// every chunk index is claimed exactly once.
pub fn parallel_for_slices<T, F>(data: &mut [T], chunk: usize, body: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let len = data.len();
    let chunk = chunk.max(1);
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(len, chunk, move |c, range| {
        let base = &base; // capture the SendPtr wrapper, not the raw field
        let offset = range.start;
        // SAFETY: ranges from `parallel_for` partition `0..len` disjointly
        // and each chunk index runs exactly once, so no two windows alias;
        // `data` outlives the call because `parallel_for` blocks until all
        // chunks finish.
        let window = unsafe { std::slice::from_raw_parts_mut(base.0.add(offset), range.len()) };
        body(c, offset, window);
    });
}

/// Deterministic chunked reduction: maps every chunk of `chunk` items to a
/// partial with `map(chunk_index, item_range)` (in parallel), then folds
/// the partials with `combine` on the calling thread using a fixed-shape
/// pairwise tree over chunk indices.
///
/// Both the chunk grid and the tree shape depend only on `n_items` and
/// `chunk` — never on thread count or completion order — so floating-point
/// reductions are bitwise identical for any pool size *including the
/// serial path*. Returns `None` when `n_items == 0`.
pub fn parallel_reduce<T, M, C>(n_items: usize, chunk: usize, map: M, combine: C) -> Option<T>
where
    T: Send,
    M: Fn(usize, Range<usize>) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let chunk = chunk.max(1);
    let n_chunks = n_items.div_ceil(chunk);
    if n_chunks == 0 {
        return None;
    }
    let mut partials: Vec<Option<T>> = Vec::with_capacity(n_chunks);
    partials.resize_with(n_chunks, || None);
    parallel_for_slices(&mut partials, 1, |c, _, slot| {
        let start = c * chunk;
        slot[0] = Some(map(c, start..(start + chunk).min(n_items)));
    });
    // Fixed pairwise tree: (p0⊕p1)⊕(p2⊕p3)… repeated until one value
    // remains. Shape depends only on n_chunks.
    let mut level: Vec<T> = partials.into_iter().map(|p| p.unwrap()).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.pop()
}

struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn parallel_for_covers_every_item_exactly_once() {
        with_pool_size(4, || {
            let n = 1003;
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            parallel_for(n, 17, |_, range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn parallel_for_slices_windows_are_disjoint_and_complete() {
        with_pool_size(3, || {
            let mut data = vec![0u32; 500];
            parallel_for_slices(&mut data, 7, |c, offset, window| {
                assert_eq!(offset, c * 7);
                for (i, x) in window.iter_mut().enumerate() {
                    *x = (offset + i) as u32;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32));
        });
    }

    #[test]
    fn reduce_is_bitwise_identical_across_thread_counts() {
        // Catastrophic-cancellation-prone series: any re-grouping of the
        // fold changes the result, so equality here means the tree really
        // is fixed.
        let xs: Vec<f32> = (0..40_000)
            .map(|i| ((i * 2654435761u64 as usize) as f32).sin() * 1e4)
            .collect();
        let run = || {
            parallel_reduce(
                xs.len(),
                1 << 10,
                |_, r| xs[r].iter().fold(0.0f32, |acc, &v| acc + v),
                |a, b| a + b,
            )
            .unwrap()
        };
        let serial = with_pool_size(1, run);
        for threads in [2, 3, 7] {
            let par = with_pool_size(threads, run);
            assert_eq!(serial.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn panicking_chunk_aborts_instead_of_deadlocking() {
        with_pool_size(4, || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                parallel_for(64, 4, |c, _| {
                    if c == 9 {
                        panic!("poisoned task 9");
                    }
                });
            }));
            let payload = result.expect_err("panic must propagate to the submitter");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(String::from)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(msg.contains("poisoned task 9"), "got {msg:?}");
            // The pool must still be usable after a panicked job.
            let sum = parallel_reduce(100, 8, |_, r| r.len(), |a, b| a + b).unwrap();
            assert_eq!(sum, 100);
        });
    }

    #[test]
    fn nested_parallel_for_runs_inline_without_deadlock() {
        with_pool_size(2, || {
            let totals: Vec<usize> = {
                let mut out = vec![0usize; 8];
                parallel_for_slices(&mut out, 1, |c, _, slot| {
                    // Inner op on a busy pool: must complete (inline on a
                    // worker, cooperative on the submitter).
                    slot[0] =
                        parallel_reduce(50, 5, |_, r| r.len() * (c + 1), |a, b| a + b).unwrap();
                });
                out
            };
            for (c, t) in totals.iter().enumerate() {
                assert_eq!(*t, 50 * (c + 1));
            }
        });
    }

    #[test]
    fn with_pool_size_overrides_and_restores() {
        let outer = current_num_threads();
        with_pool_size(5, || {
            assert_eq!(current_num_threads(), 5);
            with_pool_size(2, || assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 5);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn stats_count_pooled_jobs_and_split_wait_from_exec() {
        let before = stats();
        with_pool_size(3, || {
            parallel_for(1000, 10, |_, range| {
                // enough work per chunk that exec_ns registers
                let mut acc = 0u64;
                for i in range {
                    acc = acc.wrapping_add((i as u64).wrapping_mul(2654435761));
                }
                std::hint::black_box(acc);
            });
        });
        let after = stats();
        assert_eq!(after.jobs, before.jobs + 1);
        assert_eq!(after.chunks, before.chunks + 100);
        assert!(
            after.queue_wait_ns > before.queue_wait_ns,
            "first chunk claim must record a queue wait"
        );
        assert!(after.exec_ns > before.exec_ns);
        assert_eq!(
            after.exec_ns - before.exec_ns,
            (after.worker_busy_ns - before.worker_busy_ns)
                + (after.submitter_busy_ns - before.submitter_busy_ns),
            "exec time must split exactly into worker + submitter shares"
        );

        // the inline path (1 thread) bypasses the queue and stays unmeasured
        let before = stats();
        with_pool_size(1, || {
            parallel_for(100, 10, |_, _| {});
        });
        let after = stats();
        assert_eq!(after.jobs, before.jobs);
        assert_eq!(after.chunks, before.chunks);
    }

    #[test]
    fn zero_items_is_a_no_op() {
        with_pool_size(3, || {
            parallel_for(0, 8, |_, _| panic!("must not run"));
            assert!(parallel_reduce(0, 8, |_, _| 1usize, |a, b| a + b).is_none());
        });
    }
}
